//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Reimplements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, range / tuple / `collection::vec` strategies,
//! `prop_map`, `any::<bool>()`, `prop_assert*`/`prop_assume!`, and
//! [`test_runner::ProptestConfig`]. Cases are generated from a
//! deterministic per-test seed (FNV of the test name mixed with the case
//! index), so failures are reproducible; there is **no shrinking** — a
//! failing case reports the case index and the assertion message.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Value` from a seeded generator.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Uniform `bool` (the `any::<bool>()` strategy).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Generates a `Vec` of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: strategy::Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;

    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

/// The canonical strategy for `T` (upstream: `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod test_runner {
    //! Deterministic case runner.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (the subset the workspace sets).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the hermetic suite quick
            // while still exercising varied inputs.
            Self { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs — draw another case.
        Reject,
    }

    /// FNV-1a, for turning a test name into a seed.
    fn fnv(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Runs `body` until `config.cases` cases were accepted.
    ///
    /// # Panics
    ///
    /// Panics when a case fails, or when rejections outnumber accepted
    /// cases by 100x (a mis-specified `prop_assume!`).
    pub fn run<F>(config: &ProptestConfig, name: &str, body: F)
    where
        F: Fn(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = fnv(name);
        let mut accepted = 0u32;
        let mut case = 0u64;
        let max_cases = u64::from(config.cases) * 100;
        while accepted < config.cases {
            let mut rng = StdRng::seed_from_u64(base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            match body(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(message)) => {
                    panic!("proptest '{name}' failed at case {case}: {message}")
                }
            }
            case += 1;
            assert!(
                case < max_cases,
                "proptest '{name}': too many rejected cases ({case})"
            );
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring upstream.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests (see the crate docs for supported syntax).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(&config, stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case with an assertion message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case (draws a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vectors_respect_size_and_element_ranges(
            v in crate::collection::vec((0u32..4, 0.0f64..1.0), 2..20),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!((0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn prop_map_transforms(sum in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(sum < 19);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn any_bool_produces_both(flips in crate::collection::vec(any::<bool>(), 64..65)) {
            prop_assert!(flips.iter().any(|&b| b) || flips.len() < 8);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| -> Result<(), crate::test_runner::TestCaseError> {
                prop_assert!(false);
                Ok(())
            },
        );
    }
}
