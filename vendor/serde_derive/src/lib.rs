//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` facade reduces `Serialize`/`Deserialize` to marker
//! traits (no wire format is needed in this hermetic workspace), so the
//! derives only have to name the type being derived for and emit an empty
//! impl. The input is scanned token-by-token — no `syn`/`quote`, which are
//! unavailable offline.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the derived type's name and its generic parameter *names*
/// (lifetimes and type idents, bounds stripped) from the item tokens.
fn type_header(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes, doc comments, visibility — stop at `struct`/`enum`.
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("derive input has no type name (found {other:?})"),
    };

    // Collect generic parameter names from `<...>`, if present.
    let mut params = Vec::new();
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        let mut at_param_start = true;
        let mut lifetime = false;
        for tt in tokens {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    at_param_start = true;
                    lifetime = false;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && at_param_start => {
                    lifetime = true;
                }
                TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                    at_param_start = false;
                }
                TokenTree::Ident(ident) if depth == 1 && at_param_start => {
                    let word = ident.to_string();
                    if word != "const" {
                        params.push(if lifetime { format!("'{word}") } else { word });
                        at_param_start = false;
                    }
                }
                _ => {}
            }
        }
    }
    (name, params)
}

fn marker_impl(input: TokenStream, trait_path: &str, extra_param: Option<&str>) -> TokenStream {
    let (name, params) = type_header(input);
    let mut impl_params: Vec<String> = Vec::new();
    if let Some(extra) = extra_param {
        impl_params.push(extra.to_string());
    }
    impl_params.extend(params.iter().cloned());
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let type_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    format!("impl{impl_generics} {trait_path} for {name}{type_generics} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the vendored marker `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize", None)
}

/// Derives the vendored marker `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize<'de>", Some("'de"))
}
