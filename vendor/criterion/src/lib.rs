//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API surface the workspace's micro benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`] / [`criterion_main!`] —
//! backed by a simple wall-clock loop: a short warm-up, then `sample_size`
//! timed samples whose median ns/iter is printed. No statistics engine, no
//! HTML reports; enough to compare hot paths run-to-run. When invoked by
//! `cargo test` (arguments containing `--test`), benches are executed for a
//! single iteration each, keeping the test suite fast.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortizes setup cost. The stand-in times
/// each batch individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup dominates; fewer iterations).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The per-benchmark timing driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    nanos_per_iter: Vec<f64>,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let nanos = start.elapsed().as_nanos() as f64 / self.iters as f64;
        self.nanos_per_iter.push(nanos);
    }

    /// Times `routine` over per-iteration inputs built by `setup`; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_nanos = 0.0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_nanos += start.elapsed().as_nanos() as f64;
        }
        self.nanos_per_iter.push(total_nanos / self.iters as f64);
    }
}

/// The benchmark registry/driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upstream parses CLI filters here; the stand-in only detects
    /// `--test` (already done in [`Criterion::default`]).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark and prints its median ns/iter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let (samples, iters) = if self.test_mode {
            (1, 1)
        } else {
            (self.sample_size, 3)
        };
        let mut bencher = Bencher {
            iters,
            nanos_per_iter: Vec::with_capacity(samples),
        };
        for _ in 0..samples {
            f(&mut bencher);
        }
        let mut nanos = bencher.nanos_per_iter;
        nanos.sort_by(|a, b| a.total_cmp(b));
        let median = nanos.get(nanos.len() / 2).copied().unwrap_or(f64::NAN);
        if self.test_mode {
            println!("bench {name}: ok (test mode)");
        } else {
            println!(
                "bench {name}: median {median:.0} ns/iter over {} samples",
                nanos.len()
            );
        }
    }
}

/// Declares a benchmark group function (upstream-compatible syntax).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        let mut runs = 0u32;
        c.bench_function("touch", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        let mut sum = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |v| sum += v, BatchSize::SmallInput)
        });
        assert!(sum >= 21);
    }
}
