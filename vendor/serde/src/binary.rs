//! A minimal deterministic binary codec — the one wire format the hermetic
//! workspace actually uses (runtime snapshots).
//!
//! Design rules, chosen for checkpoint/resume of a deterministic simulation:
//!
//! * **Bit-exact floats.** `f64` round-trips through [`f64::to_bits`], so a
//!   decoded state is *byte-identical* to the encoded one — including the
//!   sign of zero and every last mantissa bit. No text formatting anywhere.
//! * **Infallible encoding.** [`Encode::encode`] appends to a `Vec<u8>` and
//!   cannot fail; fallibility lives entirely on the decode side, where a
//!   foreign byte stream must be treated as untrusted input.
//! * **Explicit lengths.** Every variable-length value is length-prefixed
//!   (`u64`, little-endian); there are no delimiters to escape and no
//!   self-describing tags. The format is therefore only readable against
//!   the matching type — which is what the snapshot header's format-version
//!   field is for.
//! * **No panics on decode.** Malformed input surfaces as a
//!   [`DecodeError`], never an assertion, so snapshot loading satisfies the
//!   workspace's D4 (panic-paths) lint.

use std::collections::{BTreeMap, VecDeque};

/// Why a decode failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    Truncated,
    /// A tag or length field held a value the target type cannot represent.
    Invalid,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated mid-value"),
            DecodeError::Invalid => write!(f, "invalid tag or length"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over an encoded byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Decodes one value of `T` at the cursor.
    pub fn read<T: Decode>(&mut self) -> Result<T, DecodeError> {
        T::decode(self)
    }
}

/// Types that can append their binary form to a buffer. Infallible: every
/// in-memory value has an encoding.
pub trait Encode {
    /// Appends the value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: the value encoded into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Types that can be rebuilt from their binary form.
pub trait Decode: Sized {
    /// Reads one value at the cursor.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Convenience: decodes a value that must span `bytes` exactly.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(DecodeError::Invalid);
        }
        Ok(value)
    }
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                let mut buf = [0u8; std::mem::size_of::<$t>()];
                buf.copy_from_slice(bytes);
                Ok(<$t>::from_le_bytes(buf))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i64);

impl Encode for usize {
    /// `usize` travels as `u64` so the format is pointer-width independent.
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        usize::try_from(u64::decode(r)?).map_err(|_| DecodeError::Invalid)
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid),
        }
    }
}

impl Encode for f64 {
    /// Bit-exact: `to_bits`, not any decimal representation.
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = usize::decode(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid)
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = usize::decode(r)?;
        // A length can claim more elements than bytes remain; cap the
        // pre-allocation so a corrupt prefix cannot balloon memory.
        let mut items = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: Encode> Encode for VecDeque<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for VecDeque<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Vec::<T>::decode(r)?.into())
    }
}

impl<K: Encode, V: Encode> Encode for BTreeMap<K, V> {
    /// Entries travel in the map's own (sorted) iteration order, so the
    /// encoding of a map is canonical.
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = usize::decode(r)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(DecodeError::Invalid),
        }
    }
}

impl<T: Encode, const N: usize> Encode for [T; N] {
    /// Fixed-size: no length prefix, the type carries it.
    fn encode(&self, out: &mut Vec<u8>) {
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode, const N: usize> Decode for [T; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::decode(r)?);
        }
        items.try_into().map_err(|_| DecodeError::Invalid)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        assert_eq!(T::from_bytes(&value.to_bytes()).unwrap(), value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(String::from("snapshot"));
        round_trip(String::new());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for value in [
            0.0f64,
            -0.0,
            1.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0 / 3.0,
        ] {
            let back = f64::from_bytes(&value.to_bytes()).unwrap();
            assert_eq!(back.to_bits(), value.to_bits());
        }
        let nan = f64::from_bytes(&f64::NAN.to_bytes()).unwrap();
        assert_eq!(nan.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(VecDeque::from([7usize, 8, 9]));
        round_trip(BTreeMap::from([(1u64, 2.5f64), (3, 4.5)]));
        round_trip(Option::<u32>::None);
        round_trip(Some(9u32));
        round_trip([1.5f64, 2.5, 3.5]);
        round_trip((42u64, String::from("pair")));
        round_trip(vec![(0usize, true), (1, false)]);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = 0xabcdu64.to_bytes();
        assert_eq!(u64::from_bytes(&bytes[..7]), Err(DecodeError::Truncated));
        let list = vec![1u64, 2, 3].to_bytes();
        assert_eq!(
            Vec::<u64>::from_bytes(&list[..list.len() - 1]),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn invalid_tags_are_rejected() {
        assert_eq!(bool::from_bytes(&[2]), Err(DecodeError::Invalid));
        assert_eq!(Option::<u8>::from_bytes(&[9, 0]), Err(DecodeError::Invalid));
        assert_eq!(
            String::from_bytes(&[1, 0, 0, 0, 0, 0, 0, 0, 0xff]),
            Err(DecodeError::Invalid)
        );
    }

    #[test]
    fn trailing_bytes_are_rejected_by_from_bytes() {
        let mut bytes = 5u64.to_bytes();
        bytes.push(0);
        assert_eq!(u64::from_bytes(&bytes), Err(DecodeError::Invalid));
    }

    #[test]
    fn oversized_length_prefix_does_not_overallocate() {
        // Claims u64::MAX elements with 0 bytes of payload.
        let bytes = u64::MAX.to_bytes();
        assert_eq!(Vec::<u8>::from_bytes(&bytes), Err(DecodeError::Truncated));
    }
}
