//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace derives `Serialize`/`Deserialize` throughout so its data
//! types stay serialization-ready, but no code path actually encodes to a
//! wire format (there is no `serde_json` in the hermetic build). This facade
//! therefore reduces both traits to markers: deriving them documents intent
//! and keeps the public API source-compatible with upstream serde, at zero
//! dependency cost. Swapping back to real serde is a one-line change in the
//! workspace manifest.

#![forbid(unsafe_code)]

pub mod binary;

/// Marker for types that are serialization-ready.
///
/// Upstream: `serde::Serialize`. The vendored facade carries no methods —
/// see the crate docs.
pub trait Serialize {}

/// Marker for types that are deserialization-ready.
///
/// Upstream: `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
