//! Offline stand-in for [`rand`](https://crates.io/crates/rand) 0.8.
//!
//! This workspace builds in hermetic environments with no crates-io access,
//! so the external `rand` dependency is replaced by this vendored subset. It
//! reproduces the *API* the workspace uses — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], [`seq::SliceRandom`] — with a deterministic
//! xoshiro256++ generator seeded through SplitMix64. Streams are
//! reproducible across runs and platforms, but are **not** byte-identical
//! to upstream `rand`'s ChaCha-based `StdRng`; every statistical test band
//! in the workspace is calibrated against this generator.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 (the same
    /// construction upstream `rand` documents for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the seed-expansion generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from the full `u64` stream (the subset of
/// upstream's `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable into a uniform value of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo-free bias is irrelevant at simulation scale.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not upstream `rand`'s ChaCha12 — see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// The generator's full internal state: the four xoshiro256++ words.
        ///
        /// Together with [`StdRng::from_state`] this makes the stream
        /// checkpointable: saving the state and restoring it later resumes
        /// the exact same sequence of draws.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// An all-zero state (a fixed point of xoshiro, never produced by a
        /// seeded generator) is nudged to the same canonical state
        /// `from_seed` uses, so restoring is total.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self {
                    s: [
                        0x9e37_79b9_7f4a_7c15,
                        0xbf58_476d_1ce4_e5b9,
                        0x94d0_49bb_1331_11eb,
                        1,
                    ],
                };
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    1,
                ];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling: shuffling and choosing.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher-Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_integer_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
            let w = rng.gen_range(10u32..=12);
            assert!((10..=12).contains(&w));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.gen_range(-50.0f64..50.0);
            assert!((-50.0..50.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_picks_every_element_eventually() {
        let mut rng = StdRng::seed_from_u64(17);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = StdRng::seed_from_u64(23);
        for _ in 0..17 {
            a.gen::<f64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn zero_state_is_nudged_like_from_seed() {
        let mut a = StdRng::from_state([0; 4]);
        let mut b = StdRng::from_seed([0; 32]);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(19);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }
}
