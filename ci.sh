#!/usr/bin/env sh
# Offline CI gate for the CrowdLearn workspace. Mirrors the tier-1 verify
# (build + test) and adds formatting and lint gates. Everything runs
# against the vendored path dependencies — no network access required.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> detlint (determinism & hygiene + codec drift, rules D1-D9)"
# The JSON report is a build artifact alongside the bench JSONs; the gate
# still fails on findings, after printing the human-readable diagnostics.
detlint_status=0
cargo run -q -p detlint --offline -- --json > DETLINT_REPORT.json || detlint_status=$?
findings=$(grep -o '"code":' DETLINT_REPORT.json | wc -l | tr -d ' ')
echo "detlint: ${findings} finding(s) -- report in DETLINT_REPORT.json"
if [ "${detlint_status}" -ne 0 ]; then
    cargo run -q -p detlint --offline || true
    exit "${detlint_status}"
fi

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

echo "==> checkpoint/resume roundtrip smoke"
cargo run -q --release --offline --example checkpoint_resume

echo "==> streaming metrics tap smoke"
cargo run -q --release --offline --example metrics_tap

echo "==> multi-stream fleet smoke"
cargo run -q --release --offline --example multi_stream

echo "==> adaptive window controller smoke"
cargo run -q --release --offline --example adaptive_window

echo "==> chaos (fault injection + mid-outage checkpoint) smoke"
cargo run -q --release --offline --example chaos

echo "==> runtime makespan bench (emits BENCH_runtime.json)"
cargo run -q --release --offline -p crowdlearn-bench --bin makespan

echo "==> fleet contention bench (emits BENCH_fleet.json)"
cargo run -q --release --offline -p crowdlearn-bench --bin fleet

echo "==> committee inference bench (emits BENCH_inference.json)"
cargo run -q --release --offline -p crowdlearn-bench --bin inference

echo "==> adaptive window bench (emits BENCH_adaptive.json)"
cargo run -q --release --offline -p crowdlearn-bench --bin adaptive

echo "==> fault injection bench (emits BENCH_faults.json)"
cargo run -q --release --offline -p crowdlearn-bench --bin faults

echo "CI green."
