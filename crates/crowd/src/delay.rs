//! The incentive→delay response surface, calibrated to the pilot study
//! (paper Figure 5).

use crate::IncentiveLevel;
use crowdlearn_dataset::{gaussian, TemporalContext};
use rand::rngs::StdRng;
use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// Mean per-HIT response delay (seconds) for every
/// `(temporal context, incentive level)` cell, plus multiplicative noise.
///
/// The paper-calibrated surface ([`DelayModel::paper`]) encodes Figure 5's
/// two regimes:
///
/// * **Morning / afternoon**: workers are scarce and selective, so delay
///   falls steeply and monotonically with incentive.
/// * **Evening / midnight**: an abundant night-owl population takes almost
///   any HIT, so all mid-range incentives perform similarly; only the
///   1-cent level is notably slower and the 20-cent level notably faster.
///
/// This asymmetry is exactly what makes a context-aware incentive policy
/// worthwhile: money moved from flat contexts to sensitive contexts buys a
/// large delay reduction (Figure 8, Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    /// `base_secs[context][incentive]`.
    base_secs: [[f64; IncentiveLevel::COUNT]; TemporalContext::COUNT],
    /// Std-dev of the multiplicative log-normal noise.
    noise_sigma: f64,
}

impl DelayModel {
    /// The paper-calibrated surface (see type docs).
    pub fn paper() -> Self {
        Self {
            base_secs: [
                // 1c      2c      4c     6c     8c    10c    20c
                [1400.0, 1150.0, 900.0, 620.0, 430.0, 330.0, 160.0], // morning
                [1250.0, 1000.0, 780.0, 530.0, 380.0, 300.0, 170.0], // afternoon
                [480.0, 250.0, 242.0, 238.0, 235.0, 232.0, 195.0],   // evening
                [520.0, 260.0, 252.0, 248.0, 244.0, 240.0, 200.0],   // midnight
            ],
            noise_sigma: 0.18,
        }
    }

    /// Builds a custom surface (for ablations / stress tests).
    ///
    /// # Panics
    ///
    /// Panics if any mean is non-positive or `noise_sigma` is negative.
    pub fn from_table(
        base_secs: [[f64; IncentiveLevel::COUNT]; TemporalContext::COUNT],
        noise_sigma: f64,
    ) -> Self {
        assert!(
            base_secs.iter().flatten().all(|d| *d > 0.0),
            "mean delays must be positive"
        );
        assert!(noise_sigma >= 0.0, "noise sigma must be non-negative");
        Self {
            base_secs,
            noise_sigma,
        }
    }

    /// The mean per-HIT delay of a cell (before worker speed and noise).
    pub fn mean_secs(&self, context: TemporalContext, incentive: IncentiveLevel) -> f64 {
        self.base_secs[context.index()][incentive.index()]
    }

    /// Samples one worker's response delay: cell mean × worker speed factor
    /// × log-normal noise.
    ///
    /// # Panics
    ///
    /// Panics if `speed_factor` is not positive.
    pub fn sample_secs(
        &self,
        context: TemporalContext,
        incentive: IncentiveLevel,
        speed_factor: f64,
        rng: &mut StdRng,
    ) -> f64 {
        assert!(speed_factor > 0.0, "speed factor must be positive");
        let mean = self.mean_secs(context, incentive);
        let noise = (self.noise_sigma * gaussian(rng)).exp();
        mean * speed_factor * noise
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::paper()
    }
}

// Snapshot codec: decoding re-checks the `from_table` invariants and reports
// `Invalid` instead of panicking.
impl Encode for DelayModel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.base_secs.encode(out);
        self.noise_sigma.encode(out);
    }
}

impl Decode for DelayModel {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let base_secs = <[[f64; IncentiveLevel::COUNT]; TemporalContext::COUNT]>::decode(r)?;
        let noise_sigma = f64::decode(r)?;
        let valid = base_secs
            .iter()
            .flatten()
            .all(|d| d.is_finite() && *d > 0.0)
            && noise_sigma.is_finite()
            && noise_sigma >= 0.0;
        if !valid {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            base_secs,
            noise_sigma,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn morning_delay_is_monotone_in_incentive() {
        let model = DelayModel::paper();
        for ctx in [TemporalContext::Morning, TemporalContext::Afternoon] {
            let delays: Vec<f64> = IncentiveLevel::ALL
                .iter()
                .map(|&l| model.mean_secs(ctx, l))
                .collect();
            assert!(
                delays.windows(2).all(|w| w[0] > w[1]),
                "{ctx}: {delays:?} must decrease"
            );
        }
    }

    #[test]
    fn night_mid_range_is_flat() {
        let model = DelayModel::paper();
        for ctx in [TemporalContext::Evening, TemporalContext::Midnight] {
            // Levels 2c..=10c within 10% of each other.
            let mids: Vec<f64> = IncentiveLevel::ALL[1..6]
                .iter()
                .map(|&l| model.mean_secs(ctx, l))
                .collect();
            let max = mids.iter().copied().fold(0.0, f64::max);
            let min = mids.iter().copied().fold(f64::INFINITY, f64::min);
            assert!(
                (max - min) / min < 0.1,
                "{ctx} mid-range not flat: {mids:?}"
            );
            // But the extremes deviate.
            assert!(model.mean_secs(ctx, IncentiveLevel::C1) > 1.5 * max);
            assert!(model.mean_secs(ctx, IncentiveLevel::C20) < min);
        }
    }

    #[test]
    fn night_is_faster_than_morning_at_low_incentives() {
        let model = DelayModel::paper();
        for level in [IncentiveLevel::C1, IncentiveLevel::C2, IncentiveLevel::C4] {
            assert!(
                model.mean_secs(TemporalContext::Evening, level)
                    < model.mean_secs(TemporalContext::Morning, level)
            );
        }
    }

    #[test]
    fn samples_scatter_around_the_mean() {
        let model = DelayModel::paper();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 4000;
        let mean_hat: f64 = (0..n)
            .map(|_| model.sample_secs(TemporalContext::Evening, IncentiveLevel::C4, 1.0, &mut rng))
            .sum::<f64>()
            / n as f64;
        // Log-normal mean is base * exp(sigma^2 / 2).
        let expected = 242.0 * (0.18f64 * 0.18 / 2.0).exp();
        assert!(
            (mean_hat - expected).abs() / expected < 0.05,
            "sampled mean {mean_hat}, expected {expected}"
        );
    }

    #[test]
    fn slow_workers_take_longer() {
        let model = DelayModel::paper();
        let mut rng = StdRng::seed_from_u64(3);
        let fast = model.sample_secs(TemporalContext::Morning, IncentiveLevel::C4, 0.5, &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let slow = model.sample_secs(TemporalContext::Morning, IncentiveLevel::C4, 2.0, &mut rng);
        assert!(slow > fast);
        assert!((slow / fast - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mean delays must be positive")]
    fn zero_mean_rejected() {
        let mut table = DelayModel::paper().base_secs;
        table[0][0] = 0.0;
        DelayModel::from_table(table, 0.1);
    }
}
