//! The pilot study of Section IV-B1: characterize the black-box platform by
//! sweeping incentive levels across temporal contexts (Figures 5 and 6).

use crate::{IncentiveLevel, Platform};
use crowdlearn_dataset::{SyntheticImage, TemporalContext};
use crowdlearn_metrics::SummaryStats;
use serde::{Deserialize, Serialize};

/// Configuration of a pilot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PilotConfig {
    /// Queries issued per (incentive, context) cell.
    pub queries_per_cell: usize,
}

impl PilotConfig {
    /// The paper's grid: "we issue a total of 20 queries and each query is
    /// allowed to be answered by 5 workers" per cell (100 HITs per cell).
    pub fn paper() -> Self {
        Self {
            queries_per_cell: 20,
        }
    }
}

impl Default for PilotConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Measurements of one (context, incentive) grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PilotCell {
    /// The context of this cell.
    pub context: TemporalContext,
    /// The incentive of this cell.
    pub incentive: IncentiveLevel,
    /// Per-HIT response delays (seconds).
    pub delays: SummaryStats,
    /// Per-query label accuracy samples (fraction of the 5 workers correct),
    /// the unit the paper feeds to its Wilcoxon tests.
    pub per_query_accuracy: Vec<f64>,
}

impl PilotCell {
    /// Mean per-HIT delay in this cell.
    pub fn mean_delay_secs(&self) -> f64 {
        self.delays.mean()
    }

    /// Mean label accuracy in this cell.
    pub fn mean_accuracy(&self) -> f64 {
        if self.per_query_accuracy.is_empty() {
            return 0.0;
        }
        self.per_query_accuracy.iter().sum::<f64>() / self.per_query_accuracy.len() as f64
    }
}

/// The full pilot grid: one [`PilotCell`] per (context, incentive) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PilotReport {
    cells: Vec<PilotCell>,
}

impl PilotReport {
    /// The cell for a (context, incentive) pair.
    pub fn cell(&self, context: TemporalContext, incentive: IncentiveLevel) -> &PilotCell {
        &self.cells[context.index() * IncentiveLevel::COUNT + incentive.index()]
    }

    /// All cells, context-major.
    pub fn cells(&self) -> &[PilotCell] {
        &self.cells
    }

    /// Mean delay per (context, incentive) as a context-major table — the
    /// series plotted in Figure 5.
    pub fn delay_table(&self) -> Vec<Vec<f64>> {
        TemporalContext::ALL
            .iter()
            .map(|&ctx| {
                IncentiveLevel::ALL
                    .iter()
                    .map(|&level| self.cell(ctx, level).mean_delay_secs())
                    .collect()
            })
            .collect()
    }

    /// Mean accuracy per incentive level (averaged over contexts) — the
    /// series plotted in Figure 6.
    pub fn quality_by_incentive(&self) -> Vec<f64> {
        IncentiveLevel::ALL
            .iter()
            .map(|&level| {
                TemporalContext::ALL
                    .iter()
                    .map(|&ctx| self.cell(ctx, level).mean_accuracy())
                    .sum::<f64>()
                    / TemporalContext::COUNT as f64
            })
            .collect()
    }

    /// Pools the per-query accuracy samples of one incentive level across
    /// contexts (the paired samples for the Wilcoxon comparisons).
    pub fn accuracy_samples(&self, incentive: IncentiveLevel) -> Vec<f64> {
        TemporalContext::ALL
            .iter()
            .flat_map(|&ctx| self.cell(ctx, incentive).per_query_accuracy.clone())
            .collect()
    }
}

/// Runs the pilot grid against a platform.
#[derive(Debug, Clone, Copy, Default)]
pub struct PilotStudy {
    config: PilotConfig,
}

impl PilotStudy {
    /// Creates a pilot runner.
    pub fn new(config: PilotConfig) -> Self {
        Self { config }
    }

    /// Sweeps every (context, incentive) cell, issuing
    /// `config.queries_per_cell` queries over `images` (cycled if needed).
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty.
    pub fn run(&self, platform: &mut Platform, images: &[&SyntheticImage]) -> PilotReport {
        assert!(!images.is_empty(), "pilot needs at least one image");
        let mut cells = Vec::with_capacity(TemporalContext::COUNT * IncentiveLevel::COUNT);
        for &context in &TemporalContext::ALL {
            for &incentive in &IncentiveLevel::ALL {
                let mut delays = SummaryStats::new();
                let mut per_query_accuracy = Vec::with_capacity(self.config.queries_per_cell);
                for q in 0..self.config.queries_per_cell {
                    let image = images[q % images.len()];
                    let response = platform.submit(image, incentive, context);
                    let mut correct = 0usize;
                    for r in &response.responses {
                        delays.push(r.delay_secs);
                        correct += usize::from(r.label == image.truth());
                    }
                    per_query_accuracy.push(correct as f64 / response.responses.len() as f64);
                }
                cells.push(PilotCell {
                    context,
                    incentive,
                    delays,
                    per_query_accuracy,
                });
            }
        }
        PilotReport { cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlatformConfig;
    use crowdlearn_dataset::{Dataset, DatasetConfig};
    use crowdlearn_metrics::wilcoxon_signed_rank;

    fn report() -> PilotReport {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut platform = Platform::new(PlatformConfig::paper().with_seed(21));
        let images: Vec<&SyntheticImage> = ds.train().iter().take(80).collect();
        PilotStudy::new(PilotConfig::paper()).run(&mut platform, &images)
    }

    #[test]
    fn grid_is_complete() {
        let r = report();
        assert_eq!(r.cells().len(), 28);
        for ctx in TemporalContext::ALL {
            for level in IncentiveLevel::ALL {
                let cell = r.cell(ctx, level);
                assert_eq!(cell.context, ctx);
                assert_eq!(cell.incentive, level);
                assert_eq!(cell.delays.len(), 100, "100 HITs per cell");
                assert_eq!(cell.per_query_accuracy.len(), 20);
            }
        }
    }

    #[test]
    fn reproduces_figure5_shape() {
        let r = report();
        let table = r.delay_table();
        // Morning strictly improves from 1c to 20c by a large factor.
        let morning = &table[TemporalContext::Morning.index()];
        assert!(morning[0] > 3.0 * morning[6]);
        // Evening mid-range levels are within 20% of each other.
        let evening = &table[TemporalContext::Evening.index()];
        let mid = &evening[1..6];
        let max = mid.iter().copied().fold(0.0, f64::max);
        let min = mid.iter().copied().fold(f64::INFINITY, f64::min);
        assert!((max - min) / min < 0.2, "evening mid-range {mid:?}");
    }

    #[test]
    fn reproduces_figure6_shape() {
        let r = report();
        let q = r.quality_by_incentive();
        // 1 cent is the worst; everything from 4c upward forms a plateau
        // (the paper's plateau sits near 0.8; ours near 0.75 because the
        // synthetic ambiguity band is harsher — see EXPERIMENTS.md).
        assert!(q[0] < q[2], "quality {q:?}");
        let plateau = &q[2..];
        let max = plateau.iter().copied().fold(0.0, f64::max);
        let min = plateau.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max - min < 0.08, "plateau not flat: {q:?}");
        assert!(min > 0.65, "plateau too low: {q:?}");
    }

    #[test]
    fn adjacent_mid_incentives_are_not_significant() {
        // The paper's Wilcoxon comparisons: 4c vs 6c and 6c vs 8c must be
        // statistically indistinguishable. Quality is flat across the
        // mid-range by construction, so this is a true null — but at the
        // paper's 20 queries per cell a single seeded draw sits within
        // sampling distance of p = 0.05. Triple the pilot so the verdict
        // reflects the model, not one draw's luck.
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut platform = Platform::new(PlatformConfig::paper().with_seed(21));
        let images: Vec<&SyntheticImage> = ds.train().iter().take(80).collect();
        let r = PilotStudy::new(PilotConfig {
            queries_per_cell: 60,
        })
        .run(&mut platform, &images);
        for (a, b) in [
            (IncentiveLevel::C4, IncentiveLevel::C6),
            (IncentiveLevel::C6, IncentiveLevel::C8),
        ] {
            let sa = r.accuracy_samples(a);
            let sb = r.accuracy_samples(b);
            let out = wilcoxon_signed_rank(&sa, &sb);
            assert!(
                !out.significant(0.05),
                "{a} vs {b}: p = {} should not be significant",
                out.p_value
            );
        }
    }
}
