//! Fixed-form evidence questionnaires (paper Figure 3 / Section IV-C).
//!
//! "We not only ask the crowd to provide direct labels of data samples, but
//! also provide their evidence. … we use the format of fixed-form
//! questionnaire rather than free-form input to eliminate the challenge of
//! parsing natural language."

use crowdlearn_dataset::{DamageLabel, ImageAttribute, SyntheticImage};
use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// One worker's answers to the five evidence questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuestionnaireAnswers {
    /// "Is the image photoshopped (i.e., a fake image)?"
    pub photoshopped: bool,
    /// "Is this a close-up shot that hides the surrounding scene?"
    pub close_up: bool,
    /// "Is the image resolution too low to judge details?"
    pub low_resolution: bool,
    /// "Does this image show structural damage (roads, buildings)?"
    pub structural_damage: bool,
    /// "Are people shown affected or injured?"
    pub people_affected: bool,
}

impl QuestionnaireAnswers {
    /// Number of questions.
    pub const COUNT: usize = 5;

    /// The factually correct answers for an image — what a perfectly
    /// attentive annotator would report.
    ///
    /// The artifact questions (fake / close-up / low-resolution) follow the
    /// image attribute exactly; the scene-content questions are only
    /// *correlated* with severity — not every severe image shows people,
    /// not every damaged scene shows its structures — so the questionnaire
    /// narrows the label without fully determining it (which keeps CQC in
    /// the paper's ~0.93 accuracy regime rather than a perfect decoder).
    /// Answers are a fixed property of the image (hash-derived), so all
    /// attentive workers agree on them.
    pub fn ground_truth(image: &SyntheticImage) -> Self {
        let attr = image.attribute();
        let h1 = hash01(image.id().0 as u64 ^ 0x51de);
        let h2 = hash01(image.id().0 as u64 ^ 0xfade);
        let structural_damage = match (image.truth(), attr) {
            (_, ImageAttribute::Implicit) => false,
            (DamageLabel::NoDamage, _) => h1 < 0.04,
            (DamageLabel::Moderate, _) => h1 < 0.80,
            (DamageLabel::Severe, _) => h1 < 0.97,
        };
        let people_affected = match (image.truth(), attr) {
            (_, ImageAttribute::Implicit) => true,
            (DamageLabel::NoDamage, _) => h2 < 0.04,
            (DamageLabel::Moderate, _) => h2 < 0.15,
            (DamageLabel::Severe, _) => h2 < 0.88,
        };
        Self {
            photoshopped: attr == ImageAttribute::Fake,
            close_up: attr == ImageAttribute::CloseUp,
            low_resolution: attr == ImageAttribute::LowResolution,
            structural_damage,
            people_affected,
        }
    }

    /// Encodes the answers as 0/1 features in declaration order.
    pub fn as_features(&self) -> [f64; Self::COUNT] {
        [
            f64::from(self.photoshopped),
            f64::from(self.close_up),
            f64::from(self.low_resolution),
            f64::from(self.structural_damage),
            f64::from(self.people_affected),
        ]
    }

    /// Flips answer `index` (used to inject per-question worker noise).
    ///
    /// # Panics
    ///
    /// Panics if `index >= COUNT`.
    pub fn flip(&mut self, index: usize) {
        match index {
            0 => self.photoshopped = !self.photoshopped,
            1 => self.close_up = !self.close_up,
            2 => self.low_resolution = !self.low_resolution,
            3 => self.structural_damage = !self.structural_damage,
            4 => self.people_affected = !self.people_affected,
            _ => panic!("question index {index} out of range"),
        }
    }
}

// Snapshot codec: the five answers in declaration order.
impl Encode for QuestionnaireAnswers {
    fn encode(&self, out: &mut Vec<u8>) {
        self.photoshopped.encode(out);
        self.close_up.encode(out);
        self.low_resolution.encode(out);
        self.structural_damage.encode(out);
        self.people_affected.encode(out);
    }
}

impl Decode for QuestionnaireAnswers {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            photoshopped: bool::decode(r)?,
            close_up: bool::decode(r)?,
            low_resolution: bool::decode(r)?,
            structural_damage: bool::decode(r)?,
            people_affected: bool::decode(r)?,
        })
    }
}

/// Deterministic hash of a key to `[0, 1)` (SplitMix64 finalizer).
fn hash01(key: u64) -> f64 {
    let mut x = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdlearn_dataset::{Dataset, DatasetConfig};

    #[test]
    fn ground_truth_flags_fake_images() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        for img in ds.images() {
            let q = QuestionnaireAnswers::ground_truth(img);
            assert_eq!(q.photoshopped, img.attribute() == ImageAttribute::Fake);
            assert_eq!(q.close_up, img.attribute() == ImageAttribute::CloseUp);
            assert_eq!(
                q.low_resolution,
                img.attribute() == ImageAttribute::LowResolution
            );
        }
    }

    #[test]
    fn implicit_damage_shows_people_not_structures() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        for img in ds
            .images()
            .iter()
            .filter(|i| i.attribute() == ImageAttribute::Implicit)
        {
            let q = QuestionnaireAnswers::ground_truth(img);
            assert!(q.people_affected);
            assert!(!q.structural_damage);
        }
    }

    #[test]
    fn scene_questions_correlate_with_severity_without_determining_it() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let rate = |label: crowdlearn_dataset::DamageLabel| {
            let imgs: Vec<_> = ds
                .images()
                .iter()
                .filter(|i| i.truth() == label && i.attribute() == ImageAttribute::Plain)
                .collect();
            let yes = imgs
                .iter()
                .filter(|i| QuestionnaireAnswers::ground_truth(i).people_affected)
                .count();
            yes as f64 / imgs.len() as f64
        };
        let severe = rate(crowdlearn_dataset::DamageLabel::Severe);
        let none = rate(crowdlearn_dataset::DamageLabel::NoDamage);
        assert!(severe > none + 0.3, "severe {severe} vs none {none}");
        assert!(severe < 0.95, "must not be deterministic: {severe}");
    }

    #[test]
    fn features_are_binary_and_ordered() {
        let q = QuestionnaireAnswers {
            photoshopped: true,
            close_up: false,
            low_resolution: true,
            structural_damage: false,
            people_affected: true,
        };
        assert_eq!(q.as_features(), [1.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn flip_toggles_each_question() {
        let mut q = QuestionnaireAnswers::ground_truth(
            &Dataset::generate(&DatasetConfig::paper()).images()[0].clone(),
        );
        for i in 0..QuestionnaireAnswers::COUNT {
            let before = q.as_features()[i];
            q.flip(i);
            assert_ne!(q.as_features()[i], before);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_rejects_bad_index() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut q = QuestionnaireAnswers::ground_truth(&ds.images()[0]);
        q.flip(5);
    }
}
