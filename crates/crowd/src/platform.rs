//! The black-box platform API: submit a query, get worker responses.

use crate::{DelayModel, IncentiveLevel, QualityModel, QuestionnaireAnswers, WorkerPool};
use crowdlearn_dataset::{DamageLabel, ImageAttribute, ImageId, SyntheticImage, TemporalContext};
use crowdlearn_truth::WorkerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// Configuration of the simulated platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    pool_size: usize,
    workers_per_query: usize,
    seed: u64,
    churn_rate: f64,
    delay_model: DelayModel,
    quality_model: QualityModel,
}

impl PlatformConfig {
    /// The paper's setup: a large anonymous pool, 5 workers per query
    /// ("each query is allowed to be answered by 5 workers"), and the
    /// pilot-calibrated delay/quality surfaces.
    pub fn paper() -> Self {
        Self {
            pool_size: 80,
            workers_per_query: 5,
            seed: 0x7c0_4d5,
            churn_rate: 0.0,
            delay_model: DelayModel::paper(),
            quality_model: QualityModel::paper(),
        }
    }

    /// Sets the RNG seed (decorrelates repeated experiment runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of workers answering each query.
    pub fn with_workers_per_query(mut self, n: usize) -> Self {
        self.workers_per_query = n;
        self
    }

    /// Sets the worker-pool size.
    pub fn with_pool_size(mut self, n: usize) -> Self {
        self.pool_size = n;
        self
    }

    /// Replaces the delay model (for ablations).
    pub fn with_delay_model(mut self, model: DelayModel) -> Self {
        self.delay_model = model;
        self
    }

    /// Replaces the quality model (for ablations).
    pub fn with_quality_model(mut self, model: QualityModel) -> Self {
        self.quality_model = model;
        self
    }

    /// Sets the worker-churn rate: the per-query probability that one
    /// randomly chosen worker leaves the platform and a brand-new one (fresh
    /// id, fresh traits, no history) signs up. Churn is what defeats
    /// history-based quality schemes — "workers are new to the platform and
    /// do not have sufficient labeling history" (paper §IV-C).
    ///
    /// # Panics
    ///
    /// Panics (at [`Platform::new`]) if the rate is outside `[0, 1]`.
    pub fn with_churn_rate(mut self, rate: f64) -> Self {
        self.churn_rate = rate;
        self
    }

    fn validate(&self) {
        assert!(self.pool_size > 0, "pool must be non-empty");
        assert!(
            self.workers_per_query > 0 && self.workers_per_query <= self.pool_size,
            "workers per query must be in 1..=pool_size"
        );
        assert!(
            (0.0..=1.0).contains(&self.churn_rate),
            "churn rate must be in [0, 1]"
        );
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One worker's response to a query: a damage label, the questionnaire, and
/// the time it took.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerResponse {
    /// The responding worker.
    pub worker: WorkerId,
    /// The damage label the worker assigned.
    pub label: DamageLabel,
    /// The worker's fixed-form evidence answers.
    pub questionnaire: QuestionnaireAnswers,
    /// Seconds between posting the HIT and this response.
    pub delay_secs: f64,
}

/// The platform's answer to one query (paper Definition 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResponse {
    /// The queried image.
    pub image_id: ImageId,
    /// The incentive that was paid.
    pub incentive: IncentiveLevel,
    /// All worker responses.
    pub responses: Vec<WorkerResponse>,
    /// Seconds until the *last* worker answered — the query is only usable
    /// once every response is in, so this is the query's delay `d_x^t`.
    pub completion_delay_secs: f64,
}

impl QueryResponse {
    /// The workers' labels, in response order.
    pub fn labels(&self) -> Vec<DamageLabel> {
        self.responses.iter().map(|r| r.label).collect()
    }

    /// Mean per-worker response delay.
    pub fn mean_worker_delay_secs(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        self.responses.iter().map(|r| r.delay_secs).sum::<f64>() / self.responses.len() as f64
    }
}

/// A HIT that has been posted (and paid for) but whose answers have not yet
/// been *observed* by the requester.
///
/// [`Platform::post`] draws the complete worker outcome — labels,
/// questionnaires, and per-worker delays — at post time, exactly as
/// [`Platform::submit`] does, so posting consumes the same RNG stream in the
/// same order. What a `PendingHit` adds is the *temporal* view: an
/// event-driven runtime can schedule the answer for virtual time
/// `post_time + completion_delay_secs()` and, in the meantime, ask which
/// worker responses would already be visible at any earlier deadline via
/// [`PendingHit::responses_by`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingHit {
    response: QueryResponse,
    context: TemporalContext,
}

impl PendingHit {
    /// The queried image.
    pub fn image_id(&self) -> ImageId {
        self.response.image_id
    }

    /// The incentive paid for this HIT.
    pub fn incentive(&self) -> IncentiveLevel {
        self.response.incentive
    }

    /// The temporal context the HIT was posted under.
    pub fn context(&self) -> TemporalContext {
        self.context
    }

    /// Seconds (from posting) until the last worker answers — when the
    /// query becomes usable.
    pub fn completion_delay_secs(&self) -> f64 {
        self.response.completion_delay_secs
    }

    /// Whether every worker will have answered within `deadline_secs` of
    /// posting.
    pub fn is_complete_by(&self, deadline_secs: f64) -> bool {
        self.response.completion_delay_secs <= deadline_secs
    }

    /// The worker responses that have arrived within `deadline_secs` of
    /// posting (a partial view of an expired or still-running HIT).
    pub fn responses_by(&self, deadline_secs: f64) -> Vec<&WorkerResponse> {
        self.response
            .responses
            .iter()
            .filter(|r| r.delay_secs <= deadline_secs)
            .collect()
    }

    /// Borrows the full (eventual) response.
    pub fn response(&self) -> &QueryResponse {
        &self.response
    }

    /// Defers every worker response (and hence the completion) by
    /// `wait_secs`: the HIT sat in a queue for that long before any worker
    /// picked it up. This is how a fleet orchestrator layers cross-stream
    /// worker contention on top of the pilot-calibrated delay model without
    /// touching the platform's RNG stream — the drawn labels and relative
    /// per-worker timings are untouched, everything just happens later.
    ///
    /// # Panics
    ///
    /// Panics if `wait_secs` is negative or non-finite.
    pub fn defer_by(&mut self, wait_secs: f64) {
        assert!(
            wait_secs.is_finite() && wait_secs >= 0.0,
            "queue wait must be finite and non-negative"
        );
        if wait_secs == 0.0 {
            return;
        }
        for r in &mut self.response.responses {
            r.delay_secs += wait_secs;
        }
        self.response.completion_delay_secs += wait_secs;
    }

    /// Consumes the HIT, waiting out the full completion delay — the
    /// blocking view [`Platform::submit`] returns.
    pub fn into_response(self) -> QueryResponse {
        self.response
    }
}

/// Identity of the requester (a fleet shard, a tenant) a platform's posts
/// are booked against. Single-stream runs never set one and everything is
/// attributed to `SubmitterId::DEFAULT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubmitterId(pub u32);

impl SubmitterId {
    /// The implicit submitter of every post when none was declared.
    pub const DEFAULT: SubmitterId = SubmitterId(0);
}

/// One submitter's share of the platform's traffic — the attribution a
/// fleet orchestrator audits contention with.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SubmitterUsage {
    /// First-attempt queries this submitter posted.
    pub queries: u64,
    /// Repost attempts (retries of timed-out HITs) this submitter posted.
    /// Kept apart from `queries` so a retried query is still *one* logical
    /// query in the submitter's ledger.
    pub reposts: u64,
    /// Worker-seconds this submitter consumed: the sum of every sampled
    /// worker's service time across all of its posts (reposts included) —
    /// the quantity that makes cross-stream pool contention observable.
    pub worker_seconds: f64,
    /// Cents this submitter was charged (reposts included).
    pub spent_cents: u64,
}

/// Per-context / per-incentive accounting of a platform's query traffic —
/// the receipt the requester can audit its spending with.
///
/// First-attempt queries and reposts are booked in *separate* grids:
/// [`PlatformStats::queries_at`] counts logical queries, so a query whose
/// HIT timed out and was retried is not double-counted, while the money and
/// worker time of every attempt still reconcile with the ledger through
/// [`PlatformStats::spent_in_cents`] and [`SubmitterUsage`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformStats {
    /// `queries[context][incentive]` first-attempt counts.
    queries: [[u64; IncentiveLevel::COUNT]; TemporalContext::COUNT],
    /// `reposts[context][incentive]` retry counts.
    reposts: [[u64; IncentiveLevel::COUNT]; TemporalContext::COUNT],
    /// Per-submitter usage, indexed by `SubmitterId.0` (dense: fleet shards
    /// are numbered from zero).
    by_submitter: Vec<SubmitterUsage>,
}

impl Default for PlatformStats {
    fn default() -> Self {
        Self {
            queries: [[0; IncentiveLevel::COUNT]; TemporalContext::COUNT],
            reposts: [[0; IncentiveLevel::COUNT]; TemporalContext::COUNT],
            by_submitter: Vec::new(),
        }
    }
}

impl PlatformStats {
    fn record(
        &mut self,
        context: TemporalContext,
        incentive: IncentiveLevel,
        submitter: SubmitterId,
        is_repost: bool,
        worker_seconds: f64,
    ) {
        let grid = if is_repost {
            &mut self.reposts
        } else {
            &mut self.queries
        };
        grid[context.index()][incentive.index()] += 1;
        let slot = submitter.0 as usize;
        if slot >= self.by_submitter.len() {
            self.by_submitter
                .resize(slot + 1, SubmitterUsage::default());
        }
        let usage = &mut self.by_submitter[slot];
        if is_repost {
            usage.reposts += 1;
        } else {
            usage.queries += 1;
        }
        usage.worker_seconds += worker_seconds;
        usage.spent_cents += u64::from(incentive.cents());
    }

    /// First-attempt queries submitted at a specific (context, incentive)
    /// cell. Reposts are booked separately ([`PlatformStats::reposts_at`]),
    /// so a retried query counts once here.
    pub fn queries_at(&self, context: TemporalContext, incentive: IncentiveLevel) -> u64 {
        self.queries[context.index()][incentive.index()]
    }

    /// Total first-attempt queries submitted in a context.
    pub fn queries_in(&self, context: TemporalContext) -> u64 {
        self.queries[context.index()].iter().sum()
    }

    /// Repost attempts at a specific (context, incentive) cell.
    pub fn reposts_at(&self, context: TemporalContext, incentive: IncentiveLevel) -> u64 {
        self.reposts[context.index()][incentive.index()]
    }

    /// Total repost attempts in a context.
    pub fn reposts_in(&self, context: TemporalContext) -> u64 {
        self.reposts[context.index()].iter().sum()
    }

    /// Every posted attempt in a context: first attempts plus reposts.
    pub fn attempts_in(&self, context: TemporalContext) -> u64 {
        self.queries_in(context) + self.reposts_in(context)
    }

    /// Cents spent in a context, across first attempts *and* reposts (every
    /// attempt is paid for, so this reconciles with the platform ledger).
    pub fn spent_in_cents(&self, context: TemporalContext) -> u64 {
        IncentiveLevel::ALL
            .iter()
            .map(|&l| {
                (self.queries_at(context, l) + self.reposts_at(context, l)) * u64::from(l.cents())
            })
            .sum()
    }

    /// Mean incentive (in cents) paid per posted attempt in a context;
    /// `None` before any attempt.
    pub fn mean_incentive_cents(&self, context: TemporalContext) -> Option<f64> {
        let n = self.attempts_in(context);
        (n > 0).then(|| self.spent_in_cents(context) as f64 / n as f64)
    }

    /// Number of submitter slots with recorded usage (one past the highest
    /// submitter id seen).
    pub fn submitters(&self) -> usize {
        self.by_submitter.len()
    }

    /// What `submitter` consumed so far (zeroes for an unseen submitter).
    pub fn usage(&self, submitter: SubmitterId) -> SubmitterUsage {
        self.by_submitter
            .get(submitter.0 as usize)
            .copied()
            .unwrap_or_default()
    }
}

/// The simulated black-box crowdsourcing platform.
///
/// The requester-visible API is intentionally narrow — submit a query with
/// an incentive, receive responses, watch the money drain — mirroring the
/// paper's observation that "the requester can only submit tasks and define
/// the incentives for each task".
#[derive(Debug, Clone)]
pub struct Platform {
    pool: WorkerPool,
    config: PlatformConfig,
    rng: StdRng,
    spent_cents: u64,
    queries_served: u64,
    next_worker_id: u32,
    submitter: SubmitterId,
    stats: PlatformStats,
}

impl Platform {
    /// Boots a platform with a freshly generated worker population.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (empty pool, more workers
    /// per query than the pool holds).
    pub fn new(config: PlatformConfig) -> Self {
        config.validate();
        let pool = WorkerPool::generate(config.pool_size, config.seed ^ 0x9e37_79b9);
        Self {
            next_worker_id: pool.len() as u32,
            pool,
            rng: StdRng::seed_from_u64(config.seed),
            spent_cents: 0,
            queries_served: 0,
            submitter: SubmitterId::DEFAULT,
            stats: PlatformStats::default(),
            config,
        }
    }

    /// Boots a platform over an explicit worker pool (failure injection).
    pub fn with_pool(config: PlatformConfig, pool: WorkerPool) -> Self {
        assert!(
            config.workers_per_query <= pool.len(),
            "workers per query must not exceed the pool"
        );
        Self {
            next_worker_id: pool.len() as u32,
            pool,
            rng: StdRng::seed_from_u64(config.seed),
            spent_cents: 0,
            queries_served: 0,
            submitter: SubmitterId::DEFAULT,
            stats: PlatformStats::default(),
            config,
        }
    }

    /// Declares who subsequent posts are booked against in
    /// [`PlatformStats`]. A fleet orchestrator sets each shard's platform to
    /// the shard's id at boot; standalone platforms stay on
    /// [`SubmitterId::DEFAULT`]. Attribution only — no RNG draw, no charge,
    /// no behavioral change.
    pub fn set_submitter(&mut self, submitter: SubmitterId) {
        self.submitter = submitter;
    }

    /// The submitter posts are currently booked against.
    pub fn submitter(&self) -> SubmitterId {
        self.submitter
    }

    /// Total cents charged so far.
    pub fn spent_cents(&self) -> u64 {
        self.spent_cents
    }

    /// Number of queries served so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// The worker population (visible to the simulator owner, *not* part of
    /// the requester-facing black-box surface).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Accounting breakdown of everything submitted so far.
    pub fn stats(&self) -> &PlatformStats {
        &self.stats
    }

    /// Submits one image query at `incentive` under `context` and blocks
    /// until every worker has answered; returns all worker responses.
    /// Charges `incentive.cents()` to the ledger. Equivalent to
    /// [`Platform::post`] followed by [`PendingHit::into_response`].
    pub fn submit(
        &mut self,
        image: &SyntheticImage,
        incentive: IncentiveLevel,
        context: TemporalContext,
    ) -> QueryResponse {
        self.post(image, incentive, context).into_response()
    }

    /// Posts one image query at `incentive` under `context` *without*
    /// waiting for the answers: the returned [`PendingHit`] carries the full
    /// worker outcome plus the virtual delay after which it becomes
    /// observable. Charges `incentive.cents()` to the ledger immediately
    /// (HITs are paid on posting) and consumes exactly the same RNG draws as
    /// [`Platform::submit`], so a posted-then-awaited query is
    /// byte-identical to a blocking one.
    pub fn post(
        &mut self,
        image: &SyntheticImage,
        incentive: IncentiveLevel,
        context: TemporalContext,
    ) -> PendingHit {
        self.post_attempt(image, incentive, context, false)
    }

    /// Reposts a query whose earlier HIT expired: crowd-facing behavior —
    /// charging, worker sampling, RNG draws — is *identical* to
    /// [`Platform::post`], but the attempt is booked into the stats' repost
    /// grid instead of the query grid, so the retried query is not
    /// double-counted against its submitter's logical query tally.
    pub fn repost(
        &mut self,
        image: &SyntheticImage,
        incentive: IncentiveLevel,
        context: TemporalContext,
    ) -> PendingHit {
        self.post_attempt(image, incentive, context, true)
    }

    fn post_attempt(
        &mut self,
        image: &SyntheticImage,
        incentive: IncentiveLevel,
        context: TemporalContext,
        is_repost: bool,
    ) -> PendingHit {
        self.spent_cents += u64::from(incentive.cents());
        self.queries_served += 1;

        // Worker churn: occasionally one freelancer leaves and a new one
        // (fresh id, no history anywhere) takes their slot.
        if self.config.churn_rate > 0.0 && self.rng.gen::<f64>() < self.config.churn_rate {
            let slot = self.rng.gen_range(0..self.pool.len());
            let id = WorkerId(self.next_worker_id);
            self.next_worker_id += 1;
            let replacement = crate::Worker::generate(id, &mut self.rng);
            self.pool.replace(slot, replacement);
        }

        let workers = self
            .pool
            .sample(self.config.workers_per_query, context, &mut self.rng);
        // Collect worker traits first so we can reborrow the RNG mutably.
        let traits: Vec<(WorkerId, f64, f64)> = workers
            .iter()
            .map(|w| (w.id(), w.reliability(), w.speed_factor()))
            .collect();

        let mut responses = Vec::with_capacity(traits.len());
        let mut completion = 0.0f64;
        let mut worker_seconds = 0.0f64;
        for (id, reliability, speed) in traits {
            let delay =
                self.config
                    .delay_model
                    .sample_secs(context, incentive, speed, &mut self.rng);
            completion = completion.max(delay);
            worker_seconds += delay;

            let p_correct =
                self.config
                    .quality_model
                    .correct_probability(reliability, incentive, context);
            let label = self.sample_label(image, p_correct);
            let questionnaire = self.sample_questionnaire(image, p_correct);
            responses.push(WorkerResponse {
                worker: id,
                label,
                questionnaire,
                delay_secs: delay,
            });
        }

        self.stats.record(
            context,
            incentive,
            self.submitter,
            is_repost,
            worker_seconds,
        );

        PendingHit {
            response: QueryResponse {
                image_id: image.id(),
                incentive,
                responses,
                completion_delay_secs: completion,
            },
            context,
        }
    }

    /// Per-image human difficulty and the *correlated* wrong label workers
    /// gravitate to when they err.
    ///
    /// Severity grading is genuinely ambiguous for a fraction of ordinary
    /// images (the moderate/severe and none/moderate boundaries), and
    /// deceptive or degraded images mislead humans in a *consistent*
    /// direction (the visual artifact). This correlation is what pulls
    /// majority voting down to the paper's Table I level (~0.84) even though
    /// individual workers average ~0.8 — independent errors would let five
    /// votes wash them out.
    fn image_difficulty(image: &SyntheticImage) -> (f64, DamageLabel) {
        match image.attribute() {
            ImageAttribute::Plain => {
                if image.is_ambiguous() {
                    // Ambiguous severity: confusion flows to the adjacent
                    // class (fixed per image).
                    let confusion = match image.truth() {
                        DamageLabel::NoDamage => DamageLabel::Moderate,
                        DamageLabel::Moderate => {
                            if hash01(image.id().0 as u64 ^ 0xabcd) < 0.5 {
                                DamageLabel::Severe
                            } else {
                                DamageLabel::NoDamage
                            }
                        }
                        DamageLabel::Severe => DamageLabel::Moderate,
                    };
                    (0.45, confusion)
                } else {
                    (0.02, DamageLabel::Moderate)
                }
            }
            // Deceptive images mislead toward what they *show*.
            ImageAttribute::Fake | ImageAttribute::CloseUp => (0.20, image.visual_label()),
            ImageAttribute::Implicit => (0.20, DamageLabel::NoDamage),
            // Low resolution hides the damage.
            ImageAttribute::LowResolution => (0.25, DamageLabel::NoDamage),
        }
    }

    /// A correct worker reads the contextual evidence and reports the truth;
    /// an incorrect one reports the image's correlated confusion label with
    /// probability 0.85 (workers err the same way on the same artifact) or a
    /// uniformly random other class.
    fn sample_label(&mut self, image: &SyntheticImage, p_correct: f64) -> DamageLabel {
        let (difficulty, confusion) = Self::image_difficulty(image);
        if self.rng.gen::<f64>() < p_correct * (1.0 - difficulty) {
            return image.truth();
        }
        if confusion != image.truth() && self.rng.gen::<f64>() < 0.85 {
            return confusion;
        }
        // A uniformly random label different from the truth.
        let offset = self.rng.gen_range(1..DamageLabel::COUNT);
        DamageLabel::from_index((image.truth().index() + offset) % DamageLabel::COUNT)
    }

    /// Each questionnaire answer independently matches the ground truth with
    /// probability `min(p_correct + 0.05, 0.99)` — evidence questions are a
    /// little easier than severity grading.
    fn sample_questionnaire(
        &mut self,
        image: &SyntheticImage,
        p_correct: f64,
    ) -> QuestionnaireAnswers {
        let mut answers = QuestionnaireAnswers::ground_truth(image);
        let p_answer = (p_correct + 0.05).min(0.99);
        for q in 0..QuestionnaireAnswers::COUNT {
            if self.rng.gen::<f64>() >= p_answer {
                answers.flip(q);
            }
        }
        answers
    }
}

// ---------------------------------------------------------------------------
// Snapshot codecs (`serde::binary`): everything a resumed run needs to keep
// serving byte-identical responses — the worker pool, the configuration, the
// ledger, and the RNG mid-stream state. Decoding re-checks constructor
// invariants and reports `Invalid` instead of panicking.

impl Encode for PlatformConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pool_size.encode(out);
        self.workers_per_query.encode(out);
        self.seed.encode(out);
        self.churn_rate.encode(out);
        self.delay_model.encode(out);
        self.quality_model.encode(out);
    }
}

impl Decode for PlatformConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let config = Self {
            pool_size: usize::decode(r)?,
            workers_per_query: usize::decode(r)?,
            seed: u64::decode(r)?,
            churn_rate: f64::decode(r)?,
            delay_model: DelayModel::decode(r)?,
            quality_model: QualityModel::decode(r)?,
        };
        let valid = config.pool_size > 0
            && config.workers_per_query > 0
            && config.workers_per_query <= config.pool_size
            && (0.0..=1.0).contains(&config.churn_rate);
        if !valid {
            return Err(DecodeError::Invalid);
        }
        Ok(config)
    }
}

impl Encode for WorkerResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        self.worker.0.encode(out);
        self.label.encode(out);
        self.questionnaire.encode(out);
        self.delay_secs.encode(out);
    }
}

impl Decode for WorkerResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let worker = WorkerId(u32::decode(r)?);
        let label = DamageLabel::decode(r)?;
        let questionnaire = QuestionnaireAnswers::decode(r)?;
        let delay_secs = f64::decode(r)?;
        if !delay_secs.is_finite() || delay_secs < 0.0 {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            worker,
            label,
            questionnaire,
            delay_secs,
        })
    }
}

impl Encode for QueryResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        self.image_id.encode(out);
        self.incentive.encode(out);
        self.responses.encode(out);
        self.completion_delay_secs.encode(out);
    }
}

impl Decode for QueryResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let image_id = ImageId::decode(r)?;
        let incentive = IncentiveLevel::decode(r)?;
        let responses = Vec::<WorkerResponse>::decode(r)?;
        let completion_delay_secs = f64::decode(r)?;
        if !completion_delay_secs.is_finite() || completion_delay_secs < 0.0 {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            image_id,
            incentive,
            responses,
            completion_delay_secs,
        })
    }
}

impl Encode for PendingHit {
    fn encode(&self, out: &mut Vec<u8>) {
        self.response.encode(out);
        self.context.encode(out);
    }
}

impl Decode for PendingHit {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            response: QueryResponse::decode(r)?,
            context: TemporalContext::decode(r)?,
        })
    }
}

impl Encode for SubmitterUsage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.queries.encode(out);
        self.reposts.encode(out);
        self.worker_seconds.encode(out);
        self.spent_cents.encode(out);
    }
}

impl Decode for SubmitterUsage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let usage = Self {
            queries: u64::decode(r)?,
            reposts: u64::decode(r)?,
            worker_seconds: f64::decode(r)?,
            spent_cents: u64::decode(r)?,
        };
        if !usage.worker_seconds.is_finite() || usage.worker_seconds < 0.0 {
            return Err(DecodeError::Invalid);
        }
        Ok(usage)
    }
}

impl Encode for PlatformStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.queries.encode(out);
        self.reposts.encode(out);
        self.by_submitter.encode(out);
    }
}

impl Decode for PlatformStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            queries: Decode::decode(r)?,
            reposts: Decode::decode(r)?,
            by_submitter: Vec::<SubmitterUsage>::decode(r)?,
        })
    }
}

impl Encode for Platform {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pool.encode(out);
        self.config.encode(out);
        self.rng.state().encode(out);
        self.spent_cents.encode(out);
        self.queries_served.encode(out);
        self.next_worker_id.encode(out);
        self.submitter.0.encode(out);
        self.stats.encode(out);
    }
}

impl Decode for Platform {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let pool = WorkerPool::decode(r)?;
        let config = PlatformConfig::decode(r)?;
        let rng = StdRng::from_state(<[u64; 4]>::decode(r)?);
        let spent_cents = u64::decode(r)?;
        let queries_served = u64::decode(r)?;
        let next_worker_id = u32::decode(r)?;
        let submitter = SubmitterId(u32::decode(r)?);
        let stats = PlatformStats::decode(r)?;
        if config.workers_per_query > pool.len() {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            pool,
            config,
            rng,
            spent_cents,
            queries_served,
            next_worker_id,
            submitter,
            stats,
        })
    }
}

/// Deterministic hash of a key to `[0, 1)` (SplitMix64 finalizer).
fn hash01(key: u64) -> f64 {
    let mut x = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Worker;
    use crowdlearn_dataset::{Dataset, DatasetConfig, ImageAttribute};

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::paper())
    }

    fn platform(seed: u64) -> Platform {
        Platform::new(PlatformConfig::paper().with_seed(seed))
    }

    #[test]
    fn submit_returns_five_responses_and_charges() {
        let ds = dataset();
        let mut p = platform(1);
        let r = p.submit(&ds.test()[0], IncentiveLevel::C6, TemporalContext::Morning);
        assert_eq!(r.responses.len(), 5);
        assert_eq!(p.spent_cents(), 6);
        assert_eq!(p.queries_served(), 1);
        assert!(r.completion_delay_secs >= r.mean_worker_delay_secs());
    }

    #[test]
    fn crowd_accuracy_is_around_80_percent() {
        let ds = dataset();
        let mut p = platform(2);
        let mut correct = 0usize;
        let mut total = 0usize;
        for img in ds.train().iter().take(100) {
            let r = p.submit(img, IncentiveLevel::C6, TemporalContext::Afternoon);
            for resp in &r.responses {
                total += 1;
                if resp.label == img.truth() {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        // Attentive workers land near 0.8; the ~8% spammer subpopulation and
        // per-image ambiguity pull the blended mean to the mid-0.7s.
        assert!((acc - 0.78).abs() < 0.06, "crowd accuracy {acc}");
    }

    #[test]
    fn crowd_sees_through_fake_images_usually() {
        let ds = dataset();
        let mut p = platform(3);
        let mut correct = 0usize;
        let mut total = 0usize;
        for img in ds
            .images()
            .iter()
            .filter(|i| i.attribute() == ImageAttribute::Fake)
        {
            let r = p.submit(img, IncentiveLevel::C6, TemporalContext::Evening);
            for resp in &r.responses {
                total += 1;
                if resp.label == img.truth() {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(
            acc > 0.65,
            "humans must usually out-judge fakes, accuracy {acc}"
        );
    }

    #[test]
    fn higher_incentive_is_faster_in_the_morning() {
        let ds = dataset();
        let mut p = platform(4);
        let mean_delay = |p: &mut Platform, level| {
            let mut sum = 0.0;
            for img in ds.train().iter().take(40) {
                sum += p
                    .submit(img, level, TemporalContext::Morning)
                    .mean_worker_delay_secs();
            }
            sum / 40.0
        };
        let cheap = mean_delay(&mut p, IncentiveLevel::C1);
        let rich = mean_delay(&mut p, IncentiveLevel::C20);
        assert!(
            rich < cheap / 2.0,
            "morning 20c ({rich}) must be much faster than 1c ({cheap})"
        );
    }

    #[test]
    fn evening_mid_incentives_are_similar() {
        let ds = dataset();
        let mut p = platform(5);
        let mean_delay = |p: &mut Platform, level| {
            let mut sum = 0.0;
            for img in ds.train().iter().take(60) {
                sum += p
                    .submit(img, level, TemporalContext::Evening)
                    .mean_worker_delay_secs();
            }
            sum / 60.0
        };
        let c2 = mean_delay(&mut p, IncentiveLevel::C2);
        let c10 = mean_delay(&mut p, IncentiveLevel::C10);
        assert!(
            (c2 - c10).abs() / c10 < 0.15,
            "evening 2c ({c2}) and 10c ({c10}) must be close"
        );
    }

    #[test]
    fn questionnaires_mostly_match_ground_truth() {
        let ds = dataset();
        let mut p = platform(6);
        let mut agree = 0usize;
        let mut total = 0usize;
        for img in ds.train().iter().take(80) {
            let truth = QuestionnaireAnswers::ground_truth(img).as_features();
            let r = p.submit(img, IncentiveLevel::C6, TemporalContext::Midnight);
            for resp in &r.responses {
                for (a, b) in resp.questionnaire.as_features().iter().zip(&truth) {
                    total += 1;
                    if a == b {
                        agree += 1;
                    }
                }
            }
        }
        let rate = agree as f64 / total as f64;
        assert!(rate > 0.8, "questionnaire agreement {rate}");
    }

    #[test]
    fn adversarial_pool_breaks_label_quality() {
        let ds = dataset();
        let adversaries: Vec<Worker> = (0..10)
            .map(|i| Worker::from_traits(WorkerId(i), 0.05, 1.0, [1.0; 4]))
            .collect();
        let mut p = Platform::with_pool(
            PlatformConfig::paper().with_pool_size(10).with_seed(8),
            WorkerPool::from_workers(adversaries),
        );
        let mut correct = 0usize;
        let mut total = 0usize;
        for img in ds.train().iter().take(50) {
            let r = p.submit(img, IncentiveLevel::C10, TemporalContext::Morning);
            for resp in &r.responses {
                total += 1;
                correct += usize::from(resp.label == img.truth());
            }
        }
        assert!(
            (correct as f64 / total as f64) < 0.3,
            "adversaries must poison labels"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let mut a = platform(9);
        let mut b = platform(9);
        let ra = a.submit(&ds.test()[3], IncentiveLevel::C8, TemporalContext::Evening);
        let rb = b.submit(&ds.test()[3], IncentiveLevel::C8, TemporalContext::Evening);
        assert_eq!(ra, rb);
    }

    #[test]
    fn stats_reconcile_with_the_ledger() {
        let ds = dataset();
        let mut p = platform(14);
        for (i, img) in ds.train().iter().take(30).enumerate() {
            let level = IncentiveLevel::from_index(i % IncentiveLevel::COUNT);
            let ctx = TemporalContext::from_index(i % TemporalContext::COUNT);
            let _ = p.submit(img, level, ctx);
        }
        let stats = p.stats();
        let total_queries: u64 = TemporalContext::ALL
            .iter()
            .map(|&c| stats.queries_in(c))
            .sum();
        let total_spend: u64 = TemporalContext::ALL
            .iter()
            .map(|&c| stats.spent_in_cents(c))
            .sum();
        assert_eq!(total_queries, p.queries_served());
        assert_eq!(total_spend, p.spent_cents());
        assert!(stats
            .mean_incentive_cents(TemporalContext::Morning)
            .is_some());
    }

    #[test]
    fn reposts_are_not_double_counted_but_still_paid_for() {
        let ds = dataset();
        let mut p = platform(15);
        let ctx = TemporalContext::Evening;
        let _ = p.post(&ds.train()[0], IncentiveLevel::C4, ctx);
        let _ = p.repost(&ds.train()[0], IncentiveLevel::C8, ctx);
        let stats = p.stats();
        // One logical query, one retry — not two queries.
        assert_eq!(stats.queries_in(ctx), 1);
        assert_eq!(stats.reposts_in(ctx), 1);
        assert_eq!(stats.attempts_in(ctx), 2);
        assert_eq!(stats.reposts_at(ctx, IncentiveLevel::C8), 1);
        // Both attempts reconcile with the money ledger.
        assert_eq!(stats.spent_in_cents(ctx), 4 + 8);
        assert_eq!(p.spent_cents(), 4 + 8);
        let usage = stats.usage(SubmitterId::DEFAULT);
        assert_eq!((usage.queries, usage.reposts), (1, 1));
        assert_eq!(usage.spent_cents, 12);
        assert!(usage.worker_seconds > 0.0);
    }

    #[test]
    fn repost_consumes_the_same_rng_stream_as_post() {
        let ds = dataset();
        let mut a = platform(16);
        let mut b = platform(16);
        let ra = a.post(&ds.train()[3], IncentiveLevel::C6, TemporalContext::Morning);
        let rb = b.repost(&ds.train()[3], IncentiveLevel::C6, TemporalContext::Morning);
        // Identical worker outcomes — only the stats booking differs.
        assert_eq!(ra, rb);
    }

    #[test]
    fn submitter_attribution_tracks_worker_seconds_per_shard() {
        let ds = dataset();
        let mut p = platform(17);
        p.set_submitter(SubmitterId(2));
        let hit = p.post(&ds.train()[0], IncentiveLevel::C6, TemporalContext::Morning);
        let drawn: f64 = hit.response().responses.iter().map(|r| r.delay_secs).sum();
        p.set_submitter(SubmitterId(0));
        let _ = p.post(&ds.train()[1], IncentiveLevel::C2, TemporalContext::Morning);
        let stats = p.stats();
        assert_eq!(stats.submitters(), 3);
        assert_eq!(stats.usage(SubmitterId(2)).queries, 1);
        assert_eq!(
            stats.usage(SubmitterId(2)).worker_seconds.to_bits(),
            drawn.to_bits()
        );
        assert_eq!(stats.usage(SubmitterId(1)), SubmitterUsage::default());
        assert_eq!(stats.usage(SubmitterId(0)).spent_cents, 2);
    }

    #[test]
    fn defer_by_shifts_every_response_and_the_completion() {
        let ds = dataset();
        let mut p = platform(18);
        let mut hit = p.post(&ds.train()[0], IncentiveLevel::C6, TemporalContext::Evening);
        let base: Vec<f64> = hit
            .response()
            .responses
            .iter()
            .map(|r| r.delay_secs)
            .collect();
        let completion = hit.completion_delay_secs();
        hit.defer_by(0.0); // no-op
        assert_eq!(hit.completion_delay_secs().to_bits(), completion.to_bits());
        hit.defer_by(42.5);
        assert_eq!(hit.completion_delay_secs(), completion + 42.5);
        for (r, b) in hit.response().responses.iter().zip(&base) {
            assert_eq!(r.delay_secs, b + 42.5);
        }
    }

    #[test]
    #[should_panic(expected = "queue wait must be finite")]
    fn defer_by_rejects_negative_waits() {
        let ds = dataset();
        let mut p = platform(19);
        let mut hit = p.post(&ds.train()[0], IncentiveLevel::C6, TemporalContext::Evening);
        hit.defer_by(-1.0);
    }

    #[test]
    fn churn_rotates_the_population() {
        let ds = dataset();
        let mut p = Platform::new(PlatformConfig::paper().with_seed(11).with_churn_rate(0.5));
        let before: Vec<WorkerId> = p.pool().workers().iter().map(|w| w.id()).collect();
        for img in ds.train().iter().take(100) {
            let _ = p.submit(img, IncentiveLevel::C4, TemporalContext::Evening);
        }
        let after: Vec<WorkerId> = p.pool().workers().iter().map(|w| w.id()).collect();
        let replaced = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(replaced > 20, "only {replaced} workers churned");
        // Fresh ids continue past the initial range.
        assert!(after.iter().any(|id| id.0 >= before.len() as u32));
    }

    #[test]
    fn zero_churn_keeps_the_population_stable() {
        let ds = dataset();
        let mut p = Platform::new(PlatformConfig::paper().with_seed(12));
        let before: Vec<WorkerId> = p.pool().workers().iter().map(|w| w.id()).collect();
        for img in ds.train().iter().take(50) {
            let _ = p.submit(img, IncentiveLevel::C4, TemporalContext::Morning);
        }
        let after: Vec<WorkerId> = p.pool().workers().iter().map(|w| w.id()).collect();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "churn rate must be in [0, 1]")]
    fn bad_churn_rate_rejected() {
        Platform::new(PlatformConfig::paper().with_churn_rate(1.5));
    }

    #[test]
    #[should_panic(expected = "workers per query")]
    fn rejects_oversized_query_fanout() {
        Platform::new(
            PlatformConfig::paper()
                .with_pool_size(3)
                .with_workers_per_query(5),
        );
    }

    #[test]
    fn snapshot_codec_resumes_mid_stream_byte_identically() {
        use serde::binary::Decode;
        let ds = dataset();
        let mut live = Platform::new(PlatformConfig::paper().with_seed(21).with_churn_rate(0.3));
        for img in ds.train().iter().take(17) {
            let _ = live.submit(img, IncentiveLevel::C6, TemporalContext::Evening);
        }
        let mut resumed =
            Platform::from_bytes(&serde::binary::Encode::to_bytes(&live)).expect("round trip");
        for img in ds.train().iter().skip(17).take(10) {
            let a = live.submit(img, IncentiveLevel::C8, TemporalContext::Morning);
            let b = resumed.submit(img, IncentiveLevel::C8, TemporalContext::Morning);
            assert_eq!(a, b);
        }
        assert_eq!(live.spent_cents(), resumed.spent_cents());
        assert_eq!(live.pool(), resumed.pool());
    }

    #[test]
    fn snapshot_codec_rejects_corrupt_payloads() {
        use serde::binary::{Decode, DecodeError};
        let p = platform(22);
        let bytes = serde::binary::Encode::to_bytes(&p);
        assert!(matches!(
            Platform::from_bytes(&bytes[..bytes.len() - 1]),
            Err(DecodeError::Truncated)
        ));
    }
}
