//! A simulated black-box crowdsourcing platform (MTurk stand-in).
//!
//! The paper treats MTurk as a black box with three observed properties
//! (Section III-B): the requester cannot pick workers, workers are not
//! perfectly reliable, and the incentive→(delay, quality) relationship is
//! non-trivial, dynamic and context-dependent. This crate reproduces that
//! black box with a worker-population simulator calibrated against the
//! paper's pilot study:
//!
//! * **Delay** (Figure 5): response time falls steeply with incentive in the
//!   morning and afternoon, but is nearly flat across mid-range incentives
//!   in the evening and at midnight (night-owl workers take almost anything),
//!   with only the 1-cent and 20-cent extremes deviating.
//! * **Quality** (Figure 6): mean label accuracy sits around 0.8, is
//!   depressed at 1-2 cents, and does **not** significantly improve past
//!   4 cents (the Wilcoxon tests in the bench reproduce the paper's
//!   non-significant p-values).
//! * **Questionnaires** (Figure 3): besides a damage label, each worker
//!   answers fixed-form evidence questions (fake? close-up? low resolution?
//!   structural damage? people affected?) whose answers CQC mines.
//!
//! The entry point is [`Platform::submit`], which takes one image query at
//! an [`IncentiveLevel`] under a [`TemporalContext`] and returns the
//! responses of `workers_per_query` sampled workers. Costs are tracked in a
//! built-in ledger. [`PilotStudy`] reruns the paper's 7-incentive x
//! 4-context characterization grid.
//!
//! A modeling simplification, documented here once: the incentive level is
//! treated as the *per-query* cost (covering all of its worker assignments),
//! which keeps the bandit's action costs, the budget sweeps of Figures
//! 10-11, and the paper's "1 cent per task … 20 cents per task" budget
//! arithmetic mutually consistent.
//!
//! [`TemporalContext`]: crowdlearn_dataset::TemporalContext
//!
//! # Example
//!
//! ```
//! use crowdlearn_crowd::{IncentiveLevel, Platform, PlatformConfig};
//! use crowdlearn_dataset::{Dataset, DatasetConfig, TemporalContext};
//!
//! let dataset = Dataset::generate(&DatasetConfig::paper());
//! let mut platform = Platform::new(PlatformConfig::paper().with_seed(5));
//! let response = platform.submit(
//!     &dataset.test()[0],
//!     IncentiveLevel::C4,
//!     TemporalContext::Evening,
//! );
//! assert_eq!(response.responses.len(), 5);
//! assert!(response.completion_delay_secs > 0.0);
//! ```

//! Determinism: a simulation crate under `detlint` rules D1-D6 (DESIGN.md
//! "Determinism invariants") — BTree collections only, virtual time only,
//! seeded RNG only.
//!
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod incentive;
mod pilot;
mod platform;
mod quality;
mod questionnaire;
mod worker;

pub use delay::DelayModel;
pub use incentive::IncentiveLevel;
pub use pilot::{PilotCell, PilotConfig, PilotReport, PilotStudy};
pub use platform::{
    PendingHit, Platform, PlatformConfig, PlatformStats, QueryResponse, SubmitterId,
    SubmitterUsage, WorkerResponse,
};
pub use quality::QualityModel;
pub use questionnaire::QuestionnaireAnswers;
pub use worker::{Worker, WorkerPool};

// Re-exported so downstream crates can build explicit workers
// ([`Worker::from_traits`]) without depending on `crowdlearn-truth`.
pub use crowdlearn_truth::WorkerId;
