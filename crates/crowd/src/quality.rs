//! The incentive→quality relationship, calibrated to the pilot study
//! (paper Figure 6).

use crate::IncentiveLevel;
use crowdlearn_dataset::TemporalContext;
use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// Adjusts a worker's base reliability for the incentive paid and the
/// temporal context.
///
/// The paper's pilot found that very low incentives (1-2 cents) depress
/// label quality, but that further raises buy *no* significant improvement
/// (Wilcoxon p-values 0.12-0.77 between adjacent levels from 2c upward) —
/// "workers often do not need to exert much effort … to accurately label the
/// images notwithstanding the incentives". The context adjustment reproduces
/// Table I's mild evening/midnight quality edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityModel {
    /// Additive reliability adjustment per incentive level.
    incentive_boost: [f64; IncentiveLevel::COUNT],
    /// Additive reliability adjustment per temporal context.
    context_boost: [f64; TemporalContext::COUNT],
}

impl QualityModel {
    /// The paper-calibrated model (see type docs).
    pub fn paper() -> Self {
        Self {
            // 1c depresses quality noticeably, 2c slightly; 4c+ flat
            // (statistically indistinguishable), tiny bump at 20c.
            incentive_boost: [-0.18, -0.04, 0.0, 0.0, 0.0, 0.002, 0.01],
            // Night workers are marginally more accurate (Table I trend).
            context_boost: [-0.015, -0.005, 0.005, 0.015],
        }
    }

    /// A flat model (quality independent of incentive and context), used by
    /// ablation benches.
    pub fn flat() -> Self {
        Self {
            incentive_boost: [0.0; IncentiveLevel::COUNT],
            context_boost: [0.0; TemporalContext::COUNT],
        }
    }

    /// The probability that a worker with `reliability` answers correctly at
    /// this incentive and context, clamped to `[0.02, 0.99]`.
    ///
    /// # Panics
    ///
    /// Panics if `reliability` is outside `[0, 1]`.
    pub fn correct_probability(
        &self,
        reliability: f64,
        incentive: IncentiveLevel,
        context: TemporalContext,
    ) -> f64 {
        assert!(
            (0.0..=1.0).contains(&reliability),
            "reliability must be in [0, 1]"
        );
        (reliability
            + self.incentive_boost[incentive.index()]
            + self.context_boost[context.index()])
        .clamp(0.02, 0.99)
    }
}

impl Default for QualityModel {
    fn default() -> Self {
        Self::paper()
    }
}

// Snapshot codec: boosts may legitimately be negative, but must be finite.
impl Encode for QualityModel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.incentive_boost.encode(out);
        self.context_boost.encode(out);
    }
}

impl Decode for QualityModel {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let incentive_boost = <[f64; IncentiveLevel::COUNT]>::decode(r)?;
        let context_boost = <[f64; TemporalContext::COUNT]>::decode(r)?;
        let finite = incentive_boost
            .iter()
            .chain(&context_boost)
            .all(|b| b.is_finite());
        if !finite {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            incentive_boost,
            context_boost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_incentives_depress_quality() {
        let m = QualityModel::paper();
        let at = |l| m.correct_probability(0.8, l, TemporalContext::Afternoon);
        assert!(at(IncentiveLevel::C1) < at(IncentiveLevel::C2));
        assert!(at(IncentiveLevel::C2) < at(IncentiveLevel::C4));
    }

    #[test]
    fn mid_range_incentives_are_flat() {
        let m = QualityModel::paper();
        let at = |l| m.correct_probability(0.8, l, TemporalContext::Afternoon);
        assert_eq!(at(IncentiveLevel::C4), at(IncentiveLevel::C6));
        assert_eq!(at(IncentiveLevel::C6), at(IncentiveLevel::C8));
        // 20c buys only a trivial bump.
        assert!(at(IncentiveLevel::C20) - at(IncentiveLevel::C8) < 0.02);
    }

    #[test]
    fn night_contexts_are_slightly_better() {
        let m = QualityModel::paper();
        let at = |c| m.correct_probability(0.8, IncentiveLevel::C4, c);
        assert!(at(TemporalContext::Midnight) > at(TemporalContext::Morning));
    }

    #[test]
    fn probabilities_are_clamped() {
        let m = QualityModel::paper();
        let p = m.correct_probability(0.05, IncentiveLevel::C1, TemporalContext::Morning);
        assert!(p >= 0.02);
        let p = m.correct_probability(1.0, IncentiveLevel::C20, TemporalContext::Midnight);
        assert!(p <= 0.99);
    }

    #[test]
    fn flat_model_ignores_everything() {
        let m = QualityModel::flat();
        for level in IncentiveLevel::ALL {
            for ctx in TemporalContext::ALL {
                assert_eq!(m.correct_probability(0.7, level, ctx), 0.7);
            }
        }
    }

    #[test]
    #[should_panic(expected = "reliability must be in [0, 1]")]
    fn bad_reliability_rejected() {
        QualityModel::paper().correct_probability(
            -0.1,
            IncentiveLevel::C4,
            TemporalContext::Morning,
        );
    }
}
