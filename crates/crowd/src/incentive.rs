//! The seven incentive levels of the paper's action set
//! (`A = {1, 2, 4, 6, 8, 10, 20}` cents, Definition 11).

use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-query incentive level in cents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IncentiveLevel {
    /// 1 cent.
    C1,
    /// 2 cents.
    C2,
    /// 4 cents.
    C4,
    /// 6 cents.
    C6,
    /// 8 cents.
    C8,
    /// 10 cents.
    C10,
    /// 20 cents.
    C20,
}

impl IncentiveLevel {
    /// Number of incentive levels.
    pub const COUNT: usize = 7;

    /// All levels, cheapest first — the bandit action set.
    pub const ALL: [IncentiveLevel; Self::COUNT] = [
        IncentiveLevel::C1,
        IncentiveLevel::C2,
        IncentiveLevel::C4,
        IncentiveLevel::C6,
        IncentiveLevel::C8,
        IncentiveLevel::C10,
        IncentiveLevel::C20,
    ];

    /// The cost in cents.
    pub fn cents(self) -> u32 {
        match self {
            IncentiveLevel::C1 => 1,
            IncentiveLevel::C2 => 2,
            IncentiveLevel::C4 => 4,
            IncentiveLevel::C6 => 6,
            IncentiveLevel::C8 => 8,
            IncentiveLevel::C10 => 10,
            IncentiveLevel::C20 => 20,
        }
    }

    /// Stable index in `0..COUNT` (cheapest = 0), the bandit action id.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|l| *l == self)
            .expect("level enumerated")
    }

    /// Inverse of [`IncentiveLevel::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= IncentiveLevel::COUNT`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL
            .get(index)
            .copied()
            .unwrap_or_else(|| panic!("incentive index {index} out of range"))
    }

    /// The level matching an exact cent amount, if one exists.
    pub fn from_cents(cents: u32) -> Option<Self> {
        Self::ALL.into_iter().find(|l| l.cents() == cents)
    }

    /// The action-cost vector for bandit construction (in cents).
    pub fn costs() -> Vec<f64> {
        Self::ALL.iter().map(|l| l.cents() as f64).collect()
    }
}

impl fmt::Display for IncentiveLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c", self.cents())
    }
}

// Snapshot codec: levels travel as their stable action index.
impl Encode for IncentiveLevel {
    fn encode(&self, out: &mut Vec<u8>) {
        u8::try_from(self.index())
            .expect("invariant: IncentiveLevel::COUNT is 7, every index fits u8")
            .encode(out);
    }
}

impl Decode for IncentiveLevel {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Self::ALL
            .get(usize::from(u8::decode(r)?))
            .copied()
            .ok_or(DecodeError::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for level in IncentiveLevel::ALL {
            assert_eq!(IncentiveLevel::from_index(level.index()), level);
        }
    }

    #[test]
    fn wire_bytes_are_the_stable_indices() {
        // Pins the wire format: a level travels as one byte holding its
        // action index (the former `as u8` cast, now a checked conversion,
        // must not have changed a single bit), and round-trips.
        let bytes: Vec<u8> = IncentiveLevel::ALL
            .iter()
            .flat_map(|l| l.to_bytes())
            .collect();
        assert_eq!(bytes, vec![0, 1, 2, 3, 4, 5, 6]);
        for level in IncentiveLevel::ALL {
            assert_eq!(IncentiveLevel::from_bytes(&level.to_bytes()), Ok(level));
        }
        assert_eq!(
            IncentiveLevel::from_bytes(&[IncentiveLevel::COUNT as u8]),
            Err(DecodeError::Invalid)
        );
    }

    #[test]
    fn cents_round_trip() {
        for level in IncentiveLevel::ALL {
            assert_eq!(IncentiveLevel::from_cents(level.cents()), Some(level));
        }
        assert_eq!(IncentiveLevel::from_cents(3), None);
    }

    #[test]
    fn levels_are_sorted_by_cost() {
        let cents: Vec<u32> = IncentiveLevel::ALL.iter().map(|l| l.cents()).collect();
        assert!(cents.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(cents, vec![1, 2, 4, 6, 8, 10, 20]);
    }

    #[test]
    fn costs_vector_matches() {
        assert_eq!(
            IncentiveLevel::costs(),
            vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 20.0]
        );
    }

    #[test]
    fn display_shows_cents() {
        assert_eq!(IncentiveLevel::C20.to_string(), "20c");
    }

    #[test]
    fn codec_round_trips_and_rejects_out_of_range() {
        for level in IncentiveLevel::ALL {
            assert_eq!(IncentiveLevel::from_bytes(&level.to_bytes()), Ok(level));
        }
        assert_eq!(IncentiveLevel::from_bytes(&[7]), Err(DecodeError::Invalid));
    }
}
