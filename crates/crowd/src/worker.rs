//! The freelance worker population.

use crowdlearn_dataset::{gaussian, TemporalContext};
use crowdlearn_truth::WorkerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// One simulated crowd worker.
///
/// Reliability is drawn around 0.8 (matching the paper's pilot observation
/// that "the average labeling accuracy of the crowd workers is … around
/// 80%"); speed and per-context activity vary per worker, which is what the
/// context-aware incentive policy exploits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    id: WorkerId,
    reliability: f64,
    speed_factor: f64,
    activity: [f64; TemporalContext::COUNT],
}

impl Worker {
    /// Builds a worker from explicit traits (exposed for failure-injection
    /// tests: adversarial or hyper-reliable workers).
    ///
    /// # Panics
    ///
    /// Panics if `reliability` is outside `[0, 1]`, `speed_factor` is not
    /// positive, or any activity weight is negative.
    pub fn from_traits(
        id: WorkerId,
        reliability: f64,
        speed_factor: f64,
        activity: [f64; TemporalContext::COUNT],
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&reliability),
            "reliability must be in [0, 1]"
        );
        assert!(speed_factor > 0.0, "speed factor must be positive");
        assert!(
            activity.iter().all(|a| *a >= 0.0),
            "activity weights must be non-negative"
        );
        Self {
            id,
            reliability,
            speed_factor,
            activity,
        }
    }

    /// The worker's platform id.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Probability of producing a correct label, before incentive/context
    /// adjustments.
    pub fn reliability(&self) -> f64 {
        self.reliability
    }

    /// Multiplicative response-speed factor (1.0 = average; smaller is
    /// faster).
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }

    /// Relative propensity to pick up HITs in a temporal context.
    pub fn activity(&self, context: TemporalContext) -> f64 {
        self.activity[context.index()]
    }

    /// Draws a worker from the platform's population distribution: ~92%
    /// attentive (reliability ≈ 0.95), ~8% spammers (≈ 0.30), day-worker or
    /// night-owl activity profiles.
    pub fn generate<R: Rng + ?Sized>(id: WorkerId, rng: &mut R) -> Self {
        let reliability = if rng.gen::<f64>() < 0.08 {
            (0.30 + 0.06 * gaussian(rng)).clamp(0.10, 0.45)
        } else {
            (0.95 + 0.04 * gaussian(rng)).clamp(0.60, 0.99)
        };
        let speed_factor = (1.0 + 0.25 * gaussian(rng)).clamp(0.5, 2.0);
        let night_owl = rng.gen::<f64>() < 0.6;
        let activity = if night_owl {
            [0.4, 0.6, 1.0, 0.9]
        } else {
            [0.9, 1.0, 0.7, 0.3]
        };
        // Per-worker dither so activity is not perfectly bimodal.
        let activity = activity.map(|a: f64| (a + 0.1 * gaussian(rng)).max(0.05));
        Worker::from_traits(id, reliability, speed_factor, activity)
    }
}

// Snapshot codec: decoding re-checks the `from_traits` invariants and
// reports `Invalid` instead of panicking.
impl Encode for Worker {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.0.encode(out);
        self.reliability.encode(out);
        self.speed_factor.encode(out);
        self.activity.encode(out);
    }
}

impl Decode for Worker {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let id = WorkerId(u32::decode(r)?);
        let reliability = f64::decode(r)?;
        let speed_factor = f64::decode(r)?;
        let activity = <[f64; TemporalContext::COUNT]>::decode(r)?;
        let valid = (0.0..=1.0).contains(&reliability)
            && speed_factor.is_finite()
            && speed_factor > 0.0
            && activity.iter().all(|a| a.is_finite() && *a >= 0.0);
        if !valid {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            id,
            reliability,
            speed_factor,
            activity,
        })
    }
}

/// The platform's worker population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Generates a population of `size` workers, deterministic in `seed`.
    ///
    /// Roughly 40% of workers are "day workers" (more active in the morning
    /// and afternoon) and 60% are "night owls" (evening/midnight), matching
    /// the paper's observation that "MTurk workers are often more active at
    /// night". About 8% of the population are spammers/random clickers
    /// (reliability ~0.3) — the MTurk reality that reliability-aware
    /// aggregation (TD-EM, worker filtering) exists to defend against.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn generate(size: usize, seed: u64) -> Self {
        assert!(size > 0, "worker pool must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let workers = (0..size)
            .map(|i| Worker::generate(WorkerId(i as u32), &mut rng))
            .collect();
        Self { workers }
    }

    /// Replaces the worker at `index` (worker churn: one freelancer leaves,
    /// another signs up).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn replace(&mut self, index: usize, worker: Worker) {
        self.workers[index] = worker;
    }

    /// Builds a pool from explicit workers (for tests).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is empty.
    pub fn from_workers(workers: Vec<Worker>) -> Self {
        assert!(!workers.is_empty(), "worker pool must be non-empty");
        Self { workers }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// All workers.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Samples `count` distinct workers, weighted by their activity in
    /// `context` (sampling without replacement via repeated weighted draws).
    ///
    /// # Panics
    ///
    /// Panics if `count > self.len()`.
    pub fn sample(&self, count: usize, context: TemporalContext, rng: &mut StdRng) -> Vec<&Worker> {
        assert!(count <= self.workers.len(), "not enough workers to sample");
        let mut available: Vec<usize> = (0..self.workers.len()).collect();
        let mut picked = Vec::with_capacity(count);
        for _ in 0..count {
            let total: f64 = available
                .iter()
                .map(|&i| self.workers[i].activity(context))
                .sum();
            let mut target = rng.gen::<f64>() * total;
            let mut chosen_pos = available.len() - 1;
            for (pos, &i) in available.iter().enumerate() {
                target -= self.workers[i].activity(context);
                if target <= 0.0 {
                    chosen_pos = pos;
                    break;
                }
            }
            let idx = available.swap_remove(chosen_pos);
            picked.push(&self.workers[idx]);
        }
        picked
    }

    /// Mean reliability across the pool.
    pub fn mean_reliability(&self) -> f64 {
        self.workers.iter().map(|w| w.reliability()).sum::<f64>() / self.workers.len() as f64
    }
}

impl Encode for WorkerPool {
    fn encode(&self, out: &mut Vec<u8>) {
        self.workers.encode(out);
    }
}

impl Decode for WorkerPool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let workers = Vec::<Worker>::decode(r)?;
        if workers.is_empty() {
            return Err(DecodeError::Invalid);
        }
        Ok(Self { workers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(WorkerPool::generate(50, 3), WorkerPool::generate(50, 3));
        assert_ne!(WorkerPool::generate(50, 3), WorkerPool::generate(50, 4));
    }

    #[test]
    fn mean_reliability_matches_the_calibration_target() {
        // ~92% attentive workers near 0.95 plus ~8% spammers near 0.30;
        // multiplied by the mean per-image difficulty this yields the
        // paper's ~0.8 observed label accuracy.
        let pool = WorkerPool::generate(500, 1);
        let mean = pool.mean_reliability();
        assert!((mean - 0.90).abs() < 0.03, "mean reliability {mean}");
        let spammers = pool
            .workers()
            .iter()
            .filter(|w| w.reliability() < 0.5)
            .count();
        let rate = spammers as f64 / pool.len() as f64;
        assert!((rate - 0.08).abs() < 0.04, "spammer rate {rate}");
    }

    #[test]
    fn sampling_returns_distinct_workers() {
        let pool = WorkerPool::generate(30, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let picked = pool.sample(10, TemporalContext::Morning, &mut rng);
        let mut ids: Vec<_> = picked.iter().map(|w| w.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn sampling_prefers_active_workers() {
        // Two workers: one active only at night, one only in the morning.
        let day = Worker::from_traits(WorkerId(0), 0.8, 1.0, [1.0, 1.0, 0.0001, 0.0001]);
        let night = Worker::from_traits(WorkerId(1), 0.8, 1.0, [0.0001, 0.0001, 1.0, 1.0]);
        let pool = WorkerPool::from_workers(vec![day, night]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut night_first = 0;
        for _ in 0..200 {
            let picked = pool.sample(1, TemporalContext::Midnight, &mut rng);
            if picked[0].id() == WorkerId(1) {
                night_first += 1;
            }
        }
        assert!(night_first > 190, "night worker picked {night_first}/200");
    }

    #[test]
    fn night_owls_dominate_the_generated_pool_at_night() {
        let pool = WorkerPool::generate(400, 7);
        let evening: f64 = pool
            .workers()
            .iter()
            .map(|w| w.activity(TemporalContext::Evening))
            .sum();
        let morning: f64 = pool
            .workers()
            .iter()
            .map(|w| w.activity(TemporalContext::Morning))
            .sum();
        assert!(
            evening > morning,
            "evening activity {evening} must exceed morning {morning}"
        );
    }

    #[test]
    #[should_panic(expected = "not enough workers")]
    fn oversampling_panics() {
        let pool = WorkerPool::generate(3, 0);
        let mut rng = StdRng::seed_from_u64(0);
        pool.sample(4, TemporalContext::Morning, &mut rng);
    }

    #[test]
    #[should_panic(expected = "reliability must be in [0, 1]")]
    fn bad_reliability_rejected() {
        Worker::from_traits(WorkerId(0), 1.5, 1.0, [1.0; 4]);
    }
}
