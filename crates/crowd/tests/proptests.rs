//! Property-based tests on the simulated crowdsourcing platform.

use crowdlearn_crowd::{IncentiveLevel, Platform, PlatformConfig};
use crowdlearn_dataset::{Dataset, DatasetConfig, TemporalContext};
use proptest::prelude::*;

fn small_dataset(seed: u64) -> Dataset {
    Dataset::generate(
        &DatasetConfig::paper()
            .with_total(60)
            .with_train_count(30)
            .with_seed(seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every response has the configured fan-out, positive delays, and a
    /// completion time equal to the slowest worker.
    #[test]
    fn responses_are_well_formed(
        seed in 0u64..2_000,
        fanout in 1usize..9,
        level_idx in 0usize..IncentiveLevel::COUNT,
        ctx_idx in 0usize..TemporalContext::COUNT,
    ) {
        let ds = small_dataset(seed);
        let mut platform = Platform::new(
            PlatformConfig::paper().with_seed(seed).with_workers_per_query(fanout),
        );
        let response = platform.submit(
            &ds.test()[0],
            IncentiveLevel::from_index(level_idx),
            TemporalContext::from_index(ctx_idx),
        );
        prop_assert_eq!(response.responses.len(), fanout);
        let max = response
            .responses
            .iter()
            .map(|r| r.delay_secs)
            .fold(0.0f64, f64::max);
        prop_assert!((response.completion_delay_secs - max).abs() < 1e-12);
        prop_assert!(response.responses.iter().all(|r| r.delay_secs > 0.0));
        // Distinct workers per query.
        let mut ids: Vec<_> = response.responses.iter().map(|r| r.worker).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), fanout);
    }

    /// The spend ledger is exactly the sum of the submitted incentives.
    #[test]
    fn ledger_is_exact(
        seed in 0u64..2_000,
        levels in proptest::collection::vec(0usize..IncentiveLevel::COUNT, 1..25),
    ) {
        let ds = small_dataset(seed);
        let mut platform = Platform::new(PlatformConfig::paper().with_seed(seed));
        let mut expected = 0u64;
        for (i, &l) in levels.iter().enumerate() {
            let level = IncentiveLevel::from_index(l);
            expected += u64::from(level.cents());
            let img = &ds.test()[i % ds.test().len()];
            let _ = platform.submit(img, level, TemporalContext::Evening);
        }
        prop_assert_eq!(platform.spent_cents(), expected);
        prop_assert_eq!(platform.queries_served(), levels.len() as u64);
    }

    /// Platforms are reproducible: identical seeds and request sequences
    /// yield identical responses, even with churn enabled.
    #[test]
    fn platforms_are_reproducible(seed in 0u64..2_000, churn in 0.0f64..1.0) {
        let ds = small_dataset(seed);
        let mk = || Platform::new(PlatformConfig::paper().with_seed(seed).with_churn_rate(churn));
        let (mut a, mut b) = (mk(), mk());
        for i in 0..10 {
            let img = &ds.test()[i % ds.test().len()];
            let ra = a.submit(img, IncentiveLevel::C4, TemporalContext::Morning);
            let rb = b.submit(img, IncentiveLevel::C4, TemporalContext::Morning);
            prop_assert_eq!(ra, rb);
        }
    }

    /// The pilot-calibrated ordering — morning at 1 cent is slower than
    /// evening at any mid incentive — holds for any platform seed.
    #[test]
    fn morning_cheap_is_slow_everywhere(seed in 0u64..500) {
        let ds = small_dataset(seed);
        let mut platform = Platform::new(PlatformConfig::paper().with_seed(seed));
        let mean = |p: &mut Platform, level, ctx| -> f64 {
            (0..15)
                .map(|i| {
                    p.submit(&ds.train()[i % ds.train().len()], level, ctx)
                        .mean_worker_delay_secs()
                })
                .sum::<f64>()
                / 15.0
        };
        let slow = mean(&mut platform, IncentiveLevel::C1, TemporalContext::Morning);
        let fast = mean(&mut platform, IncentiveLevel::C6, TemporalContext::Evening);
        prop_assert!(slow > fast, "morning@1c {slow} vs evening@6c {fast}");
    }
}
