// Seeded D7 violations: a swapped field order, a count mismatch, a field
// written by a tag-dispatched encode but never read back, and an encode fn
// with no decode partner.
pub struct Wire {
    alpha: u64,
    beta: u64,
}

impl Encode for Wire {
    fn encode(&self, out: &mut Vec<u8>) {
        self.alpha.encode(out);
        self.beta.encode(out);
    }
}

impl Decode for Wire {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let beta = u64::decode(r)?;
        let alpha = u64::decode(r)?;
        Ok(Self { alpha, beta })
    }
}

pub struct Counter {
    count: u64,
    peak: u64,
}

impl Encode for Counter {
    fn encode(&self, out: &mut Vec<u8>) {
        self.count.encode(out);
        self.peak.encode(out);
    }
}

impl Decode for Counter {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = u64::decode(r)?;
        Ok(Self { count, peak: 0 })
    }
}

pub enum Tagged {
    Full { id: u64 },
    Empty,
}

impl Encode for Tagged {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Tagged::Full { id } => {
                0u8.encode(out);
                id.encode(out);
            }
            Tagged::Empty => 1u8.encode(out),
        }
    }
}

impl Decode for Tagged {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Tagged::Full { id: 0 }),
            1 => Ok(Tagged::Empty),
            _ => Err(DecodeError::Invalid),
        }
    }
}

pub struct Orphan {
    x: u64,
}

impl Encode for Orphan {
    fn encode(&self, out: &mut Vec<u8>) {
        self.x.encode(out);
    }
}
