use std::collections::BTreeMap;

pub fn count(words: &[&str]) -> BTreeMap<&str, usize> {
    let mut counts = BTreeMap::new();
    for w in words {
        *counts.entry(*w).or_insert(0) += 1;
    }
    counts
}
