// Symmetric codecs in every idiom the workspace uses: straight-line
// struct-literal decode, let-bound decode with a constructor wrapper, a
// length-prefixed element loop, and a tag-dispatched enum. D7-clean.
pub struct Wire {
    alpha: u64,
    beta: u64,
}

impl Encode for Wire {
    fn encode(&self, out: &mut Vec<u8>) {
        self.alpha.encode(out);
        self.beta.encode(out);
    }
}

impl Decode for Wire {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            alpha: u64::decode(r)?,
            beta: u64::decode(r)?,
        })
    }
}

pub struct Board {
    items: Vec<u64>,
    peak: u64,
}

impl Encode for Board {
    fn encode(&self, out: &mut Vec<u8>) {
        self.items.len().encode(out);
        for item in &self.items {
            item.encode(out);
        }
        self.peak.encode(out);
    }
}

impl Decode for Board {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = usize::decode(r)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(u64::decode(r)?);
        }
        let peak = u64::decode(r)?;
        Ok(Self { items, peak })
    }
}

pub enum Tagged {
    Full { id: u64 },
    Empty,
}

impl Encode for Tagged {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Tagged::Full { id } => {
                0u8.encode(out);
                id.encode(out);
            }
            Tagged::Empty => 1u8.encode(out),
        }
    }
}

impl Decode for Tagged {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Tagged::Full {
                id: u64::decode(r)?,
            }),
            1 => Ok(Tagged::Empty),
            _ => Err(DecodeError::Invalid),
        }
    }
}
