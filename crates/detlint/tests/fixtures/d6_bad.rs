pub fn debug_enabled() -> bool {
    std::env::var("CROWDLEARN_DEBUG").is_ok()
}
