use std::collections::HashMap;

pub fn sizes(m: &HashMap<u32, Vec<u32>>) -> Vec<usize> {
    m.values().map(Vec::len).collect()
}
