#![forbid(unsafe_code)]
// A D1–D7/D9-clean codec whose schema drifted from the committed lockfile:
// the fingerprint recorded in ../../SNAPSHOT_SCHEMA.lock belongs to an older
// field sequence, and the version constant was bumped without regenerating.

pub const WS_FORMAT_VERSION: u32 = 2;

pub struct Blob {
    len: u64,
    tail: u64,
}

impl Encode for Blob {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len.encode(out);
        self.tail.encode(out);
    }
}

impl Decode for Blob {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u64::decode(r)?;
        let tail = u64::decode(r)?;
        Ok(Self { len, tail })
    }
}
