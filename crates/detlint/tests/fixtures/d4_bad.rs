pub fn pick(values: &[u32]) -> u32 {
    let first = values.first().unwrap();
    let last = values.last().expect("values is non-empty");
    first + last
}
