pub fn pick(values: &[u32]) -> Option<u32> {
    let first = values.first()?;
    let last = values
        .last()
        .expect("invariant: first() succeeded, so the slice is non-empty");
    Some(first + last)
}
