// detlint: allow(hash-order): keys are drained through a sorted Vec below
use std::collections::HashMap;

// detlint: allow(hash-order): sorted immediately after collection
pub fn sorted(m: HashMap<u32, u32>) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = m.into_iter().collect();
    v.sort();
    v
}
