use std::collections::HashMap;

pub fn count(words: &[&str]) -> HashMap<&str, usize> {
    let mut counts = HashMap::new();
    for w in words {
        *counts.entry(*w).or_insert(0) += 1;
    }
    counts
}
