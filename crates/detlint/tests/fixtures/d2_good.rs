pub fn stamp(clock_secs: f64) -> f64 {
    clock_secs + 1.0
}
