// The same codec with checked conversions (and one justified allow): D9-clean.
pub struct Gauge {
    level: usize,
    scale: f64,
}

impl Encode for Gauge {
    fn encode(&self, out: &mut Vec<u8>) {
        u8::try_from(self.level)
            .expect("invariant: level is bounded by the 7-entry action set")
            .encode(out);
        // detlint: allow(lossy-cast): u16 widens losslessly into the u32 wire slot
        ((self.scale.to_bits() >> 48) as u32).encode(out);
    }
}

impl Decode for Gauge {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let level = usize::from(u8::decode(r)?);
        let scale = f64::decode(r)?;
        Ok(Self { level, scale })
    }
}
