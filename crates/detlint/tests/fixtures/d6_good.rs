pub struct Options {
    pub debug: bool,
}

pub fn debug_enabled(options: &Options) -> bool {
    options.debug
}
