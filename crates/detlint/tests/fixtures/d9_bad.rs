// Seeded D9 violations: lossy `as` casts inside codec fns, on both the
// encode and the decode side.
pub struct Gauge {
    level: usize,
    scale: f64,
}

impl Encode for Gauge {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.level as u8).encode(out);
        self.scale.encode(out);
    }
}

impl Decode for Gauge {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let level = u8::decode(r)? as usize;
        let scale = f64::decode(r)?;
        Ok(Self { level, scale })
    }
}
