//! Fixture-driven end-to-end tests: one good and one bad fixture per rule,
//! exact diagnostic locations and JSON output, the allow escape hatch, and
//! the CI gating contract (non-zero exit on a seeded violation; the shipped
//! workspace itself scans clean).

use detlint::{
    lint_source, render_json, render_text, scan_workspace, Config, FileKind, Report, Rule,
};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn lint_fixture(name: &str, krate: &str, kind: FileKind) -> (Vec<detlint::Finding>, usize) {
    lint_source(&fixture(name), name, krate, kind, &Config::default())
}

#[test]
fn d1_hash_order_bad_fixture_reports_every_site() {
    let (findings, _) = lint_fixture("d1_bad.rs", "truth", FileKind::Source);
    let spots: Vec<(usize, usize)> = findings.iter().map(|f| (f.line, f.column)).collect();
    assert_eq!(spots, [(1, 23), (3, 33), (4, 22)]);
    assert!(findings.iter().all(|f| f.rule == Rule::HashOrder));
}

#[test]
fn d1_good_fixture_is_clean() {
    let (findings, _) = lint_fixture("d1_good.rs", "truth", FileKind::Source);
    assert_eq!(findings, []);
}

#[test]
fn d1_justified_allows_suppress_and_are_counted() {
    let (findings, suppressed) = lint_fixture("d1_allowed.rs", "truth", FileKind::Source);
    assert_eq!(findings, []);
    assert_eq!(suppressed, 2);
}

#[test]
fn d2_wall_clock_bad_and_good_fixtures() {
    let (findings, _) = lint_fixture("d2_bad.rs", "runtime", FileKind::Source);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, Rule::WallClock);
    assert_eq!((findings[0].line, findings[0].column), (2, 28));
    // The bench crate is exempt by scope.
    let (exempt, _) = lint_fixture("d2_bad.rs", "bench", FileKind::Source);
    assert_eq!(exempt, []);
    let (good, _) = lint_fixture("d2_good.rs", "runtime", FileKind::Source);
    assert_eq!(good, []);
}

#[test]
fn d3_entropy_rng_bad_and_good_fixtures() {
    let (findings, _) = lint_fixture("d3_bad.rs", "crowd", FileKind::Source);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, Rule::EntropyRng);
    assert_eq!((findings[0].line, findings[0].column), (2, 25));
    let (good, _) = lint_fixture("d3_good.rs", "crowd", FileKind::Source);
    assert_eq!(good, []);
}

#[test]
fn d4_panic_paths_bad_and_good_fixtures() {
    let (findings, _) = lint_fixture("d4_bad.rs", "core", FileKind::Source);
    let rules: Vec<Rule> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, [Rule::PanicPaths, Rule::PanicPaths]);
    assert_eq!(
        findings
            .iter()
            .map(|f| (f.line, f.column))
            .collect::<Vec<_>>(),
        [(2, 31), (3, 29)]
    );
    // Outside the panic-paths scope nothing fires.
    let (out_of_scope, _) = lint_fixture("d4_bad.rs", "metrics", FileKind::Source);
    assert_eq!(out_of_scope, []);
    // The good fixture states the invariant (wrapped across lines by fmt).
    let (good, _) = lint_fixture("d4_good.rs", "core", FileKind::Source);
    assert_eq!(good, []);
}

#[test]
fn d5_forbid_unsafe_bad_and_good_fixtures() {
    let (findings, _) = lint_fixture("d5_bad.rs", "gbdt", FileKind::Root);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, Rule::ForbidUnsafe);
    let (good, _) = lint_fixture("d5_good.rs", "gbdt", FileKind::Root);
    assert_eq!(good, []);
}

#[test]
fn d6_ambient_env_bad_and_good_fixtures() {
    let (findings, _) = lint_fixture("d6_bad.rs", "dataset", FileKind::Source);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, Rule::AmbientEnv);
    assert_eq!((findings[0].line, findings[0].column), (2, 10));
    let (good, _) = lint_fixture("d6_good.rs", "dataset", FileKind::Source);
    assert_eq!(good, []);
}

#[test]
fn text_diagnostics_are_rustc_style() {
    let (findings, suppressed) = lint_fixture("d6_bad.rs", "dataset", FileKind::Source);
    let report = Report {
        findings,
        files_scanned: 1,
        suppressed,
    };
    let expected = "\
error[D6/ambient-env]: `env::var` read in simulation crate `dataset`: ambient state breaks seeded re-runs
 --> d6_bad.rs:2:10
  |
2 |     std::env::var(\"CROWDLEARN_DEBUG\").is_ok()
  |          ^^^^^^^^
  = help: thread configuration through explicit Config structs, not env vars

detlint: 1 finding(s), 0 suppressed by justified allows, 1 file(s) scanned
";
    assert_eq!(render_text(&report), expected);
}

#[test]
fn json_output_is_exact_and_machine_readable() {
    let (findings, suppressed) = lint_fixture("d5_bad.rs", "gbdt", FileKind::Root);
    let report = Report {
        findings,
        files_scanned: 1,
        suppressed,
    };
    let expected = concat!(
        "{\"findings\":[{\"code\":\"D5\",\"rule\":\"forbid-unsafe\",",
        "\"path\":\"d5_bad.rs\",\"line\":1,\"column\":1,",
        "\"message\":\"crate root of `gbdt` does not `#![forbid(unsafe_code)]`\",",
        "\"help\":\"add `#![forbid(unsafe_code)]` at the top of the crate root\"}],",
        "\"files_scanned\":1,\"suppressed\":0}"
    );
    assert_eq!(render_json(&report), expected);
}

#[test]
fn d7_codec_symmetry_bad_fixture_reports_every_drift() {
    let (findings, _) = lint_fixture("d7_bad.rs", "runtime", FileKind::Source);
    assert!(
        findings.iter().all(|f| f.rule == Rule::CodecSymmetry),
        "{findings:?}"
    );
    let spots: Vec<(usize, usize, &str)> = findings
        .iter()
        .map(|f| (f.line, f.column, f.message.as_str()))
        .collect();
    assert_eq!(
        spots,
        [
            (
                30,
                8,
                "`Counter` codec drift: `encode` writes 2 field(s) but `decode` reads 1"
            ),
            (
                75,
                8,
                "`Orphan::encode` has no matching `Orphan::decode` in this file \
                 (codec pairs must live together)"
            ),
            (
                53,
                17,
                "`Tagged` codec drift: field `id` is written by `encode` \
                 but never read by `decode`"
            ),
            (
                11,
                9,
                "`Wire` codec field order mismatch at position 1: \
                 `encode` writes `alpha` where `decode` reads `beta`"
            ),
            (
                12,
                9,
                "`Wire` codec field order mismatch at position 2: \
                 `encode` writes `beta` where `decode` reads `alpha`"
            ),
        ]
    );
}

#[test]
fn d7_good_fixture_covers_every_shipped_codec_idiom_cleanly() {
    let (findings, _) = lint_fixture("d7_good.rs", "runtime", FileKind::Source);
    assert_eq!(findings, []);
}

#[test]
fn d7_and_d9_are_silent_outside_codec_scope() {
    // `truth` holds no codecs by design, so the shipped scope excludes it.
    let (d7, _) = lint_fixture("d7_bad.rs", "truth", FileKind::Source);
    assert_eq!(d7, []);
    let (d9, _) = lint_fixture("d9_bad.rs", "truth", FileKind::Source);
    assert_eq!(d9, []);
}

#[test]
fn d9_lossy_cast_bad_fixture_flags_both_sides() {
    let (findings, _) = lint_fixture("d9_bad.rs", "runtime", FileKind::Source);
    assert!(
        findings.iter().all(|f| f.rule == Rule::LossyCast),
        "{findings:?}"
    );
    let spots: Vec<(usize, usize)> = findings.iter().map(|f| (f.line, f.column)).collect();
    assert_eq!(spots, [(10, 21), (17, 36)]);
}

#[test]
fn d9_good_fixture_is_clean_and_counts_the_justified_allow() {
    let (findings, suppressed) = lint_fixture("d9_good.rs", "runtime", FileKind::Source);
    assert_eq!(findings, []);
    assert_eq!(suppressed, 1);
}

#[test]
fn d9_text_diagnostic_is_rustc_style() {
    let (findings, suppressed) = lint_fixture("d9_bad.rs", "runtime", FileKind::Source);
    let report = Report {
        findings: findings.into_iter().take(1).collect(),
        files_scanned: 1,
        suppressed,
    };
    let expected = "\
error[D9/lossy-cast]: numeric `as` cast in codec fn `Gauge::encode` can silently truncate the wire value
  --> d9_bad.rs:10:21
   |
10 |         (self.level as u8).encode(out);
   |                     ^^^^^
   = help: use try_from with a typed error (or a stated-invariant expect), or annotate `// detlint: allow(lossy-cast): <reason>`

detlint: 1 finding(s), 0 suppressed by justified allows, 1 file(s) scanned
";
    assert_eq!(render_text(&report), expected);
}

#[test]
fn d7_json_output_is_exact_and_machine_readable() {
    let (findings, suppressed) = lint_fixture("d7_bad.rs", "runtime", FileKind::Source);
    let report = Report {
        findings: findings.into_iter().take(1).collect(),
        files_scanned: 1,
        suppressed,
    };
    let expected = concat!(
        "{\"findings\":[{\"code\":\"D7\",\"rule\":\"codec-symmetry\",",
        "\"path\":\"d7_bad.rs\",\"line\":30,\"column\":8,",
        "\"message\":\"`Counter` codec drift: `encode` writes 2 field(s) but `decode` reads 1\",",
        "\"help\":\"make the encode/decode field sequences symmetric, or annotate ",
        "`// detlint: allow(codec-symmetry): <reason>`\"}],",
        "\"files_scanned\":1,\"suppressed\":0}"
    );
    assert_eq!(render_json(&report), expected);
}

/// The D8 CI contract: a workspace whose codecs drifted from the committed
/// SNAPSHOT_SCHEMA.lock (fingerprint change, stale version constant, and a
/// deleted codec still listed) gates with a non-zero exit.
#[test]
fn stale_schema_lock_gates_with_nonzero_exit() {
    let ws = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws_schema");
    let report = scan_workspace(&ws, &Config::default()).expect("fixture workspace scans");
    assert!(
        report.findings.iter().all(|f| f.rule == Rule::SchemaLock),
        "{:?}",
        report.findings
    );
    let spots: Vec<(&str, usize, usize)> = report
        .findings
        .iter()
        .map(|f| (f.path.as_str(), f.line, f.column))
        .collect();
    assert_eq!(
        spots,
        [
            ("SNAPSHOT_SCHEMA.lock", 1, 1),
            ("crates/core/src/lib.rs", 6, 11),
            ("crates/core/src/lib.rs", 14, 8),
        ]
    );
    let messages: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages[0].contains("codec `Gone`") && messages[0].contains("no longer in the tree"));
    assert!(messages[1].contains("version constant `core/WS_FORMAT_VERSION` = 2"));
    assert!(messages[2].contains(
        "codec `Blob` schema fingerprint drifted from SNAPSHOT_SCHEMA.lock \
         (0xdeadbeefdeadbeef -> 0x29052cf9e9c5ab2c)"
    ));
    assert_eq!(report.exit_code(), 1);

    // Disabling D8 stands the gate down (the fixture is D1-D7/D9-clean).
    let relaxed = Config::parse("[rules]\nschema-lock = false\n").expect("valid config");
    let report = scan_workspace(&ws, &relaxed).expect("fixture workspace scans");
    assert_eq!(report.exit_code(), 0);
}

/// The CI contract: a workspace seeded with a violation makes the scan exit
/// non-zero (`ci.sh` gates on this), and rule toggles in the config can
/// stand the gate down.
#[test]
fn seeded_workspace_violation_gates_with_nonzero_exit() {
    let ws = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let report = scan_workspace(&ws, &Config::default()).expect("fixture workspace scans");
    let rules: Vec<Rule> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        [Rule::ForbidUnsafe, Rule::HashOrder, Rule::HashOrder],
        "seeded HashMap + missing forbid must both fire: {:?}",
        report.findings
    );
    assert_eq!(report.exit_code(), 1);
    assert_eq!(report.files_scanned, 1);

    // Disabling the rules stands the gate down.
    let relaxed = Config::parse("[rules]\nhash-order = false\nforbid-unsafe = false\n")
        .expect("valid config");
    let report = scan_workspace(&ws, &relaxed).expect("fixture workspace scans");
    assert_eq!(report.exit_code(), 0);
}

/// The shipped workspace must scan clean with the shipped config — this is
/// the same invocation `ci.sh` gates on.
#[test]
fn shipped_workspace_scans_clean_with_shipped_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let config_text =
        std::fs::read_to_string(root.join("detlint.toml")).expect("detlint.toml is shipped");
    let config = Config::parse(&config_text).expect("shipped config parses");
    let report = scan_workspace(&root, &config).expect("workspace scans");
    assert_eq!(
        report.findings,
        [],
        "the shipped workspace must have zero detlint findings:\n{}",
        render_text(&report)
    );
    assert!(
        report.files_scanned > 100,
        "workspace walk found the crates"
    );
}
