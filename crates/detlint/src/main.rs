//! CLI for the determinism & hygiene lint pass.
//!
//! ```text
//! detlint [--root DIR] [--config FILE] [--json] [--list-rules] [--update-schema-lock]
//! ```
//!
//! Exit codes: 0 clean, 1 findings reported, 2 usage/config/I-O error. CI
//! runs this (offline) between clippy and the build, so a violation can
//! never reach the golden tests.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut json = false;
    let mut update_schema_lock = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--update-schema-lock" => update_schema_lock = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root requires a directory"),
            },
            "--config" => match args.next() {
                Some(file) => config_path = Some(PathBuf::from(file)),
                None => return usage_error("--config requires a file"),
            },
            "--list-rules" => {
                for rule in detlint::Rule::ALL {
                    println!("{}/{}: {}", rule.code(), rule.name(), rule.help());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "detlint — workspace determinism & hygiene lints (D1-D9)\n\n\
                     USAGE: detlint [--root DIR] [--config FILE] [--json] [--list-rules]\n\
                     \x20              [--update-schema-lock]\n\n\
                     --update-schema-lock regenerates SNAPSHOT_SCHEMA.lock (rule D8); it\n\
                     refuses to absorb a codec fingerprint change unless some *VERSION*\n\
                     constant was bumped too."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let explicit_config = config_path.is_some();
    let config_file = config_path.unwrap_or_else(|| root.join("detlint.toml"));
    let config = if config_file.is_file() {
        match std::fs::read_to_string(&config_file) {
            Ok(text) => match detlint::Config::parse(&text) {
                Ok(cfg) => cfg,
                Err(e) => return usage_error(&e),
            },
            Err(e) => return usage_error(&format!("{}: {e}", config_file.display())),
        }
    } else if explicit_config {
        return usage_error(&format!("config file {} not found", config_file.display()));
    } else {
        detlint::Config::default()
    };

    if update_schema_lock {
        let schema = match detlint::collect_schema(&root, &config) {
            Ok(schema) => schema,
            Err(e) => return usage_error(&format!("schema collection failed: {e}")),
        };
        let lock_path = root.join(detlint::SCHEMA_LOCK_FILE);
        let old = if lock_path.is_file() {
            match std::fs::read_to_string(&lock_path) {
                Ok(text) => match detlint::SchemaLock::parse(&text) {
                    Ok(lock) => Some(lock),
                    Err(e) => return usage_error(&e),
                },
                Err(e) => return usage_error(&format!("{}: {e}", lock_path.display())),
            }
        } else {
            None
        };
        return match detlint::plan_schema_update(&schema, old.as_ref()) {
            Ok(text) => match std::fs::write(&lock_path, &text) {
                Ok(()) => {
                    println!(
                        "detlint: wrote {} ({} codec pair(s), {} version constant(s))",
                        lock_path.display(),
                        schema.fingerprints.len(),
                        schema.version_consts.len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => usage_error(&format!("{}: {e}", lock_path.display())),
            },
            Err(e) => {
                eprintln!("detlint: {e}");
                ExitCode::from(1)
            }
        };
    }

    match detlint::scan_workspace(&root, &config) {
        Ok(report) => {
            if json {
                println!("{}", detlint::render_json(&report));
            } else {
                print!("{}", detlint::render_text(&report));
            }
            ExitCode::from(report.exit_code() as u8)
        }
        Err(e) => usage_error(&format!("scan failed: {e}")),
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("detlint: {message}");
    ExitCode::from(2)
}
