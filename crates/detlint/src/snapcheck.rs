//! snapcheck — the codec-drift analysis pass (rules D7/D8/D9).
//!
//! The snapshot formats (`RuntimeSnapshot`, `FleetSnapshot`) are hand-written
//! binary codecs: every `fn encode` writes an ordered field sequence that the
//! paired `fn decode` must read back in exactly the same order. Nothing in
//! rustc checks that symmetry, and a drifted pair silently corrupts resume.
//! This module enforces it at the same lexer level as the D1–D6 rules:
//!
//! * **D7 `codec-symmetry`** — pairs each `encode*` fn with the `decode*` fn
//!   of the same impl target and name suffix in the same file, extracts the
//!   ordered field-write/field-read sequences at token level, and flags count
//!   or order mismatches and fields written-but-never-read (or vice versa).
//! * **D8 `schema-lock`** — fingerprints each pair (FNV-1a-64 over the
//!   canonical encode sequence + the decode op count) together with every
//!   `*VERSION*` integer constant in codec scope, and compares against the
//!   committed `SNAPSHOT_SCHEMA.lock`. Drift without a lock update fails; the
//!   lock is only regenerated via `--update-schema-lock`, which refuses to
//!   rewrite a changed or removed fingerprint unless some version constant
//!   changed too. D8 deliberately has **no** `allow` escape — the lockfile
//!   (plus a version bump) *is* the escape hatch.
//! * **D9 `lossy-cast`** — flags `as` numeric casts inside codec fns, where a
//!   silent truncation becomes a silent wire-format corruption. Use
//!   `try_from` (or a stated-invariant `expect`) or a justified
//!   `// detlint: allow(lossy-cast): why`.
//!
//! Heuristics are tuned to the workspace's codec idioms (struct-literal
//! decodes, `let`-bound decodes, tag-dispatched enums via `match`, length
//! prefixes + element loops) and err toward silence: an op whose field name
//! cannot be determined is a wildcard that matches anything.

use std::collections::BTreeMap;

use crate::{ident_matches, Finding, LexedFile, Rule};

/// Workspace-relative path of the committed schema lockfile.
pub const SCHEMA_LOCK_FILE: &str = "SNAPSHOT_SCHEMA.lock";

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Identifiers that never name a field when they appear in an encode
/// receiver: the codec plumbing itself plus primitive type names.
fn is_plumbing_ident(word: &str) -> bool {
    matches!(word, "self" | "Self" | "as" | "out" | "r" | "mut" | "ref")
        || NUMERIC_TYPES.contains(&word)
}

// ---------------------------------------------------------------------------
// Op extraction.
// ---------------------------------------------------------------------------

/// How confidently an op names a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    /// A field write/read with candidate names attached.
    Named,
    /// An enum discriminant (literal tag or `match` scrutinee/dispatch).
    Tag,
    /// A write/read whose field could not be determined; matches anything.
    Anon,
}

/// One `.encode(out)` write or `::decode(r)?` read inside a codec fn.
#[derive(Debug, Clone)]
struct CodecOp {
    kind: OpKind,
    /// Candidate field names (identifier segments of the receiver for
    /// encodes, the binding/field name for decodes). Empty iff not `Named`.
    names: Vec<String>,
    /// Canonical receiver text (whitespace-stripped) — fingerprint input.
    canon: String,
    /// 0-based line, 0-based column, span of the anchor token.
    line: usize,
    column: usize,
    span: usize,
}

impl CodecOp {
    fn is_wild(&self) -> bool {
        self.kind != OpKind::Named
    }

    fn display_name(&self) -> &str {
        self.names.first().map(String::as_str).unwrap_or("<anon>")
    }

    fn shares_name(&self, other: &CodecOp) -> bool {
        self.names.iter().any(|n| other.names.contains(n))
    }
}

/// One `fn encode*`/`fn decode*` found inside an `impl` block.
#[derive(Debug, Clone)]
struct CodecFn {
    is_encode: bool,
    /// The impl target type, e.g. `Worker`.
    type_name: String,
    /// The fn-name tail after `encode`/`decode`, e.g. `""` or `"_state"`.
    suffix: String,
    fn_name: String,
    /// 0-based header position of the fn name.
    header_line: usize,
    header_column: usize,
    ops: Vec<CodecOp>,
    /// Body contains a `match` — field order is branch-dependent, so the
    /// comparison falls back to multiset matching.
    dynamic: bool,
    /// `as <numeric>` cast sites in the body: (line, column, span).
    casts: Vec<(usize, usize, usize)>,
}

impl CodecFn {
    /// `Worker` or `CrowdLearnSystem::state` (suffix with `_` stripped).
    fn pair_name(&self) -> String {
        let tail = self.suffix.trim_start_matches('_');
        if tail.is_empty() {
            self.type_name.clone()
        } else {
            format!("{}::{tail}", self.type_name)
        }
    }
}

/// Extracts the impl target type from a line, if it opens an `impl` block.
fn impl_target(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    let rest = trimmed.strip_prefix("impl")?;
    if !rest.starts_with([' ', '<']) {
        return None;
    }
    // Skip `impl<...>` generic params (angle brackets never nest with `->`
    // in an impl header).
    let rest = if let Some(generics) = rest.strip_prefix('<') {
        let mut depth = 1usize;
        let mut end = None;
        for (i, c) in generics.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        &generics[end?..]
    } else {
        rest
    };
    let rest = rest.trim_start();
    // `impl Encode for Worker {` → take after ` for `; `impl Worker {` → as is.
    let target = match rest.find(" for ") {
        Some(i) => rest[i + " for ".len()..].trim_start(),
        None => rest,
    };
    let end = target
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(target.len());
    let name = &target[..end];
    if name.is_empty() || name.as_bytes()[0].is_ascii_digit() {
        return None;
    }
    Some(name.to_string())
}

/// If `line` declares a fn named `encode*`/`decode*`, returns
/// (is_encode, suffix, fn_name, name column).
fn codec_fn_header(line: &str) -> Option<(bool, String, String, usize)> {
    for at in ident_matches(line, "fn") {
        let after = line[at + 2..].trim_start();
        let ws = line[at + 2..].len() - after.len();
        let name_start = at + 2 + ws;
        let end = after
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(after.len());
        let name = &after[..end];
        if !after[end..].trim_start().starts_with('(') {
            continue;
        }
        for (prefix, is_encode) in [("encode", true), ("decode", false)] {
            if let Some(suffix) = name.strip_prefix(prefix) {
                return Some((is_encode, suffix.to_string(), name.to_string(), name_start));
            }
        }
    }
    None
}

/// Scans backward from the `.` of `.encode(` to the start of the receiver
/// postfix expression, balancing one level of call parentheses per step.
fn receiver_start(line: &str, dot: usize) -> usize {
    let bytes = line.as_bytes();
    let mut i = dot;
    while i > 0 {
        let c = bytes[i - 1];
        if c == b')' {
            let mut depth = 0usize;
            let mut j = i;
            let mut closed = false;
            while j > 0 {
                match bytes[j - 1] {
                    b')' => depth += 1,
                    b'(' => {
                        depth -= 1;
                        if depth == 0 {
                            j -= 1;
                            closed = true;
                            break;
                        }
                    }
                    _ => {}
                }
                j -= 1;
            }
            if !closed {
                break;
            }
            i = j;
        } else if c == b'.' || c == b':' || c == b'_' || c.is_ascii_alphanumeric() {
            i -= 1;
        } else {
            break;
        }
    }
    i
}

/// Splits text into identifier tokens (runs of `[A-Za-z_][A-Za-z0-9_]*`).
fn ident_tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'_' || b.is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            out.push(text[start..i].to_string());
        } else if b.is_ascii_digit() {
            // Skip the whole numeric literal including type suffixes so
            // `0u8` does not contribute a `u8` token.
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Builds the encode op for a `.encode(` at byte `dot` of `line`.
fn encode_op(line: &str, line_idx: usize, dot: usize) -> CodecOp {
    let start = receiver_start(line, dot);
    let receiver = &line[start..dot];
    let canon: String = receiver.chars().filter(|c| !c.is_whitespace()).collect();
    let span = dot.saturating_sub(start).max(1);
    let starts_numeric = canon.as_bytes().first().is_some_and(u8::is_ascii_digit);
    let names: Vec<String> = ident_tokens(receiver)
        .into_iter()
        .filter(|w| !is_plumbing_ident(w) && w.len() > 1)
        .collect();
    let kind = if starts_numeric || names == ["tag"] {
        OpKind::Tag
    } else if names.is_empty() {
        OpKind::Anon
    } else {
        OpKind::Named
    };
    CodecOp {
        kind,
        names: if kind == OpKind::Named {
            names
        } else {
            Vec::new()
        },
        canon,
        line: line_idx,
        column: start,
        span,
    }
}

/// Builds the decode op for a `decode(` at byte `at` of `line` (already
/// known to be preceded by `.` or `:`).
fn decode_op(line: &str, line_idx: usize, at: usize) -> CodecOp {
    let trimmed = line.trim_start();
    let name = decode_binding_name(trimmed);
    let (kind, names) = match name {
        DecodeName::Tag => (OpKind::Tag, Vec::new()),
        DecodeName::Anon => (OpKind::Anon, Vec::new()),
        DecodeName::Named(n) => (OpKind::Named, vec![n]),
    };
    CodecOp {
        kind,
        names,
        canon: String::new(),
        line: line_idx,
        column: at,
        span: "decode".len(),
    }
}

enum DecodeName {
    Named(String),
    Tag,
    Anon,
}

/// Names a decode op from the shape of its (trimmed) line: a `let` binding,
/// a struct-literal field, or a `match` dispatch.
fn decode_binding_name(trimmed: &str) -> DecodeName {
    if trimmed.starts_with("match ") || trimmed.starts_with("match(") {
        return DecodeName::Tag;
    }
    if let Some(rest) = trimmed.strip_prefix("let ") {
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(rest.len());
        let name = &rest[..end];
        if name == "tag" {
            return DecodeName::Tag;
        }
        if name.len() > 1 && !name.as_bytes()[0].is_ascii_digit() {
            return DecodeName::Named(name.to_string());
        }
        return DecodeName::Anon;
    }
    // Struct-literal field: `reliability: f64::decode(r)?,` — a single `:`
    // right after the leading identifier (`::` would be a path).
    let end = trimmed
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(trimmed.len());
    let name = &trimmed[..end];
    if !name.is_empty()
        && !name.as_bytes()[0].is_ascii_digit()
        && trimmed[end..].starts_with(':')
        && !trimmed[end..].starts_with("::")
    {
        if name == "tag" {
            return DecodeName::Tag;
        }
        if name.len() > 1 {
            return DecodeName::Named(name.to_string());
        }
    }
    DecodeName::Anon
}

/// Extracts every codec fn (with its ops and casts) from a lexed file.
/// `#[cfg(test)]` regions are skipped — test codecs are not wire format.
fn collect_codec_fns(lexed: &LexedFile) -> Vec<CodecFn> {
    let mut fns = Vec::new();
    let mut depth: i64 = 0;
    let mut cur_impl: Option<(String, i64)> = None;
    let mut i = 0;
    while i < lexed.code.len() {
        let line = &lexed.code[i];
        if let Some(ty) = impl_target(line) {
            cur_impl = Some((ty, depth));
        }
        if !lexed.in_test[i] {
            if let (Some((ty, _)), Some((is_encode, suffix, fn_name, col))) =
                (cur_impl.as_ref(), codec_fn_header(line))
            {
                if let Some(end) = fn_body_end(lexed, i, col) {
                    fns.push(scan_codec_fn(
                        lexed, i, end, is_encode, ty, &suffix, &fn_name, col,
                    ));
                    // The body is brace-balanced; net depth change is zero.
                    i = end + 1;
                    continue;
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if cur_impl.as_ref().is_some_and(|(_, floor)| depth <= *floor) {
                        cur_impl = None;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    fns
}

/// Finds the last line of the fn body opened at (`line_idx`, after `col`).
/// Returns `None` for bodyless declarations (trait signatures).
fn fn_body_end(lexed: &LexedFile, line_idx: usize, col: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut opened = false;
    for (off, line) in lexed.code[line_idx..].iter().enumerate() {
        let start = if off == 0 { col } else { 0 };
        for c in line[start.min(line.len())..].chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some(line_idx + off);
                    }
                }
                ';' if !opened && depth == 0 => return None,
                _ => {}
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn scan_codec_fn(
    lexed: &LexedFile,
    start: usize,
    end: usize,
    is_encode: bool,
    type_name: &str,
    suffix: &str,
    fn_name: &str,
    header_col: usize,
) -> CodecFn {
    let mut ops = Vec::new();
    let mut casts = Vec::new();
    let mut dynamic = false;
    for (idx, line) in lexed.code[start..=end].iter().enumerate() {
        let line_idx = start + idx;
        if !ident_matches(line, "match").is_empty() {
            dynamic = true;
        }
        if is_encode {
            let mut from = 0;
            while let Some(pos) = line[from..].find(".encode(") {
                let dot = from + pos;
                ops.push(encode_op(line, line_idx, dot));
                from = dot + ".encode(".len();
            }
        } else {
            for at in ident_matches(line, "decode") {
                let preceded = at > 0 && matches!(line.as_bytes()[at - 1], b'.' | b':');
                if preceded && line[at..].starts_with("decode(") {
                    ops.push(decode_op(line, line_idx, at));
                }
            }
        }
        for at in ident_matches(line, "as") {
            let after = line[at + 2..].trim_start();
            let ws = line[at + 2..].len() - after.len();
            let end_ty = after
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(after.len());
            if NUMERIC_TYPES.contains(&&after[..end_ty]) {
                casts.push((line_idx, at, 2 + ws + end_ty));
            }
        }
    }
    CodecFn {
        is_encode,
        type_name: type_name.to_string(),
        suffix: suffix.to_string(),
        fn_name: fn_name.to_string(),
        header_line: start,
        header_column: header_col,
        ops,
        dynamic,
        casts,
    }
}

// ---------------------------------------------------------------------------
// D7 comparison + D9 casts.
// ---------------------------------------------------------------------------

type Push<'a> = dyn FnMut(Rule, usize, usize, usize, String) + 'a;

/// Runs D7 (codec symmetry) and D9 (lossy casts) over one lexed file,
/// reporting through the caller's allow-aware `push`.
pub(crate) fn check_codecs(lexed: &LexedFile, d7: bool, d9: bool, push: &mut Push<'_>) {
    let fns = collect_codec_fns(lexed);

    if d9 {
        for f in &fns {
            for &(line, col, span) in &f.casts {
                push(
                    Rule::LossyCast,
                    line,
                    col,
                    span,
                    format!(
                        "numeric `as` cast in codec fn `{}::{}` can silently truncate \
                         the wire value",
                        f.type_name, f.fn_name
                    ),
                );
            }
        }
    }

    if !d7 {
        return;
    }
    let mut pairs: BTreeMap<(String, String), (Option<usize>, Option<usize>)> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        let slot = pairs
            .entry((f.type_name.clone(), f.suffix.clone()))
            .or_default();
        if f.is_encode {
            slot.0.get_or_insert(i);
        } else {
            slot.1.get_or_insert(i);
        }
    }
    for (enc_idx, dec_idx) in pairs.values() {
        match (enc_idx, dec_idx) {
            (Some(e), Some(d)) => compare_pair(&fns[*e], &fns[*d], push),
            (Some(i), None) | (None, Some(i)) => {
                let f = &fns[*i];
                let other = if f.is_encode {
                    format!("decode{}", f.suffix)
                } else {
                    format!("encode{}", f.suffix)
                };
                push(
                    Rule::CodecSymmetry,
                    f.header_line,
                    f.header_column,
                    f.fn_name.len(),
                    format!(
                        "`{}::{}` has no matching `{}::{other}` in this file \
                         (codec pairs must live together)",
                        f.type_name, f.fn_name, f.type_name
                    ),
                );
            }
            (None, None) => unreachable!("pair entry created without a member"),
        }
    }
}

fn compare_pair(enc: &CodecFn, dec: &CodecFn, push: &mut Push<'_>) {
    let pair = enc.pair_name();
    if enc.dynamic || dec.dynamic {
        // Branch-dependent bodies: compare named ops as a multiset, letting
        // wildcards on the other side absorb what we cannot name.
        let mut dec_used = vec![false; dec.ops.len()];
        let mut enc_unmatched = Vec::new();
        for op in enc.ops.iter().filter(|o| !o.is_wild()) {
            let hit = dec
                .ops
                .iter()
                .enumerate()
                .find(|(j, d)| !dec_used[*j] && !d.is_wild() && op.shares_name(d));
            match hit {
                Some((j, _)) => dec_used[j] = true,
                None => enc_unmatched.push(op),
            }
        }
        // Only genuinely-unnameable ops absorb leftovers: a `match`
        // scrutinee tag reads one discriminant, not arbitrary fields.
        let dec_anon = dec.ops.iter().filter(|o| o.kind == OpKind::Anon).count();
        if dec_anon == 0 {
            for op in enc_unmatched {
                push(
                    Rule::CodecSymmetry,
                    op.line,
                    op.column,
                    op.span,
                    format!(
                        "`{pair}` codec drift: field `{}` is written by `{}` but never \
                         read by `{}`",
                        op.display_name(),
                        enc.fn_name,
                        dec.fn_name
                    ),
                );
            }
        }
        let enc_anon = enc.ops.iter().filter(|o| o.kind == OpKind::Anon).count();
        if enc_anon == 0 {
            for (j, d) in dec.ops.iter().enumerate() {
                if !d.is_wild() && !dec_used[j] {
                    push(
                        Rule::CodecSymmetry,
                        d.line,
                        d.column,
                        d.span,
                        format!(
                            "`{pair}` codec drift: field `{}` is read by `{}` but never \
                             written by `{}`",
                            d.display_name(),
                            dec.fn_name,
                            enc.fn_name
                        ),
                    );
                }
            }
        }
        return;
    }

    // Straight-line bodies: the sequences must agree position by position.
    if enc.ops.len() != dec.ops.len() {
        push(
            Rule::CodecSymmetry,
            enc.header_line,
            enc.header_column,
            enc.fn_name.len(),
            format!(
                "`{pair}` codec drift: `{}` writes {} field(s) but `{}` reads {}",
                enc.fn_name,
                enc.ops.len(),
                dec.fn_name,
                dec.ops.len()
            ),
        );
        return;
    }
    for (pos, (e, d)) in enc.ops.iter().zip(&dec.ops).enumerate() {
        if !e.is_wild() && !d.is_wild() && !e.shares_name(d) {
            push(
                Rule::CodecSymmetry,
                e.line,
                e.column,
                e.span,
                format!(
                    "`{pair}` codec field order mismatch at position {}: `{}` writes \
                     `{}` where `{}` reads `{}`",
                    pos + 1,
                    enc.fn_name,
                    e.display_name(),
                    dec.fn_name,
                    d.display_name()
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// D8 schema fingerprints + lockfile.
// ---------------------------------------------------------------------------

/// FNV-1a-64 — the same hash the snapshot frames use for their checksums.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A fingerprinted codec pair, with the anchor needed to report drift.
#[derive(Debug, Clone)]
pub struct CodecFingerprint {
    /// Workspace-relative file path.
    pub path: String,
    /// Pair name, e.g. `Worker` or `CrowdLearnSystem::state`.
    pub name: String,
    /// FNV-1a-64 over the canonical encode sequence + decode op count.
    pub fingerprint: u64,
    /// 1-based line of the encode fn header (drift findings anchor here).
    pub line: usize,
    /// 1-based column of the encode fn name.
    pub column: usize,
    /// Length of the encode fn name.
    pub span: usize,
    /// The raw header line, for diagnostics.
    pub snippet: String,
}

/// A `*VERSION*` integer constant in codec scope.
#[derive(Debug, Clone)]
pub struct VersionConst {
    /// `crate/CONST_NAME`.
    pub key: String,
    /// The constant's integer value.
    pub value: u64,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the `const` item.
    pub line: usize,
    /// 1-based column of the constant name.
    pub column: usize,
    /// Length of the constant name.
    pub span: usize,
    /// The raw line, for diagnostics.
    pub snippet: String,
}

/// Everything D8 compares against the lockfile.
#[derive(Debug, Clone, Default)]
pub struct SchemaReport {
    /// One fingerprint per complete encode/decode pair, in walk order.
    pub fingerprints: Vec<CodecFingerprint>,
    /// Every `*VERSION*` constant in codec scope.
    pub version_consts: Vec<VersionConst>,
}

impl SchemaReport {
    /// Collapses the report to the comparable lock representation.
    pub fn to_lock(&self) -> SchemaLock {
        SchemaLock {
            version_consts: self
                .version_consts
                .iter()
                .map(|c| (c.key.clone(), c.value))
                .collect(),
            codecs: self
                .fingerprints
                .iter()
                .map(|f| ((f.path.clone(), f.name.clone()), f.fingerprint))
                .collect(),
        }
    }
}

/// The parsed (or freshly computed) contents of `SNAPSHOT_SCHEMA.lock`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaLock {
    /// `crate/CONST_NAME` → value.
    pub version_consts: BTreeMap<String, u64>,
    /// (path, pair name) → fingerprint.
    pub codecs: BTreeMap<(String, String), u64>,
}

impl SchemaLock {
    /// Renders the deterministic lockfile text.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# SNAPSHOT_SCHEMA.lock — FNV-1a-64 fingerprints of every Encode/Decode pair\n\
             # in codec scope, plus the *VERSION* constants that gate them.\n\
             # Regenerate with: cargo run -p detlint -- --update-schema-lock\n\
             # (regeneration refuses fingerprint changes without a version-constant bump;\n\
             # detlint rule D8 fails CI whenever the tree drifts from this file)\n",
        );
        for (key, value) in &self.version_consts {
            out.push_str(&format!("version-const {key} = {value}\n"));
        }
        for ((path, name), fp) in &self.codecs {
            out.push_str(&format!("codec {path} {name} {fp:#018x}\n"));
        }
        out
    }

    /// Parses lockfile text; errors carry the 1-based offending line.
    pub fn parse(text: &str) -> Result<SchemaLock, String> {
        let mut lock = SchemaLock::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: &str| format!("{SCHEMA_LOCK_FILE}:{}: {m}", idx + 1);
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["version-const", key, "=", value] => {
                    let value = value
                        .parse::<u64>()
                        .map_err(|_| err("version-const value must be an integer"))?;
                    lock.version_consts.insert((*key).to_string(), value);
                }
                ["codec", path, name, fp] => {
                    let digits = fp
                        .strip_prefix("0x")
                        .ok_or_else(|| err("codec fingerprint must be 0x-prefixed hex"))?;
                    let fp = u64::from_str_radix(digits, 16)
                        .map_err(|_| err("codec fingerprint must be 0x-prefixed hex"))?;
                    lock.codecs
                        .insert(((*path).to_string(), (*name).to_string()), fp);
                }
                _ => {
                    return Err(err(
                        "expected `version-const <key> = <int>` or `codec <path> <name> <0xhex>`",
                    ))
                }
            }
        }
        Ok(lock)
    }
}

/// Collects the schema contributions of one file into `report`.
pub(crate) fn collect_into(
    lexed: &LexedFile,
    path: &str,
    crate_name: &str,
    report: &mut SchemaReport,
) {
    let fns = collect_codec_fns(lexed);
    let mut pairs: BTreeMap<(String, String), (Option<usize>, Option<usize>)> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        let slot = pairs
            .entry((f.type_name.clone(), f.suffix.clone()))
            .or_default();
        if f.is_encode {
            slot.0.get_or_insert(i);
        } else {
            slot.1.get_or_insert(i);
        }
    }
    for (enc_idx, dec_idx) in pairs.values() {
        let (Some(e), Some(d)) = (enc_idx, dec_idx) else {
            continue; // unpaired fns are a D7 finding, not a schema entry
        };
        let (enc, dec) = (&fns[*e], &fns[*d]);
        let name = enc.pair_name();
        let canon_ops: Vec<&str> = enc.ops.iter().map(|o| o.canon.as_str()).collect();
        let canon = format!("{name}|e:{}|d:{}", canon_ops.join(","), dec.ops.len());
        report.fingerprints.push(CodecFingerprint {
            path: path.to_string(),
            name,
            fingerprint: fnv1a64(canon.as_bytes()),
            line: enc.header_line + 1,
            column: enc.header_column + 1,
            span: enc.fn_name.len(),
            snippet: lexed.raw[enc.header_line].clone(),
        });
    }
    for (idx, line) in lexed.code.iter().enumerate() {
        if lexed.in_test[idx] {
            continue;
        }
        for at in ident_matches(line, "const") {
            let after = line[at + 5..].trim_start();
            let ws = line[at + 5..].len() - after.len();
            let end = after
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(after.len());
            let ident = &after[..end];
            if !ident.contains("VERSION") {
                continue;
            }
            let Some(eq) = after[end..].find('=') else {
                continue;
            };
            let Some(value) = parse_int_literal(after[end + eq + 1..].trim_start()) else {
                continue;
            };
            report.version_consts.push(VersionConst {
                key: format!("{crate_name}/{ident}"),
                value,
                path: path.to_string(),
                line: idx + 1,
                column: at + 5 + ws + 1,
                span: ident.len(),
                snippet: lexed.raw[idx].clone(),
            });
        }
    }
}

/// Parses the leading integer literal of `text` (`3`, `0x10`, `1_000u32`).
fn parse_int_literal(text: &str) -> Option<u64> {
    let (radix, digits) = match text.strip_prefix("0x") {
        Some(rest) => (16, rest),
        None => (10, text),
    };
    let end = digits
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(digits.len());
    // Strip a trailing type suffix (`u32`, `usize`, ...).
    let token = &digits[..end];
    let numeric_end = token
        .find(|c: char| !(c.is_ascii_hexdigit() && (radix == 16 || c.is_ascii_digit()) || c == '_'))
        .unwrap_or(token.len());
    let cleaned: String = token[..numeric_end].chars().filter(|&c| c != '_').collect();
    if cleaned.is_empty() {
        return None;
    }
    u64::from_str_radix(&cleaned, radix).ok()
}

/// Compares the collected schema against the lockfile text (if any) and
/// returns D8 findings. No codec pairs in scope → no lock required.
pub(crate) fn schema_findings(report: &SchemaReport, lock_text: Option<&str>) -> Vec<Finding> {
    if report.fingerprints.is_empty() {
        return Vec::new();
    }
    let lock_anchor = |message: String| Finding {
        rule: Rule::SchemaLock,
        path: SCHEMA_LOCK_FILE.to_string(),
        line: 1,
        column: 1,
        span: 1,
        message,
        snippet: String::new(),
    };
    let Some(text) = lock_text else {
        return vec![lock_anchor(format!(
            "{SCHEMA_LOCK_FILE} is missing but {} codec pair(s) are in scope; \
             generate it with `--update-schema-lock`",
            report.fingerprints.len()
        ))];
    };
    let lock = match SchemaLock::parse(text) {
        Ok(lock) => lock,
        Err(e) => return vec![lock_anchor(e)],
    };
    let mut findings = Vec::new();
    for fp in &report.fingerprints {
        let key = (fp.path.clone(), fp.name.clone());
        match lock.codecs.get(&key) {
            None => findings.push(Finding {
                rule: Rule::SchemaLock,
                path: fp.path.clone(),
                line: fp.line,
                column: fp.column,
                span: fp.span,
                message: format!(
                    "codec `{}` is not in {SCHEMA_LOCK_FILE}; regenerate it with \
                     `--update-schema-lock`",
                    fp.name
                ),
                snippet: fp.snippet.clone(),
            }),
            Some(&locked) if locked != fp.fingerprint => findings.push(Finding {
                rule: Rule::SchemaLock,
                path: fp.path.clone(),
                line: fp.line,
                column: fp.column,
                span: fp.span,
                message: format!(
                    "codec `{}` schema fingerprint drifted from {SCHEMA_LOCK_FILE} \
                     ({locked:#018x} -> {:#018x}); bump the snapshot format version and \
                     regenerate the lock",
                    fp.name, fp.fingerprint
                ),
                snippet: fp.snippet.clone(),
            }),
            Some(_) => {}
        }
    }
    let current = report.to_lock();
    for (path, name) in lock.codecs.keys() {
        if !current.codecs.contains_key(&(path.clone(), name.clone())) {
            findings.push(lock_anchor(format!(
                "codec `{name}` ({path}) is in {SCHEMA_LOCK_FILE} but no longer in \
                 the tree; regenerate the lock with `--update-schema-lock`"
            )));
        }
    }
    for vc in &report.version_consts {
        match lock.version_consts.get(&vc.key) {
            None => findings.push(Finding {
                rule: Rule::SchemaLock,
                path: vc.path.clone(),
                line: vc.line,
                column: vc.column,
                span: vc.span,
                message: format!(
                    "version constant `{}` is not in {SCHEMA_LOCK_FILE}; regenerate it \
                     with `--update-schema-lock`",
                    vc.key
                ),
                snippet: vc.snippet.clone(),
            }),
            Some(&locked) if locked != vc.value => findings.push(Finding {
                rule: Rule::SchemaLock,
                path: vc.path.clone(),
                line: vc.line,
                column: vc.column,
                span: vc.span,
                message: format!(
                    "version constant `{}` = {} does not match {SCHEMA_LOCK_FILE} ({}); \
                     regenerate the lock with `--update-schema-lock`",
                    vc.key, vc.value, locked
                ),
                snippet: vc.snippet.clone(),
            }),
            Some(_) => {}
        }
    }
    for key in lock.version_consts.keys() {
        if !current.version_consts.contains_key(key) {
            findings.push(lock_anchor(format!(
                "version constant `{key}` is in {SCHEMA_LOCK_FILE} but no longer in \
                 the tree; regenerate the lock with `--update-schema-lock`"
            )));
        }
    }
    findings
}

/// Computes the new lockfile text, refusing when a codec fingerprint changed
/// or disappeared while every `*VERSION*` constant kept its old value — the
/// rule that makes a silent schema change impossible to land.
pub fn plan_schema_update(
    report: &SchemaReport,
    old: Option<&SchemaLock>,
) -> Result<String, String> {
    let new = report.to_lock();
    if let Some(old) = old {
        let changed: Vec<&(String, String)> = new
            .codecs
            .iter()
            .filter(|(k, v)| old.codecs.get(*k).is_some_and(|o| o != *v))
            .map(|(k, _)| k)
            .collect();
        let removed: Vec<&(String, String)> = old
            .codecs
            .keys()
            .filter(|k| !new.codecs.contains_key(*k))
            .collect();
        if (!changed.is_empty() || !removed.is_empty()) && new.version_consts == old.version_consts
        {
            let mut names: Vec<&str> = changed
                .iter()
                .chain(removed.iter())
                .map(|(_, name)| name.as_str())
                .collect();
            names.sort_unstable();
            names.dedup();
            return Err(format!(
                "refusing to regenerate {SCHEMA_LOCK_FILE}: codec schema changed \
                 ({}) but no *VERSION* constant was bumped; bump the snapshot format \
                 version first so old frames are rejected instead of misparsed",
                names.join(", ")
            ));
        }
    }
    Ok(new.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn ops_of(src: &str, encode: bool) -> Vec<(OpKind, Vec<String>)> {
        let lexed = lex(src);
        let fns = collect_codec_fns(&lexed);
        let f = fns
            .iter()
            .find(|f| f.is_encode == encode)
            .expect("codec fn present");
        f.ops.iter().map(|o| (o.kind, o.names.clone())).collect()
    }

    #[test]
    fn encode_receivers_yield_candidate_sets() {
        let src = "impl Encode for W {\n    fn encode(&self, out: &mut Vec<u8>) {\n        \
                   self.id.0.encode(out);\n        self.rng.state().encode(out);\n        \
                   self.inflight.len().encode(out);\n        0u8.encode(out);\n        \
                   tag.encode(out);\n    }\n}\n";
        let ops = ops_of(src, true);
        assert_eq!(ops[0], (OpKind::Named, vec!["id".to_string()]));
        assert_eq!(
            ops[1],
            (OpKind::Named, vec!["rng".to_string(), "state".to_string()])
        );
        assert_eq!(
            ops[2],
            (
                OpKind::Named,
                vec!["inflight".to_string(), "len".to_string()]
            )
        );
        assert_eq!(ops[3].0, OpKind::Tag);
        assert_eq!(ops[4].0, OpKind::Tag);
    }

    #[test]
    fn decode_bindings_yield_names() {
        let src = "impl Decode for W {\n    fn decode(r: &mut Reader<'_>) -> Result<Self, E> {\n        \
                   let id = WorkerId(u32::decode(r)?);\n        let n = usize::decode(r)?;\n        \
                   Ok(Self {\n            reliability: f64::decode(r)?,\n            \
                   speed: Decode::decode(r)?,\n        })\n    }\n}\n";
        let ops = ops_of(src, false);
        assert_eq!(ops[0], (OpKind::Named, vec!["id".to_string()]));
        assert_eq!(ops[1].0, OpKind::Anon); // single-char binding → wildcard
        assert_eq!(ops[2], (OpKind::Named, vec!["reliability".to_string()]));
        assert_eq!(ops[3], (OpKind::Named, vec!["speed".to_string()]));
    }

    #[test]
    fn match_scrutinee_and_tag_bindings_are_tags() {
        let src =
            "impl Decode for E {\n    fn decode(r: &mut Reader<'_>) -> Result<Self, X> {\n        \
                   match u8::decode(r)? {\n            0 => Ok(E::A),\n            \
                   _ => Err(X),\n        }\n    }\n}\n";
        let ops = ops_of(src, false);
        assert_eq!(ops[0].0, OpKind::Tag);
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let src = "pub trait Encode {\n    fn encode(&self, out: &mut Vec<u8>);\n}\n";
        let lexed = lex(src);
        assert!(collect_codec_fns(&lexed).is_empty());
    }

    #[test]
    fn cfg_test_codecs_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    impl Encode for T {\n        \
                   fn encode(&self, out: &mut Vec<u8>) { self.x.encode(out); }\n    }\n}\n";
        let lexed = lex(src);
        assert!(collect_codec_fns(&lexed).is_empty());
    }

    #[test]
    fn lock_round_trips_through_render_and_parse() {
        let mut lock = SchemaLock::default();
        lock.version_consts
            .insert("runtime/SNAPSHOT_FORMAT_VERSION".to_string(), 3);
        lock.codecs.insert(
            ("crates/a/src/lib.rs".to_string(), "W".to_string()),
            0x1234_5678_9abc_def0,
        );
        let parsed = SchemaLock::parse(&lock.render()).expect("round trip");
        assert_eq!(parsed, lock);
    }

    #[test]
    fn lock_parse_rejects_malformed_lines_with_position() {
        let err = SchemaLock::parse("codec a b nothex\n").unwrap_err();
        assert!(err.starts_with("SNAPSHOT_SCHEMA.lock:1:"), "{err}");
        let err = SchemaLock::parse("\n\nwhatever\n").unwrap_err();
        assert!(err.starts_with("SNAPSHOT_SCHEMA.lock:3:"), "{err}");
    }

    #[test]
    fn update_refuses_fingerprint_change_without_version_bump() {
        let mut report = SchemaReport::default();
        report.fingerprints.push(CodecFingerprint {
            path: "crates/a/src/lib.rs".to_string(),
            name: "W".to_string(),
            fingerprint: 2,
            line: 1,
            column: 1,
            span: 6,
            snippet: String::new(),
        });
        report.version_consts.push(VersionConst {
            key: "a/FORMAT_VERSION".to_string(),
            value: 1,
            path: "crates/a/src/lib.rs".to_string(),
            line: 1,
            column: 1,
            span: 14,
            snippet: String::new(),
        });
        let mut old = report.to_lock();
        old.codecs
            .insert(("crates/a/src/lib.rs".to_string(), "W".to_string()), 1);
        let err = plan_schema_update(&report, Some(&old)).unwrap_err();
        assert!(err.contains("refusing to regenerate"), "{err}");
        assert!(err.contains("W"), "{err}");

        // Bumping the version constant unlocks the same update.
        old.version_consts.insert("a/FORMAT_VERSION".to_string(), 0);
        let text = plan_schema_update(&report, Some(&old)).expect("bump unlocks");
        assert!(text.contains("codec crates/a/src/lib.rs W 0x0000000000000002"));

        // Pure additions never need a bump.
        let fresh = plan_schema_update(&report, None).expect("first generation");
        assert!(fresh.contains("version-const a/FORMAT_VERSION = 1"));
    }

    #[test]
    fn version_consts_are_tokenized_with_values() {
        let src = "pub const SNAPSHOT_FORMAT_VERSION: u32 = 3;\nconst OTHER: u32 = 7;\n";
        let lexed = lex(src);
        let mut report = SchemaReport::default();
        collect_into(&lexed, "x.rs", "runtime", &mut report);
        assert_eq!(report.version_consts.len(), 1);
        assert_eq!(
            report.version_consts[0].key,
            "runtime/SNAPSHOT_FORMAT_VERSION"
        );
        assert_eq!(report.version_consts[0].value, 3);
    }
}
