//! `detlint` — the workspace determinism & hygiene static-analysis pass.
//!
//! The reproduction's whole claim rests on determinism: the golden test pins
//! the pipelined runtime to the blocking loop byte-for-byte, and every table
//! and figure is a seeded re-run. Nothing in rustc enforces that property, so
//! this crate does. It is a lexer-level scanner (no `syn` — the registry is
//! unreachable and the linter must build before anything it gates) that walks
//! every workspace crate and reports violations of nine invariants:
//!
//! | code | rule name        | invariant |
//! |------|------------------|-----------|
//! | D1   | `hash-order`     | no `HashMap`/`HashSet` in simulation crates (nondeterministic iteration order) |
//! | D2   | `wall-clock`     | no `Instant::now`/`SystemTime` outside the bench crate (virtual time only) |
//! | D3   | `entropy-rng`    | no `thread_rng`/`from_entropy`/`rand::random` — RNG comes from seeded constructors |
//! | D4   | `panic-paths`    | no `unwrap()`, and `expect()` only with an `"invariant: …"` message, in core/runtime library code |
//! | D5   | `forbid-unsafe`  | every crate root carries `#![forbid(unsafe_code)]` |
//! | D6   | `ambient-env`    | no `env::var` reads in simulation crates (no ambient state) |
//! | D7   | `codec-symmetry` | every `encode*`/`decode*` pair reads and writes the same ordered field sequence |
//! | D8   | `schema-lock`    | codec fingerprints + `*VERSION*` constants match the committed `SNAPSHOT_SCHEMA.lock` |
//! | D9   | `lossy-cast`     | no `as` numeric casts inside codec fns (use `try_from` or justify) |
//!
//! D7–D9 form the **snapcheck** codec-drift pass (see [`mod@snapcheck`]'s
//! module docs); D8 has no allow escape — the lockfile, regenerated only via
//! `--update-schema-lock` after a version-constant bump, is the escape hatch.
//!
//! A finding can be suppressed at the site with a justified allow comment on
//! the same line or the line above:
//!
//! ```text
//! // detlint: allow(hash-order): keys are drained through a sorted Vec below
//! ```
//!
//! The justification is mandatory — an allow without one does not suppress.
//!
//! Rules are toggled and scoped by `detlint.toml` at the workspace root (see
//! [`Config::parse`]). The binary exits 0 when clean, 1 on findings, 2 on
//! usage or I/O errors, and `--json` emits a machine-readable report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

mod snapcheck;

pub use snapcheck::{
    plan_schema_update, CodecFingerprint, SchemaLock, SchemaReport, VersionConst, SCHEMA_LOCK_FILE,
};

/// The nine determinism/hygiene rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: no `HashMap`/`HashSet` in simulation crates.
    HashOrder,
    /// D2: no `Instant::now`/`SystemTime` outside the bench crate.
    WallClock,
    /// D3: no entropy-seeded RNG.
    EntropyRng,
    /// D4: no `unwrap()`/non-invariant `expect()` in core/runtime.
    PanicPaths,
    /// D5: crate roots must `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// D6: no `env::var` ambient state in simulation crates.
    AmbientEnv,
    /// D7: paired `encode*`/`decode*` fns must agree on the field sequence.
    CodecSymmetry,
    /// D8: codec fingerprints must match `SNAPSHOT_SCHEMA.lock`.
    SchemaLock,
    /// D9: no `as` numeric casts inside codec fns.
    LossyCast,
}

impl Rule {
    /// All rules, in code order.
    pub const ALL: [Rule; 9] = [
        Rule::HashOrder,
        Rule::WallClock,
        Rule::EntropyRng,
        Rule::PanicPaths,
        Rule::ForbidUnsafe,
        Rule::AmbientEnv,
        Rule::CodecSymmetry,
        Rule::SchemaLock,
        Rule::LossyCast,
    ];

    /// Short diagnostic code, `D1`..`D6`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::HashOrder => "D1",
            Rule::WallClock => "D2",
            Rule::EntropyRng => "D3",
            Rule::PanicPaths => "D4",
            Rule::ForbidUnsafe => "D5",
            Rule::AmbientEnv => "D6",
            Rule::CodecSymmetry => "D7",
            Rule::SchemaLock => "D8",
            Rule::LossyCast => "D9",
        }
    }

    /// Kebab-case rule name used in config and allow comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashOrder => "hash-order",
            Rule::WallClock => "wall-clock",
            Rule::EntropyRng => "entropy-rng",
            Rule::PanicPaths => "panic-paths",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::AmbientEnv => "ambient-env",
            Rule::CodecSymmetry => "codec-symmetry",
            Rule::SchemaLock => "schema-lock",
            Rule::LossyCast => "lossy-cast",
        }
    }

    /// The `= help:` line shown under a diagnostic.
    pub fn help(self) -> &'static str {
        match self {
            Rule::HashOrder => {
                "use BTreeMap/BTreeSet, or annotate `// detlint: allow(hash-order): <reason>`"
            }
            Rule::WallClock => "simulation code must use crowdlearn_runtime::VirtualClock",
            Rule::EntropyRng => "construct RNGs from explicit seeds (e.g. SplitMix64::new(seed))",
            Rule::PanicPaths => {
                "return a typed error, or state the invariant: `.expect(\"invariant: ...\")`"
            }
            Rule::ForbidUnsafe => "add `#![forbid(unsafe_code)]` at the top of the crate root",
            Rule::AmbientEnv => {
                "thread configuration through explicit Config structs, not env vars"
            }
            Rule::CodecSymmetry => {
                "make the encode/decode field sequences symmetric, or annotate \
                 `// detlint: allow(codec-symmetry): <reason>`"
            }
            Rule::SchemaLock => {
                "bump the snapshot format version, then `cargo run -p detlint -- \
                 --update-schema-lock`"
            }
            Rule::LossyCast => {
                "use try_from with a typed error (or a stated-invariant expect), or \
                 annotate `// detlint: allow(lossy-cast): <reason>`"
            }
        }
    }

    fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// Whether the rule skips `#[cfg(test)]` modules and `tests/`-style
    /// targets. Wall-clock, RNG and unsafe hygiene bind test code too (tests
    /// are part of the seeded, reproducible surface); the container-shape and
    /// panic-path rules only guard library code.
    fn skips_test_code(self) -> bool {
        matches!(
            self,
            Rule::HashOrder
                | Rule::PanicPaths
                | Rule::AmbientEnv
                | Rule::CodecSymmetry
                | Rule::SchemaLock
                | Rule::LossyCast
        )
    }
}

/// Scope and toggle configuration, normally parsed from `detlint.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rule name -> enabled. Rules absent from the map are enabled.
    pub enabled: BTreeMap<String, bool>,
    /// Crates where iteration order can reach RNG draws, reports, or
    /// serialized output (D1/D6 scope).
    pub simulation: Vec<String>,
    /// Crates allowed to read the wall clock (D2 exemptions).
    pub wall_clock_exempt: Vec<String>,
    /// Crates whose library code must not panic mid-cycle (D4 scope).
    pub panic_paths: Vec<String>,
    /// Crates holding hand-written binary codecs (D7/D8/D9 scope).
    pub codec: Vec<String>,
    /// Workspace-relative path prefixes never scanned (e.g. lint fixtures).
    pub exclude: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            enabled: BTreeMap::new(),
            simulation: [
                "core",
                "runtime",
                "dataset",
                "crowd",
                "truth",
                "bandit",
                "classifiers",
                "gbdt",
            ]
            .map(String::from)
            .to_vec(),
            wall_clock_exempt: vec!["bench".to_string()],
            panic_paths: vec!["core".to_string(), "runtime".to_string()],
            codec: [
                "bandit",
                "classifiers",
                "core",
                "crowd",
                "dataset",
                "gbdt",
                "metrics",
                "runtime",
            ]
            .map(String::from)
            .to_vec(),
            exclude: vec!["crates/detlint/tests/fixtures".to_string()],
        }
    }
}

impl Config {
    /// Parses the `detlint.toml` dialect: `[section]` headers, `key = bool`,
    /// `key = "string"`, and single-line `key = ["a", "b"]` arrays. Sections:
    /// `[rules]` (per-rule toggles by name) and `[scope]`
    /// (`simulation`/`wall-clock-exempt`/`panic-paths`/`codec`/`exclude` lists).
    /// Unknown keys are errors — a typo must not silently disable a gate.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let err = |m: &str| format!("detlint.toml:{}: {m}", idx + 1);
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if section != "rules" && section != "scope" {
                    return Err(err(&format!("unknown section `[{section}]`")));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err("expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            match section.as_str() {
                "rules" => {
                    if Rule::from_name(key).is_none() {
                        return Err(err(&format!("unknown rule `{key}`")));
                    }
                    let on = match value {
                        "true" => true,
                        "false" => false,
                        _ => return Err(err("rule toggles must be `true` or `false`")),
                    };
                    cfg.enabled.insert(key.to_string(), on);
                }
                "scope" => {
                    let list = parse_string_array(value).ok_or_else(|| {
                        err("scope entries must be arrays of strings, e.g. [\"core\"]")
                    })?;
                    match key {
                        "simulation" => cfg.simulation = list,
                        "wall-clock-exempt" => cfg.wall_clock_exempt = list,
                        "panic-paths" => cfg.panic_paths = list,
                        "codec" => cfg.codec = list,
                        "exclude" => cfg.exclude = list,
                        _ => return Err(err(&format!("unknown scope key `{key}`"))),
                    }
                }
                _ => return Err(err("key outside a `[rules]`/`[scope]` section")),
            }
        }
        Ok(cfg)
    }

    /// Whether a rule is switched on.
    pub fn rule_enabled(&self, rule: Rule) -> bool {
        *self.enabled.get(rule.name()).unwrap_or(&true)
    }

    /// Whether `rule` binds files of `crate_name` at all.
    pub fn rule_applies(&self, rule: Rule, crate_name: &str) -> bool {
        if !self.rule_enabled(rule) {
            return false;
        }
        let has = |list: &[String]| list.iter().any(|c| c == crate_name);
        match rule {
            Rule::HashOrder | Rule::AmbientEnv => has(&self.simulation),
            Rule::WallClock => !has(&self.wall_clock_exempt),
            Rule::PanicPaths => has(&self.panic_paths),
            Rule::CodecSymmetry | Rule::SchemaLock | Rule::LossyCast => has(&self.codec),
            Rule::EntropyRng | Rule::ForbidUnsafe => true,
        }
    }
}

fn strip_toml_comment(line: &str) -> &str {
    // Good enough for this dialect: `#` never appears inside our strings.
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(item.strip_prefix('"')?.strip_suffix('"')?.to_string());
    }
    Some(out)
}

/// How a file participates in its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`): D5 applies.
    Root,
    /// Ordinary library code under `src/`.
    Source,
    /// Integration tests, examples, benches: whole file is test context.
    TestCode,
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub column: usize,
    /// Length of the offending token (for the caret underline).
    pub span: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, verbatim.
    pub snippet: String,
}

/// The result of scanning a workspace (or fixture tree).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, sorted by (path, line, column, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by justified allow comments.
    pub suppressed: usize,
}

impl Report {
    /// Process exit code the CLI should return for this report.
    pub fn exit_code(&self) -> i32 {
        if self.findings.is_empty() {
            0
        } else {
            1
        }
    }
}

// ---------------------------------------------------------------------------
// Lexer: strip comments and string contents while preserving byte columns.
// ---------------------------------------------------------------------------

struct LexedFile {
    /// Source lines with comment and string interiors blanked to spaces
    /// (quotes kept), so token matching never fires inside prose.
    code: Vec<String>,
    /// Comment text per line (everything else blanked) — allow directives
    /// live here.
    comments: Vec<String>,
    /// The raw source lines.
    raw: Vec<String>,
    /// Whether each line sits inside a `#[cfg(test)]` item.
    in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

fn lex(source: &str) -> LexedFile {
    let bytes = source.as_bytes();
    let mut code = vec![0u8; bytes.len()];
    let mut comments = vec![0u8; bytes.len()];
    let mut state = LexState::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            code[i] = b'\n';
            comments[i] = b'\n';
            if state == LexState::LineComment {
                state = LexState::Code;
            }
            i += 1;
            continue;
        }
        let (code_b, comment_b, next, advance) = match state {
            LexState::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    (b' ', b' ', LexState::LineComment, 1)
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    (b' ', b' ', LexState::BlockComment(1), 2)
                } else if b == b'r'
                    && matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#'))
                    && !ident_byte(bytes.get(i.wrapping_sub(1)).copied())
                {
                    let mut hashes = 0u32;
                    while bytes.get(i + 1 + hashes as usize) == Some(&b'#') {
                        hashes += 1;
                    }
                    if bytes.get(i + 1 + hashes as usize) == Some(&b'"') {
                        let len = 2 + hashes as usize;
                        for (off, slot) in code[i..i + len].iter_mut().enumerate() {
                            *slot = bytes[i + off];
                        }
                        for slot in &mut comments[i..i + len] {
                            *slot = b' ';
                        }
                        state = LexState::RawStr(hashes);
                        i += len;
                        continue;
                    }
                    (b, b' ', LexState::Code, 1)
                } else if b == b'"' {
                    (b, b' ', LexState::Str, 1)
                } else if b == b'\''
                    && (bytes.get(i + 2) == Some(&b'\'') || bytes.get(i + 1) == Some(&b'\\'))
                    && {
                        // A `b` prefix marks a byte-char literal (`b'"'`);
                        // any other identifier tail means a lifetime.
                        let prev = if i == 0 {
                            None
                        } else {
                            bytes.get(i - 1).copied()
                        };
                        !ident_byte(prev) || prev == Some(b'b')
                    }
                {
                    (b, b' ', LexState::CharLit, 1)
                } else {
                    (b, b' ', LexState::Code, 1)
                }
            }
            LexState::LineComment => (b' ', b, LexState::LineComment, 1),
            LexState::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    let next = if depth == 1 {
                        LexState::Code
                    } else {
                        LexState::BlockComment(depth - 1)
                    };
                    code[i] = b' ';
                    comments[i] = b' ';
                    code[i + 1] = b' ';
                    comments[i + 1] = b' ';
                    state = next;
                    i += 2;
                    continue;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    (b' ', b, LexState::BlockComment(depth + 1), 1)
                } else {
                    (b' ', b, state, 1)
                }
            }
            LexState::Str => {
                if b == b'\\' {
                    (b' ', b' ', LexState::Str, 2)
                } else if b == b'"' {
                    (b, b' ', LexState::Code, 1)
                } else {
                    (b' ', b' ', LexState::Str, 1)
                }
            }
            LexState::RawStr(hashes) => {
                if b == b'"' {
                    let mut trailing = 0u32;
                    while trailing < hashes && bytes.get(i + 1 + trailing as usize) == Some(&b'#') {
                        trailing += 1;
                    }
                    if trailing == hashes {
                        let len = 1 + hashes as usize;
                        for (off, slot) in code[i..i + len].iter_mut().enumerate() {
                            *slot = bytes[i + off];
                        }
                        for slot in &mut comments[i..i + len] {
                            *slot = b' ';
                        }
                        state = LexState::Code;
                        i += len;
                        continue;
                    }
                }
                (b' ', b' ', state, 1)
            }
            LexState::CharLit => {
                if b == b'\\' {
                    (b' ', b' ', LexState::CharLit, 2)
                } else if b == b'\'' {
                    (b, b' ', LexState::Code, 1)
                } else {
                    (b' ', b' ', LexState::CharLit, 1)
                }
            }
        };
        code[i] = code_b;
        comments[i] = comment_b;
        if advance == 2 && i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
            code[i + 1] = b' ';
            comments[i + 1] = b' ';
            i += 2;
        } else {
            i += 1;
        }
        state = next;
    }

    // Replace any multibyte leftovers so the lines stay valid UTF-8.
    for slot in code.iter_mut().chain(comments.iter_mut()) {
        if *slot >= 0x80 {
            *slot = b' ';
        }
    }
    let to_lines = |buf: &[u8]| -> Vec<String> {
        String::from_utf8_lossy(buf)
            .split('\n')
            .map(str::to_string)
            .collect()
    };
    let code_lines = to_lines(&code);
    let comment_lines = to_lines(&comments);
    let raw_lines: Vec<String> = source.split('\n').map(str::to_string).collect();
    let in_test = mark_test_lines(&code_lines);
    LexedFile {
        code: code_lines,
        comments: comment_lines,
        raw: raw_lines,
        in_test,
    }
}

fn ident_byte(b: Option<u8>) -> bool {
    matches!(b, Some(c) if c == b'_' || c.is_ascii_alphanumeric())
}

/// Marks lines covered by a `#[cfg(test)]` item: from the attribute through
/// the closing brace of the block it opens.
fn mark_test_lines(code_lines: &[String]) -> Vec<bool> {
    let mut depth: i64 = 0;
    let mut region_floor: Option<i64> = None;
    let mut pending_attr = false;
    let mut marks = Vec::with_capacity(code_lines.len());
    for line in code_lines {
        let active_at_start = region_floor.is_some() || pending_attr;
        if region_floor.is_none() && line.contains("#[cfg(test)]") {
            pending_attr = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_attr && region_floor.is_none() {
                        region_floor = Some(depth - 1);
                        pending_attr = false;
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some(floor) = region_floor {
                        if depth <= floor {
                            region_floor = None;
                        }
                    }
                }
                _ => {}
            }
        }
        marks.push(active_at_start || region_floor.is_some() || pending_attr);
    }
    marks
}

// ---------------------------------------------------------------------------
// Rule matching.
// ---------------------------------------------------------------------------

/// Finds `word` in `line` at identifier boundaries, returning byte offsets.
fn ident_matches(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before = if at == 0 { None } else { Some(bytes[at - 1]) };
        let after = bytes.get(at + word.len()).copied();
        if !ident_byte(before) && !ident_byte(after) {
            out.push(at);
        }
        start = at + word.len();
    }
    out
}

/// An allow directive parsed from a comment line.
struct AllowDirective {
    rule: Option<Rule>,
    justified: bool,
}

fn parse_allow(comment_line: &str) -> Option<AllowDirective> {
    let at = comment_line.find("detlint: allow(")?;
    let rest = &comment_line[at + "detlint: allow(".len()..];
    let close = rest.find(')')?;
    let rule = Rule::from_name(rest[..close].trim());
    let tail = rest[close + 1..].trim_start();
    let justification = tail.strip_prefix(':').unwrap_or(tail).trim();
    Some(AllowDirective {
        rule,
        justified: !justification.is_empty(),
    })
}

/// Lints one file's source text. Pure — fixture tests drive this directly.
///
/// `path` is only used for diagnostics; `crate_name` selects rule scope; and
/// `kind` distinguishes crate roots (D5) and test-only targets.
pub fn lint_source(
    source: &str,
    path: &str,
    crate_name: &str,
    kind: FileKind,
    cfg: &Config,
) -> (Vec<Finding>, usize) {
    let lexed = lex(source);
    let mut findings = Vec::new();
    let mut suppressed = 0usize;

    let allows: Vec<Option<AllowDirective>> =
        lexed.comments.iter().map(|c| parse_allow(c)).collect();
    let allowed = |rule: Rule, line_idx: usize| -> Option<bool> {
        // Same line, then the line above. Some(justified) when present.
        for idx in [Some(line_idx), line_idx.checked_sub(1)]
            .into_iter()
            .flatten()
        {
            if let Some(a) = &allows[idx] {
                if a.rule == Some(rule) {
                    return Some(a.justified);
                }
            }
        }
        None
    };

    let mut push = |rule: Rule, line_idx: usize, column0: usize, span: usize, message: String| {
        match allowed(rule, line_idx) {
            Some(true) => {
                suppressed += 1;
                return;
            }
            Some(false) => {
                findings.push(Finding {
                    rule,
                    path: path.to_string(),
                    line: line_idx + 1,
                    column: column0 + 1,
                    span,
                    message: format!(
                        "{message} (allow comment present but missing its justification)"
                    ),
                    snippet: lexed.raw[line_idx].clone(),
                });
                return;
            }
            None => {}
        }
        findings.push(Finding {
            rule,
            path: path.to_string(),
            line: line_idx + 1,
            column: column0 + 1,
            span,
            message,
            snippet: lexed.raw[line_idx].clone(),
        });
    };

    for (idx, line) in lexed.code.iter().enumerate() {
        let test_line = kind == FileKind::TestCode || lexed.in_test[idx];
        for rule in Rule::ALL {
            // D5 is a file-level rule; D7/D8/D9 work on whole codec fns and
            // run after this per-line loop (D8 at workspace level).
            if matches!(
                rule,
                Rule::ForbidUnsafe | Rule::CodecSymmetry | Rule::SchemaLock | Rule::LossyCast
            ) || !cfg.rule_applies(rule, crate_name)
            {
                continue;
            }
            if test_line && rule.skips_test_code() {
                continue;
            }
            match rule {
                Rule::HashOrder => {
                    for word in ["HashMap", "HashSet"] {
                        for at in ident_matches(line, word) {
                            push(
                                rule,
                                idx,
                                at,
                                word.len(),
                                format!(
                                    "`{word}` iteration order is nondeterministic; \
                                     simulation crate `{crate_name}` must use BTree collections"
                                ),
                            );
                        }
                    }
                }
                Rule::WallClock => {
                    for at in ident_matches(line, "Instant") {
                        if line[at..].starts_with("Instant::now") {
                            push(
                                rule,
                                idx,
                                at,
                                "Instant::now".len(),
                                format!(
                                    "wall-clock read in `{crate_name}`: simulation runs on \
                                     virtual time only"
                                ),
                            );
                        }
                    }
                    for at in ident_matches(line, "SystemTime") {
                        push(
                            rule,
                            idx,
                            at,
                            "SystemTime".len(),
                            format!(
                                "wall-clock read in `{crate_name}`: simulation runs on \
                                 virtual time only"
                            ),
                        );
                    }
                }
                Rule::EntropyRng => {
                    for word in ["thread_rng", "from_entropy"] {
                        for at in ident_matches(line, word) {
                            push(
                                rule,
                                idx,
                                at,
                                word.len(),
                                format!(
                                    "`{word}` draws entropy outside the seed chain; \
                                     every RNG must be constructed from an explicit seed"
                                ),
                            );
                        }
                    }
                    if let Some(at) = line.find("rand::random") {
                        push(
                            rule,
                            idx,
                            at,
                            "rand::random".len(),
                            "`rand::random` draws entropy outside the seed chain; \
                             every RNG must be constructed from an explicit seed"
                                .to_string(),
                        );
                    }
                }
                Rule::PanicPaths => {
                    let mut from = 0;
                    while let Some(pos) = line[from..].find(".unwrap()") {
                        let at = from + pos;
                        push(
                            rule,
                            idx,
                            at,
                            ".unwrap()".len(),
                            format!(
                                "`unwrap()` in `{crate_name}` library code can panic \
                                 mid-cycle; surface the error or state the invariant"
                            ),
                        );
                        from = at + ".unwrap()".len();
                    }
                    let mut from = 0;
                    while let Some(pos) = line[from..].find(".expect(") {
                        let at = from + pos;
                        if !expect_states_invariant(&lexed.raw, idx, at + ".expect(".len()) {
                            push(
                                rule,
                                idx,
                                at,
                                ".expect(".len() - 1,
                                format!(
                                    "`expect()` in `{crate_name}` library code must carry \
                                     an `\"invariant: ...\"` message stating why it cannot fire"
                                ),
                            );
                        }
                        from = at + ".expect(".len();
                    }
                }
                Rule::AmbientEnv => {
                    for at in ident_matches(line, "env") {
                        if line[at..].starts_with("env::var") {
                            push(
                                rule,
                                idx,
                                at,
                                "env::var".len(),
                                format!(
                                    "`env::var` read in simulation crate `{crate_name}`: \
                                     ambient state breaks seeded re-runs"
                                ),
                            );
                        }
                    }
                }
                Rule::ForbidUnsafe | Rule::CodecSymmetry | Rule::SchemaLock | Rule::LossyCast => {
                    unreachable!("handled outside the per-line loop")
                }
            }
        }
    }

    let check_d7 = cfg.rule_applies(Rule::CodecSymmetry, crate_name);
    let check_d9 = cfg.rule_applies(Rule::LossyCast, crate_name);
    if kind != FileKind::TestCode && (check_d7 || check_d9) {
        snapcheck::check_codecs(&lexed, check_d7, check_d9, &mut push);
    }

    if kind == FileKind::Root
        && cfg.rule_applies(Rule::ForbidUnsafe, crate_name)
        && !lexed
            .code
            .iter()
            .any(|l| l.contains("#![forbid(unsafe_code)]"))
    {
        findings.push(Finding {
            rule: Rule::ForbidUnsafe,
            path: path.to_string(),
            line: 1,
            column: 1,
            span: 1,
            message: format!("crate root of `{crate_name}` does not `#![forbid(unsafe_code)]`"),
            snippet: lexed.raw.first().cloned().unwrap_or_default(),
        });
    }

    (findings, suppressed)
}

/// Does the argument of `.expect(` starting after byte `open` on line `idx`
/// begin with a literal `"invariant: ..."` string? Handles rustfmt putting
/// the message on the following line.
fn expect_states_invariant(raw: &[String], idx: usize, open: usize) -> bool {
    let mut line = idx;
    let mut col = open;
    loop {
        let bytes = raw[line].as_bytes();
        while col < bytes.len() && (bytes[col] as char).is_whitespace() {
            col += 1;
        }
        if col < bytes.len() {
            return raw[line][col..].starts_with("\"invariant: ");
        }
        line += 1;
        col = 0;
        if line >= raw.len() {
            return false;
        }
    }
}

// ---------------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------------

/// One `.rs` file the workspace walk decided to scan.
struct WorkspaceFile {
    crate_name: String,
    rel: String,
    path: PathBuf,
    kind: FileKind,
}

/// Enumerates every scannable `.rs` file: each `crates/*` member plus the
/// root `crowdlearn-suite` package (`src/`, `tests/`, `examples/`,
/// `benches/`), honoring `cfg.exclude`. Vendored stand-in crates under
/// `vendor/` are third-party API surface and deliberately out of scope.
fn workspace_files(root: &Path, cfg: &Config) -> io::Result<Vec<WorkspaceFile>> {
    let mut members: Vec<(String, PathBuf)> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let dir = entry.path();
            if dir.is_dir() && dir.join("Cargo.toml").is_file() {
                members.push((entry.file_name().to_string_lossy().into_owned(), dir));
            }
        }
    }
    members.push(("suite".to_string(), root.to_path_buf()));
    members.sort();

    let mut out = Vec::new();
    for (name, dir) in members {
        for (sub, kind_root) in [
            ("src", true),
            ("tests", false),
            ("examples", false),
            ("benches", false),
        ] {
            let sub_dir = dir.join(sub);
            if !sub_dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&sub_dir, &mut files)?;
            files.sort();
            for file in files {
                let rel = relative_display(root, &file);
                if cfg.exclude.iter().any(|p| rel.starts_with(p.as_str())) {
                    continue;
                }
                let kind = if !kind_root {
                    FileKind::TestCode
                } else if is_crate_root(&sub_dir, &file) {
                    FileKind::Root
                } else {
                    FileKind::Source
                };
                out.push(WorkspaceFile {
                    crate_name: name.clone(),
                    rel,
                    path: file,
                    kind,
                });
            }
        }
    }
    Ok(out)
}

/// Scans the whole workspace rooted at `root` with every enabled rule,
/// including the workspace-level D8 lockfile comparison.
pub fn scan_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut report = Report::default();
    let mut schema = SchemaReport::default();
    let check_schema = cfg.rule_enabled(Rule::SchemaLock);
    for wf in workspace_files(root, cfg)? {
        let source = fs::read_to_string(&wf.path)?;
        let (mut findings, suppressed) =
            lint_source(&source, &wf.rel, &wf.crate_name, wf.kind, cfg);
        report.findings.append(&mut findings);
        report.suppressed += suppressed;
        report.files_scanned += 1;
        if check_schema
            && wf.kind != FileKind::TestCode
            && cfg.rule_applies(Rule::SchemaLock, &wf.crate_name)
        {
            snapcheck::collect_into(&lex(&source), &wf.rel, &wf.crate_name, &mut schema);
        }
    }
    if check_schema {
        // D8 deliberately bypasses the allow machinery: the lockfile (with a
        // version bump) is the one sanctioned way to accept a schema change.
        let lock_text = fs::read_to_string(root.join(SCHEMA_LOCK_FILE)).ok();
        report.findings.append(&mut snapcheck::schema_findings(
            &schema,
            lock_text.as_deref(),
        ));
    }
    report.findings.sort_by(|a, b| {
        (&a.path, a.line, a.column, a.rule).cmp(&(&b.path, b.line, b.column, b.rule))
    });
    Ok(report)
}

/// Collects the codec fingerprints and `*VERSION*` constants of every file
/// in D8 scope — the input to [`plan_schema_update`] and the CLI's
/// `--update-schema-lock` mode.
pub fn collect_schema(root: &Path, cfg: &Config) -> io::Result<SchemaReport> {
    let mut schema = SchemaReport::default();
    for wf in workspace_files(root, cfg)? {
        if wf.kind == FileKind::TestCode || !cfg.rule_applies(Rule::SchemaLock, &wf.crate_name) {
            continue;
        }
        let source = fs::read_to_string(&wf.path)?;
        snapcheck::collect_into(&lex(&source), &wf.rel, &wf.crate_name, &mut schema);
    }
    Ok(schema)
}

fn is_crate_root(src_dir: &Path, file: &Path) -> bool {
    if file.parent() == Some(src_dir) {
        matches!(
            file.file_name().and_then(|n| n.to_str()),
            Some("lib.rs") | Some("main.rs")
        )
    } else {
        file.parent()
            .and_then(|p| p.file_name())
            .is_some_and(|n| n == "bin")
            && file.parent().and_then(|p| p.parent()) == Some(src_dir)
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // The suite package's `src/` is the workspace root's; never
            // descend into sibling member trees.
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "crates" || name == "vendor" || name == "target" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_display(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

/// Renders findings in rustc style (`error[D1/hash-order]: ...`).
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let gutter = f.line.to_string();
        let pad = " ".repeat(gutter.len());
        let _ = writeln!(
            out,
            "error[{}/{}]: {}",
            f.rule.code(),
            f.rule.name(),
            f.message
        );
        let _ = writeln!(out, "{pad}--> {}:{}:{}", f.path, f.line, f.column);
        let _ = writeln!(out, "{pad} |");
        let _ = writeln!(out, "{gutter} | {}", f.snippet);
        let _ = writeln!(
            out,
            "{pad} | {}{}",
            " ".repeat(f.column.saturating_sub(1)),
            "^".repeat(f.span.max(1))
        );
        let _ = writeln!(out, "{pad} = help: {}", f.rule.help());
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "detlint: {} finding(s), {} suppressed by justified allows, {} file(s) scanned",
        report.findings.len(),
        report.suppressed,
        report.files_scanned
    );
    out
}

/// Renders the report as deterministic machine-readable JSON.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":{},\"rule\":{},\"path\":{},\"line\":{},\"column\":{},\"message\":{},\"help\":{}}}",
            json_str(f.rule.code()),
            json_str(f.rule.name()),
            json_str(&f.path),
            f.line,
            f.column,
            json_str(&f.message),
            json_str(f.rule.help()),
        );
    }
    let _ = write!(
        out,
        "],\"files_scanned\":{},\"suppressed\":{}}}",
        report.files_scanned, report.suppressed
    );
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_cfg() -> Config {
        Config::default()
    }

    fn lint(src: &str, krate: &str, kind: FileKind) -> Vec<Finding> {
        lint_source(src, "x.rs", krate, kind, &sim_cfg()).0
    }

    #[test]
    fn comments_and_strings_never_match() {
        let src = "// HashMap in prose\nlet s = \"Instant::now\"; /* thread_rng */\n";
        assert!(lint(src, "core", FileKind::Source).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_hash_order() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(lint(src, "core", FileKind::Source).is_empty());
        let live = "use std::collections::HashMap;\n";
        assert_eq!(lint(live, "core", FileKind::Source).len(), 1);
    }

    #[test]
    fn allow_requires_justification() {
        let ok = "// detlint: allow(hash-order): drained in sorted order below\n\
                  use std::collections::HashMap;\n";
        let (findings, suppressed) = lint_source(ok, "x.rs", "core", FileKind::Source, &sim_cfg());
        assert!(findings.is_empty());
        assert_eq!(suppressed, 1);

        let bare = "use std::collections::HashMap; // detlint: allow(hash-order)\n";
        let findings = lint(bare, "core", FileKind::Source);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("missing its justification"));
    }

    #[test]
    fn expect_messages_must_state_the_invariant() {
        let bad = "fn f(o: Option<u8>) -> u8 { o.expect(\"boom\") }\n";
        assert_eq!(lint(bad, "runtime", FileKind::Source).len(), 1);
        let good = "fn f(o: Option<u8>) -> u8 { o.expect(\"invariant: always set\") }\n";
        assert!(lint(good, "runtime", FileKind::Source).is_empty());
        let wrapped = "fn f(o: Option<u8>) -> u8 {\n    o.expect(\n        \"invariant: always set\",\n    )\n}\n";
        assert!(lint(wrapped, "runtime", FileKind::Source).is_empty());
    }

    #[test]
    fn scope_limits_rules_to_configured_crates() {
        let src = "use std::collections::HashMap;\nfn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        // `bench` is neither a simulation crate nor a panic-paths crate.
        assert!(lint(src, "bench", FileKind::Source).is_empty());
        assert_eq!(lint(src, "truth", FileKind::Source).len(), 1); // D1 only
        assert_eq!(lint(src, "runtime", FileKind::Source).len(), 2); // D1 + D4
    }

    #[test]
    fn config_parser_round_trips_and_rejects_typos() {
        let cfg =
            Config::parse("[rules]\nhash-order = false\n[scope]\nsimulation = [\"a\", \"b\"]\n")
                .unwrap();
        assert!(!cfg.rule_enabled(Rule::HashOrder));
        assert_eq!(cfg.simulation, ["a", "b"]);
        assert!(Config::parse("[rules]\nhash-ordr = true\n").is_err());
        assert!(Config::parse("[nope]\n").is_err());
    }

    #[test]
    fn missing_forbid_unsafe_is_reported_on_roots_only() {
        let src = "fn main() {}\n";
        assert_eq!(lint(src, "bench", FileKind::Root).len(), 1);
        assert!(lint(src, "bench", FileKind::Source).is_empty());
        let ok = "#![forbid(unsafe_code)]\nfn main() {}\n";
        assert!(lint(ok, "bench", FileKind::Root).is_empty());
    }
}
