//! Multiclass gradient-boosted decision trees, built from scratch.
//!
//! The paper's Crowd Quality Control module trains "the state-of-art gradient
//! boosting model (XGBoost)" on worker labels plus questionnaire answers to
//! recover truthful labels. XGBoost itself is not available offline, so this
//! crate implements the same algorithm family:
//!
//! * second-order boosting with the softmax (multi-class log-loss)
//!   objective: per round one regression tree per class is fit to the
//!   gradient/hessian pairs `g = p - y`, `h = p (1 - p)`,
//! * exact greedy split finding with L2 leaf regularization (`lambda`),
//!   minimum-gain pruning (`gamma`) and minimum child hessian weight,
//! * shrinkage (`learning_rate`), row subsampling and per-tree column
//!   subsampling,
//! * gain-based feature importances.
//!
//! The datasets CQC sees are small (hundreds of rows, tens of features), so
//! exact greedy splitting is the right engineering choice — no histograms
//! needed.
//!
//! # Example
//!
//! ```
//! use crowdlearn_gbdt::{GbdtClassifier, GbdtConfig};
//!
//! // A linearly separable toy problem.
//! let rows = vec![vec![0.0], vec![0.2], vec![0.8], vec![1.0]];
//! let labels = vec![0, 0, 1, 1];
//! let model = GbdtClassifier::fit(&rows, &labels, 2, &GbdtConfig::small());
//! assert_eq!(model.predict(&[0.1]), 0);
//! assert_eq!(model.predict(&[0.9]), 1);
//! ```

//! Determinism: a simulation crate under `detlint` rules D1-D6 (DESIGN.md
//! "Determinism invariants") — BTree collections only, virtual time only,
//! seeded RNG only.
//!
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod tree;

pub use model::{GbdtClassifier, GbdtConfig};
pub use tree::{RegressionTree, SplitMode};
