//! The boosting loop: softmax objective over per-class regression trees.

use crate::tree::{RegressionTree, SplitMode, TreeParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// Hyperparameters of [`GbdtClassifier::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds (each round grows one tree per class).
    pub rounds: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage applied to every leaf.
    pub learning_rate: f64,
    /// L2 regularization on leaf weights.
    pub lambda: f64,
    /// Minimum split gain (complexity penalty).
    pub gamma: f64,
    /// Minimum hessian mass per child.
    pub min_child_weight: f64,
    /// Row-subsampling fraction per round, in `(0, 1]`.
    pub subsample: f64,
    /// Column-subsampling fraction per tree, in `(0, 1]`.
    pub colsample: f64,
    /// How candidate split thresholds are enumerated.
    pub split_mode: SplitMode,
    /// Seed for the subsampling RNG.
    pub seed: u64,
}

impl GbdtConfig {
    /// A compact configuration suited to CQC's small tabular inputs.
    pub fn small() -> Self {
        Self {
            rounds: 60,
            max_depth: 4,
            learning_rate: 0.2,
            lambda: 1.0,
            gamma: 0.0,
            // Softmax hessians are at most 0.25 per row, so a whole-unit
            // child-weight floor would forbid splits on tiny datasets.
            min_child_weight: 0.1,
            subsample: 0.9,
            colsample: 0.9,
            split_mode: SplitMode::Exact,
            seed: 17,
        }
    }

    /// A histogram-split configuration for larger tabular inputs.
    pub fn histogram(bins: usize) -> Self {
        Self {
            split_mode: SplitMode::Histogram { bins },
            ..Self::small()
        }
    }

    fn validate(&self) {
        assert!(self.rounds > 0, "need at least one boosting round");
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
        assert!(
            self.lambda >= 0.0 && self.gamma >= 0.0,
            "regularizers must be >= 0"
        );
        assert!(
            self.subsample > 0.0 && self.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );
        assert!(
            self.colsample > 0.0 && self.colsample <= 1.0,
            "colsample must be in (0, 1]"
        );
        assert!(
            self.min_child_weight >= 0.0,
            "min_child_weight must be >= 0"
        );
    }
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// A trained multiclass gradient-boosting model.
///
/// See the crate docs for the objective; use [`GbdtClassifier::fit`] to train
/// and [`GbdtClassifier::predict_proba`] / [`GbdtClassifier::predict`] for
/// inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbdtClassifier {
    /// `trees[round][class]`.
    trees: Vec<Vec<RegressionTree>>,
    /// Per-class prior log-odds (from class frequencies).
    base_scores: Vec<f64>,
    classes: usize,
    features: usize,
    learning_rate: f64,
    importance: Vec<f64>,
}

impl GbdtClassifier {
    /// Trains with early stopping: after each boosting round the model is
    /// scored on the held-out `(val_rows, val_labels)` by multiclass
    /// log-loss, and training stops once `patience` rounds pass without an
    /// improvement; the returned model is truncated to the best round.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GbdtClassifier::fit`], plus if
    /// the validation set is empty/ragged or `patience == 0`.
    pub fn fit_with_validation(
        rows: &[Vec<f64>],
        labels: &[usize],
        val_rows: &[Vec<f64>],
        val_labels: &[usize],
        classes: usize,
        config: &GbdtConfig,
        patience: usize,
    ) -> Self {
        assert!(patience > 0, "patience must be positive");
        assert!(
            !val_rows.is_empty() && val_rows.len() == val_labels.len(),
            "validation set must be non-empty and consistent"
        );
        let mut model = Self::fit(rows, labels, classes, config);

        // Score the validation set incrementally, one round at a time.
        let mut scores: Vec<Vec<f64>> = vec![model.base_scores.clone(); val_rows.len()];
        let mut best_loss = f64::INFINITY;
        let mut best_round = 0usize;
        for round in 0..model.trees.len() {
            for (score, row) in scores.iter_mut().zip(val_rows) {
                for (class, tree) in model.trees[round].iter().enumerate() {
                    score[class] += model.learning_rate * tree.predict(row);
                }
            }
            let loss = log_loss_of_scores(&scores, val_labels);
            if loss < best_loss - 1e-9 {
                best_loss = loss;
                best_round = round + 1;
            } else if round + 1 - best_round >= patience {
                break;
            }
        }
        model.trees.truncate(best_round.max(1));
        model
    }

    /// Multiclass log-loss of this model on a labeled set (lower is better).
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or inconsistent.
    pub fn log_loss(&self, rows: &[Vec<f64>], labels: &[usize]) -> f64 {
        assert!(
            !rows.is_empty() && rows.len() == labels.len(),
            "bad eval set"
        );
        let scores: Vec<Vec<f64>> = rows.iter().map(|r| self.decision_scores(r)).collect();
        log_loss_of_scores(&scores, labels)
    }

    /// Trains a model on dense rows.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or ragged, a label is `>= classes`, a
    /// feature is NaN, or the configuration is invalid.
    pub fn fit(rows: &[Vec<f64>], labels: &[usize], classes: usize, config: &GbdtConfig) -> Self {
        config.validate();
        assert!(!rows.is_empty(), "training set must be non-empty");
        assert_eq!(rows.len(), labels.len(), "one label per row");
        assert!(classes >= 2, "need at least two classes");
        let n_features = rows[0].len();
        assert!(n_features > 0, "rows must have at least one feature");
        for row in rows {
            assert_eq!(row.len(), n_features, "ragged feature rows");
            assert!(row.iter().all(|v| v.is_finite()), "features must be finite");
        }
        assert!(
            labels.iter().all(|&l| l < classes),
            "labels must be < classes"
        );

        let n = rows.len();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Prior log-odds from class frequencies (Laplace smoothed).
        let mut counts = vec![1.0f64; classes];
        for &l in labels {
            counts[l] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        let base_scores: Vec<f64> = counts.iter().map(|c| (c / total).ln()).collect();

        // Raw scores per (row, class).
        let mut scores: Vec<Vec<f64>> = vec![base_scores.clone(); n];

        let params = TreeParams {
            max_depth: config.max_depth,
            lambda: config.lambda,
            gamma: config.gamma,
            min_child_weight: config.min_child_weight,
            split_mode: config.split_mode,
        };

        let mut trees = Vec::with_capacity(config.rounds);
        let mut importance = vec![0.0; n_features];
        let all_rows: Vec<usize> = (0..n).collect();
        let all_cols: Vec<usize> = (0..n_features).collect();

        for _ in 0..config.rounds {
            // Row subsample for this round.
            let rows_used: Vec<usize> = if config.subsample < 1.0 {
                let take = ((n as f64 * config.subsample).round() as usize).clamp(1, n);
                let mut shuffled = all_rows.clone();
                shuffled.shuffle(&mut rng);
                shuffled.truncate(take);
                shuffled
            } else {
                all_rows.clone()
            };

            // Softmax probabilities for the current scores.
            let probs: Vec<Vec<f64>> = scores.iter().map(|s| softmax(s)).collect();

            let mut round_trees = Vec::with_capacity(classes);
            for class in 0..classes {
                let grad: Vec<f64> = (0..n)
                    .map(|i| probs[i][class] - if labels[i] == class { 1.0 } else { 0.0 })
                    .collect();
                let hess: Vec<f64> = (0..n)
                    .map(|i| (probs[i][class] * (1.0 - probs[i][class])).max(1e-6))
                    .collect();

                let cols_used: Vec<usize> = if config.colsample < 1.0 {
                    let take = ((n_features as f64 * config.colsample).round() as usize)
                        .clamp(1, n_features);
                    let mut shuffled = all_cols.clone();
                    shuffled.shuffle(&mut rng);
                    shuffled.truncate(take);
                    shuffled
                } else {
                    all_cols.clone()
                };

                let tree = RegressionTree::fit(rows, &grad, &hess, &rows_used, &cols_used, &params);
                tree.accumulate_importance(&mut importance);
                // Update scores for all rows (not just the subsample).
                for (i, row) in rows.iter().enumerate() {
                    scores[i][class] += config.learning_rate * tree.predict(row);
                }
                round_trees.push(tree);
            }
            trees.push(round_trees);
        }

        Self {
            trees,
            base_scores,
            classes,
            features: n_features,
            learning_rate: config.learning_rate,
            importance,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of input features the model expects.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Boosting rounds actually trained.
    pub fn rounds(&self) -> usize {
        self.trees.len()
    }

    /// Raw (pre-softmax) scores for one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.features()`.
    pub fn decision_scores(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.features, "feature arity mismatch");
        let mut scores = self.base_scores.clone();
        for round in &self.trees {
            for (class, tree) in round.iter().enumerate() {
                scores[class] += self.learning_rate * tree.predict(row);
            }
        }
        scores
    }

    /// Class-probability vector (softmax of the decision scores).
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        softmax(&self.decision_scores(row))
    }

    /// The most probable class.
    pub fn predict(&self, row: &[f64]) -> usize {
        let probs = self.predict_proba(row);
        probs
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite probabilities"))
            .map(|(i, _)| i)
            .expect("at least two classes")
    }

    /// Accuracy over a labeled evaluation set.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or mismatched.
    pub fn accuracy(&self, rows: &[Vec<f64>], labels: &[usize]) -> f64 {
        assert!(
            !rows.is_empty() && rows.len() == labels.len(),
            "bad eval set"
        );
        let correct = rows
            .iter()
            .zip(labels)
            .filter(|(row, &l)| self.predict(row) == l)
            .count();
        correct as f64 / rows.len() as f64
    }

    /// Total split gain accumulated per feature (unnormalized importances).
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }
}

// ---------------------------------------------------------------------------
// Snapshot codecs (`serde::binary`): decoding re-checks the constructor
// invariants and reports `Invalid` instead of panicking.

impl Encode for GbdtConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rounds.encode(out);
        self.max_depth.encode(out);
        self.learning_rate.encode(out);
        self.lambda.encode(out);
        self.gamma.encode(out);
        self.min_child_weight.encode(out);
        self.subsample.encode(out);
        self.colsample.encode(out);
        self.split_mode.encode(out);
        self.seed.encode(out);
    }
}

impl Decode for GbdtConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let config = Self {
            rounds: usize::decode(r)?,
            max_depth: usize::decode(r)?,
            learning_rate: f64::decode(r)?,
            lambda: f64::decode(r)?,
            gamma: f64::decode(r)?,
            min_child_weight: f64::decode(r)?,
            subsample: f64::decode(r)?,
            colsample: f64::decode(r)?,
            split_mode: SplitMode::decode(r)?,
            seed: u64::decode(r)?,
        };
        let valid = config.rounds > 0
            && config.learning_rate.is_finite()
            && config.learning_rate > 0.0
            && config.lambda.is_finite()
            && config.lambda >= 0.0
            && config.gamma.is_finite()
            && config.gamma >= 0.0
            && config.min_child_weight.is_finite()
            && config.min_child_weight >= 0.0
            && config.subsample > 0.0
            && config.subsample <= 1.0
            && config.colsample > 0.0
            && config.colsample <= 1.0;
        if !valid {
            return Err(DecodeError::Invalid);
        }
        Ok(config)
    }
}

impl Encode for GbdtClassifier {
    fn encode(&self, out: &mut Vec<u8>) {
        self.trees.encode(out);
        self.base_scores.encode(out);
        self.classes.encode(out);
        self.features.encode(out);
        self.learning_rate.encode(out);
        self.importance.encode(out);
    }
}

impl Decode for GbdtClassifier {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let trees = Vec::<Vec<RegressionTree>>::decode(r)?;
        let base_scores = Vec::<f64>::decode(r)?;
        let classes = usize::decode(r)?;
        let features = usize::decode(r)?;
        let learning_rate = f64::decode(r)?;
        let importance = Vec::<f64>::decode(r)?;
        let valid = classes >= 2
            && features > 0
            && base_scores.len() == classes
            && importance.len() == features
            && learning_rate.is_finite()
            && trees.iter().all(|round| round.len() == classes);
        if !valid {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            trees,
            base_scores,
            classes,
            features,
            learning_rate,
            importance,
        })
    }
}

fn log_loss_of_scores(scores: &[Vec<f64>], labels: &[usize]) -> f64 {
    let mut total = 0.0;
    for (score, &label) in scores.iter().zip(labels) {
        let probs = softmax(score);
        total -= probs[label].max(1e-12).ln();
    }
    total / scores.len() as f64
}

fn softmax(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three Gaussian-ish blobs on a line, deterministic construction.
    fn blobs(n_per_class: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for i in 0..n_per_class {
                let jitter = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
                rows.push(vec![c as f64 * 3.0 + jitter, (i % 7) as f64 / 7.0]);
                labels.push(c);
            }
        }
        (rows, labels)
    }

    #[test]
    fn learns_separable_blobs_perfectly() {
        let (rows, labels) = blobs(30);
        let model = GbdtClassifier::fit(&rows, &labels, 3, &GbdtConfig::small());
        assert_eq!(model.accuracy(&rows, &labels), 1.0);
    }

    #[test]
    fn probabilities_are_normalized() {
        let (rows, labels) = blobs(10);
        let model = GbdtClassifier::fit(&rows, &labels, 3, &GbdtConfig::small());
        for row in &rows {
            let p = model.predict_proba(row);
            assert_eq!(p.len(), 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|x| (0.0..=1.0).contains(x)));
        }
    }

    #[test]
    fn more_rounds_do_not_hurt_training_fit() {
        let (rows, labels) = blobs(20);
        let short = GbdtClassifier::fit(
            &rows,
            &labels,
            3,
            &GbdtConfig {
                rounds: 2,
                ..GbdtConfig::small()
            },
        );
        let long = GbdtClassifier::fit(
            &rows,
            &labels,
            3,
            &GbdtConfig {
                rounds: 40,
                ..GbdtConfig::small()
            },
        );
        assert!(long.accuracy(&rows, &labels) >= short.accuracy(&rows, &labels));
    }

    #[test]
    fn learns_xor() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let a = (i / 20) as f64;
            let b = ((i / 10) % 2) as f64;
            let noise = (i % 10) as f64 * 0.01;
            rows.push(vec![a + noise, b - noise]);
            labels.push((a as usize) ^ (b as usize));
        }
        let model = GbdtClassifier::fit(&rows, &labels, 2, &GbdtConfig::small());
        assert!(model.accuracy(&rows, &labels) > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, labels) = blobs(15);
        let a = GbdtClassifier::fit(&rows, &labels, 3, &GbdtConfig::small());
        let b = GbdtClassifier::fit(&rows, &labels, 3, &GbdtConfig::small());
        assert_eq!(a, b);
    }

    #[test]
    fn base_scores_reflect_class_imbalance() {
        // 90% class 0 with uninformative features: model should predict 0.
        let rows: Vec<Vec<f64>> = (0..100).map(|_| vec![0.5]).collect();
        let mut labels = vec![0usize; 90];
        labels.extend(vec![1usize; 10]);
        let model = GbdtClassifier::fit(&rows, &labels, 2, &GbdtConfig::small());
        assert_eq!(model.predict(&[0.5]), 0);
        let p = model.predict_proba(&[0.5]);
        assert!(p[0] > 0.7, "prior must dominate: {p:?}");
    }

    #[test]
    fn feature_importance_identifies_signal_feature() {
        let (rows, labels) = blobs(30);
        let model = GbdtClassifier::fit(&rows, &labels, 3, &GbdtConfig::small());
        let imp = model.feature_importance();
        assert!(imp[0] > imp[1], "importances {imp:?}");
    }

    #[test]
    fn generalizes_to_held_out_points() {
        let (rows, labels) = blobs(40);
        let (train_r, test_r): (Vec<_>, Vec<_>) = rows
            .iter()
            .cloned()
            .enumerate()
            .partition(|(i, _)| i % 4 != 0);
        let (train_l, test_l): (Vec<_>, Vec<_>) = labels
            .iter()
            .copied()
            .enumerate()
            .partition(|(i, _)| i % 4 != 0);
        let train_rows: Vec<Vec<f64>> = train_r.into_iter().map(|(_, r)| r).collect();
        let train_labels: Vec<usize> = train_l.into_iter().map(|(_, l)| l).collect();
        let test_rows: Vec<Vec<f64>> = test_r.into_iter().map(|(_, r)| r).collect();
        let test_labels: Vec<usize> = test_l.into_iter().map(|(_, l)| l).collect();
        let model = GbdtClassifier::fit(&train_rows, &train_labels, 3, &GbdtConfig::small());
        assert!(model.accuracy(&test_rows, &test_labels) > 0.9);
    }

    #[test]
    fn histogram_mode_matches_exact_accuracy_on_blobs() {
        let (rows, labels) = blobs(40);
        let exact = GbdtClassifier::fit(&rows, &labels, 3, &GbdtConfig::small());
        let hist = GbdtClassifier::fit(&rows, &labels, 3, &GbdtConfig::histogram(32));
        let acc_exact = exact.accuracy(&rows, &labels);
        let acc_hist = hist.accuracy(&rows, &labels);
        assert!(
            acc_hist >= acc_exact - 0.05,
            "histogram {acc_hist} must track exact {acc_exact}"
        );
    }

    #[test]
    fn early_stopping_truncates_on_noise() {
        // Random labels: beyond a few rounds the model only memorizes, so
        // validation loss stops improving and early stopping must kick in
        // well before the configured 80 rounds.
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![((i * 37) % 97) as f64, ((i * 61) % 89) as f64])
            .collect();
        let labels: Vec<usize> = (0..120).map(|i| (i * 7 + i / 13) % 3).collect();
        let (train_r, val_r) = rows.split_at(80);
        let (train_l, val_l) = labels.split_at(80);
        let config = GbdtConfig {
            rounds: 80,
            ..GbdtConfig::small()
        };
        let model =
            GbdtClassifier::fit_with_validation(train_r, train_l, val_r, val_l, 3, &config, 5);
        assert!(model.rounds() < 80, "stopped at {} rounds", model.rounds());
        // And the truncated model's validation loss must be no worse than
        // the fully boosted one.
        let full = GbdtClassifier::fit(train_r, train_l, 3, &config);
        assert!(model.log_loss(val_r, val_l) <= full.log_loss(val_r, val_l) + 1e-9);
    }

    #[test]
    fn early_stopping_keeps_training_on_clean_data() {
        let (rows, labels) = blobs(40);
        let (train_r, val_r) = rows.split_at(90);
        let (train_l, val_l) = labels.split_at(90);
        let config = GbdtConfig {
            rounds: 30,
            ..GbdtConfig::small()
        };
        let model =
            GbdtClassifier::fit_with_validation(train_r, train_l, val_r, val_l, 3, &config, 10);
        assert!(model.accuracy(val_r, val_l) > 0.9);
    }

    #[test]
    fn log_loss_orders_models_sensibly() {
        let (rows, labels) = blobs(20);
        let short = GbdtClassifier::fit(
            &rows,
            &labels,
            3,
            &GbdtConfig {
                rounds: 1,
                ..GbdtConfig::small()
            },
        );
        let long = GbdtClassifier::fit(
            &rows,
            &labels,
            3,
            &GbdtConfig {
                rounds: 40,
                ..GbdtConfig::small()
            },
        );
        assert!(long.log_loss(&rows, &labels) < short.log_loss(&rows, &labels));
    }

    #[test]
    fn cloned_models_predict_identically() {
        let (rows, labels) = blobs(15);
        let model = GbdtClassifier::fit(&rows, &labels, 3, &GbdtConfig::small());
        let clone = model.clone();
        assert_eq!(model, clone);
        for row in &rows {
            assert_eq!(model.predict_proba(row), clone.predict_proba(row));
        }
    }

    #[test]
    fn snapshot_codec_round_trips_a_trained_model() {
        let (rows, labels) = blobs(15);
        let model = GbdtClassifier::fit(&rows, &labels, 3, &GbdtConfig::small());
        let restored = GbdtClassifier::from_bytes(&model.to_bytes()).expect("round trip");
        assert_eq!(model, restored);
        let config = GbdtConfig::histogram(32);
        assert_eq!(GbdtConfig::from_bytes(&config.to_bytes()), Ok(config));
    }

    #[test]
    #[should_panic(expected = "patience must be positive")]
    fn zero_patience_rejected() {
        let (rows, labels) = blobs(5);
        GbdtClassifier::fit_with_validation(
            &rows,
            &labels,
            &rows,
            &labels,
            3,
            &GbdtConfig::small(),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "labels must be < classes")]
    fn rejects_out_of_range_labels() {
        GbdtClassifier::fit(&[vec![0.0]], &[5], 3, &GbdtConfig::small());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        GbdtClassifier::fit(
            &[vec![0.0], vec![0.0, 1.0]],
            &[0, 1],
            2,
            &GbdtConfig::small(),
        );
    }

    #[test]
    #[should_panic(expected = "feature arity mismatch")]
    fn rejects_wrong_arity_at_predict() {
        let (rows, labels) = blobs(5);
        let model = GbdtClassifier::fit(&rows, &labels, 3, &GbdtConfig::small());
        model.predict(&[1.0, 2.0, 3.0]);
    }
}
