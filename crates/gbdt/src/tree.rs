//! Regression trees on gradient/hessian pairs (the XGBoost tree booster).

use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// How candidate split thresholds are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SplitMode {
    /// Sort each feature and consider every boundary between distinct
    /// values — optimal, `O(n log n)` per feature per node. The right choice
    /// for CQC-sized data.
    #[default]
    Exact,
    /// Bucket each feature into equal-width bins over the node's value range
    /// and consider only bin edges — `O(n)` per feature per node, the
    /// standard approximation for larger datasets (LightGBM/XGBoost `hist`).
    Histogram {
        /// Number of buckets per feature (at least 2).
        bins: usize,
    },
}

/// Parameters a single tree needs from the boosting configuration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TreeParams {
    pub max_depth: usize,
    pub lambda: f64,
    pub gamma: f64,
    pub min_child_weight: f64,
    pub split_mode: SplitMode,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Gain of this split (used for feature importance).
        gain: f64,
        left: usize,
        right: usize,
    },
}

/// A depth-limited regression tree fit to `(gradient, hessian)` targets with
/// XGBoost-style structure scores.
///
/// Leaf weight: `-G / (H + lambda)`. Split gain:
/// `1/2 [ G_L^2/(H_L+λ) + G_R^2/(H_R+λ) - G^2/(H+λ) ] - γ`.
/// Splits are taken only when the gain is positive and both children carry
/// at least `min_child_weight` hessian mass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree on the given rows.
    ///
    /// `rows` indexes into `features`/`grad`/`hess`; `columns` restricts the
    /// candidate split features (column subsampling).
    pub(crate) fn fit(
        features: &[Vec<f64>],
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        columns: &[usize],
        params: &TreeParams,
    ) -> Self {
        assert!(!rows.is_empty(), "tree needs at least one row");
        let mut tree = Self { nodes: Vec::new() };
        tree.build(features, grad, hess, rows, columns, params, 0);
        tree
    }

    /// Recursively builds the subtree over `rows`, returning its node index.
    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        features: &[Vec<f64>],
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        columns: &[usize],
        params: &TreeParams,
        depth: usize,
    ) -> usize {
        let g_sum: f64 = rows.iter().map(|&r| grad[r]).sum();
        let h_sum: f64 = rows.iter().map(|&r| hess[r]).sum();

        let make_leaf = |tree: &mut Self| {
            let weight = -g_sum / (h_sum + params.lambda);
            tree.nodes.push(Node::Leaf { weight });
            tree.nodes.len() - 1
        };

        if depth >= params.max_depth || rows.len() < 2 {
            return make_leaf(self);
        }

        let parent_score = g_sum * g_sum / (h_sum + params.lambda);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)

        let consider =
            |f: usize, threshold: f64, gl: f64, hl: f64, best: &mut Option<(usize, f64, f64)>| {
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    return;
                }
                let gain = 0.5
                    * (gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda)
                        - parent_score)
                    - params.gamma;
                if gain > 0.0 && best.is_none_or(|(_, _, bg)| gain > bg) {
                    *best = Some((f, threshold, gain));
                }
            };

        for &f in columns {
            match params.split_mode {
                SplitMode::Exact => {
                    let mut order: Vec<usize> = rows.to_vec();
                    order.sort_by(|&a, &b| {
                        features[a][f]
                            .partial_cmp(&features[b][f])
                            .expect("finite features")
                    });
                    let mut gl = 0.0;
                    let mut hl = 0.0;
                    for w in order.windows(2) {
                        gl += grad[w[0]];
                        hl += hess[w[0]];
                        let (va, vb) = (features[w[0]][f], features[w[1]][f]);
                        if va == vb {
                            continue; // cannot split between equal values
                        }
                        consider(f, 0.5 * (va + vb), gl, hl, &mut best);
                    }
                }
                SplitMode::Histogram { bins } => {
                    let bins = bins.max(2);
                    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                    for &r in rows {
                        lo = lo.min(features[r][f]);
                        hi = hi.max(features[r][f]);
                    }
                    if (hi - lo).abs() < f64::EPSILON {
                        continue; // constant feature at this node
                    }
                    let width = (hi - lo) / bins as f64;
                    let mut g_bins = vec![0.0f64; bins];
                    let mut h_bins = vec![0.0f64; bins];
                    for &r in rows {
                        let b = (((features[r][f] - lo) / width) as usize).min(bins - 1);
                        g_bins[b] += grad[r];
                        h_bins[b] += hess[r];
                    }
                    let mut gl = 0.0;
                    let mut hl = 0.0;
                    for b in 0..bins - 1 {
                        gl += g_bins[b];
                        hl += h_bins[b];
                        let threshold = lo + width * (b + 1) as f64;
                        consider(f, threshold, gl, hl, &mut best);
                    }
                }
            }
        }

        let Some((feature, threshold, gain)) = best else {
            return make_leaf(self);
        };

        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
            .iter()
            .partition(|&&r| features[r][feature] < threshold);
        if left_rows.is_empty() || right_rows.is_empty() {
            // Possible under histogram splitting when a bin edge separates
            // no samples (e.g. empty leading bins): fall back to a leaf.
            return make_leaf(self);
        }

        // Reserve this node's slot before recursing so child indices are
        // stable.
        let index = self.nodes.len();
        self.nodes.push(Node::Leaf { weight: 0.0 });
        let left = self.build(features, grad, hess, &left_rows, columns, params, depth + 1);
        let right = self.build(
            features,
            grad,
            hess,
            &right_rows,
            columns,
            params,
            depth + 1,
        );
        self.nodes[index] = Node::Split {
            feature,
            threshold,
            gain,
            left,
            right,
        };
        index
    }

    /// The tree's raw prediction for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than a feature index used by the tree.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Total number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Accumulates each split's gain into `importance[feature]`.
    pub(crate) fn accumulate_importance(&self, importance: &mut [f64]) {
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                importance[*feature] += gain;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot codecs (`serde::binary`).

impl Encode for SplitMode {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SplitMode::Exact => 0u8.encode(out),
            SplitMode::Histogram { bins } => {
                1u8.encode(out);
                bins.encode(out);
            }
        }
    }
}

impl Decode for SplitMode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(SplitMode::Exact),
            1 => Ok(SplitMode::Histogram {
                bins: usize::decode(r)?,
            }),
            _ => Err(DecodeError::Invalid),
        }
    }
}

impl Encode for Node {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Node::Leaf { weight } => {
                0u8.encode(out);
                weight.encode(out);
            }
            Node::Split {
                feature,
                threshold,
                gain,
                left,
                right,
            } => {
                1u8.encode(out);
                feature.encode(out);
                threshold.encode(out);
                gain.encode(out);
                left.encode(out);
                right.encode(out);
            }
        }
    }
}

impl Decode for Node {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Node::Leaf {
                weight: f64::decode(r)?,
            }),
            1 => Ok(Node::Split {
                feature: usize::decode(r)?,
                threshold: f64::decode(r)?,
                gain: f64::decode(r)?,
                left: usize::decode(r)?,
                right: usize::decode(r)?,
            }),
            _ => Err(DecodeError::Invalid),
        }
    }
}

impl Encode for RegressionTree {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nodes.encode(out);
    }
}

impl Decode for RegressionTree {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let nodes = Vec::<Node>::decode(r)?;
        if nodes.is_empty() {
            return Err(DecodeError::Invalid);
        }
        // `build` reserves a parent's slot before recursing, so children
        // always carry strictly larger indices; enforcing that here makes
        // `predict` provably terminating on decoded trees.
        for (idx, node) in nodes.iter().enumerate() {
            if let Node::Split { left, right, .. } = node {
                let valid =
                    *left > idx && *right > idx && *left < nodes.len() && *right < nodes.len();
                if !valid {
                    return Err(DecodeError::Invalid);
                }
            }
        }
        Ok(Self { nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PARAMS: TreeParams = TreeParams {
        max_depth: 4,
        lambda: 1.0,
        gamma: 0.0,
        min_child_weight: 1e-6,
        split_mode: SplitMode::Exact,
    };

    /// Squared-error fitting reduces to grad = pred - target with hess = 1
    /// when starting from a zero prediction: grad = -target.
    fn fit_regression(
        features: &[Vec<f64>],
        targets: &[f64],
        params: &TreeParams,
    ) -> RegressionTree {
        let grad: Vec<f64> = targets.iter().map(|t| -t).collect();
        let hess = vec![1.0; targets.len()];
        let rows: Vec<usize> = (0..targets.len()).collect();
        let cols: Vec<usize> = (0..features[0].len()).collect();
        RegressionTree::fit(features, &grad, &hess, &rows, &cols, params)
    }

    #[test]
    fn fits_a_step_function() {
        let features: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..10).map(|i| if i < 5 { -1.0 } else { 1.0 }).collect();
        let tree = fit_regression(&features, &targets, &PARAMS);
        assert!(tree.predict(&[2.0]) < 0.0);
        assert!(tree.predict(&[8.0]) > 0.0);
    }

    #[test]
    fn constant_targets_produce_single_leaf() {
        let features: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let targets = vec![2.0; 6];
        let tree = fit_regression(&features, &targets, &PARAMS);
        assert_eq!(tree.leaf_count(), 1);
        // Leaf weight shrunk by lambda: -(-12)/(6+1).
        assert!((tree.predict(&[3.0]) - 12.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_is_a_stump_root() {
        let features: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let targets = vec![-1.0, -1.0, 1.0, 1.0];
        let params = TreeParams {
            max_depth: 0,
            ..PARAMS
        };
        let tree = fit_regression(&features, &targets, &params);
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn gamma_prunes_weak_splits() {
        let features: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        // Almost-constant targets: the best split's gain is tiny.
        let targets = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.05];
        let strict = TreeParams {
            gamma: 10.0,
            ..PARAMS
        };
        let tree = fit_regression(&features, &targets, &strict);
        assert_eq!(tree.leaf_count(), 1, "high gamma must prune everything");
    }

    #[test]
    fn pure_xor_defeats_a_single_greedy_tree() {
        // Known property of greedy gain splitting: on perfectly balanced XOR
        // every first-level split has exactly zero gain, so the tree cannot
        // grow. (The *boosted* model handles noisy XOR — see the model
        // tests — because subsampling and residual fitting break the tie.)
        let features = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let targets = vec![-1.0, 1.0, 1.0, -1.0];
        let tree = fit_regression(&features, &targets, &PARAMS);
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn xor_with_a_tilt_splits_to_depth_two() {
        // Break the gain tie with a slight class imbalance and the greedy
        // tree recovers the XOR structure.
        let features = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.1, 0.9],
        ];
        let targets = vec![-1.0, 1.0, 1.0, -1.0, 1.0];
        let tree = fit_regression(&features, &targets, &PARAMS);
        assert!(tree.predict(&[0.0, 0.0]) < 0.0);
        assert!(tree.predict(&[0.0, 1.0]) > 0.0);
        assert!(tree.predict(&[1.0, 0.0]) > 0.0);
        assert!(tree.predict(&[1.0, 1.0]) < 0.0);
    }

    #[test]
    fn tied_feature_values_never_split_apart() {
        let features = vec![vec![1.0], vec![1.0], vec![1.0]];
        let targets = vec![-1.0, 0.0, 1.0];
        let tree = fit_regression(&features, &targets, &PARAMS);
        assert_eq!(tree.leaf_count(), 1, "identical features cannot be split");
    }

    #[test]
    fn column_restriction_is_respected() {
        // Feature 0 is perfectly informative, feature 1 is noise; restrict
        // to feature 1 and verify feature 0 is never used.
        let features = vec![
            vec![0.0, 0.3],
            vec![0.0, 0.9],
            vec![1.0, 0.1],
            vec![1.0, 0.8],
        ];
        let grad = vec![1.0, 1.0, -1.0, -1.0];
        let hess = vec![1.0; 4];
        let tree = RegressionTree::fit(&features, &grad, &hess, &[0, 1, 2, 3], &[1], &PARAMS);
        let mut importance = vec![0.0; 2];
        tree.accumulate_importance(&mut importance);
        assert_eq!(importance[0], 0.0, "feature 0 was excluded");
    }

    #[test]
    fn histogram_splitting_matches_exact_on_a_step_function() {
        let features: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..40).map(|i| if i < 20 { -1.0 } else { 1.0 }).collect();
        let hist_params = TreeParams {
            split_mode: SplitMode::Histogram { bins: 8 },
            ..PARAMS
        };
        let exact = fit_regression(&features, &targets, &PARAMS);
        let hist = fit_regression(&features, &targets, &hist_params);
        for x in [3.0, 12.0, 27.0, 38.0] {
            assert_eq!(
                exact.predict(&[x]).signum(),
                hist.predict(&[x]).signum(),
                "disagreement at {x}"
            );
        }
    }

    #[test]
    fn histogram_with_few_bins_still_produces_a_valid_tree() {
        let features: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 7) as f64, i as f64]).collect();
        let targets: Vec<f64> = (0..30)
            .map(|i| if i % 7 < 3 { -1.0 } else { 1.0 })
            .collect();
        let params = TreeParams {
            split_mode: SplitMode::Histogram { bins: 2 },
            ..PARAMS
        };
        let tree = fit_regression(&features, &targets, &params);
        assert!(tree.leaf_count() >= 1);
        assert!(tree.predict(&[1.0, 0.0]).is_finite());
    }

    #[test]
    fn histogram_handles_constant_features() {
        let features = vec![vec![5.0], vec![5.0], vec![5.0], vec![5.0]];
        let targets = vec![-1.0, 1.0, -1.0, 1.0];
        let params = TreeParams {
            split_mode: SplitMode::Histogram { bins: 16 },
            ..PARAMS
        };
        let tree = fit_regression(&features, &targets, &params);
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn importance_prefers_the_informative_feature() {
        let features: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i % 3) as f64 * 0.01])
            .collect();
        let targets: Vec<f64> = (0..20).map(|i| if i < 10 { -1.0 } else { 1.0 }).collect();
        let tree = fit_regression(&features, &targets, &PARAMS);
        let mut importance = vec![0.0; 2];
        tree.accumulate_importance(&mut importance);
        assert!(importance[0] > importance[1]);
    }
}
