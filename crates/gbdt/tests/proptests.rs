//! Property-based tests on the gradient-boosting model.

use crowdlearn_gbdt::{GbdtClassifier, GbdtConfig, SplitMode};
use proptest::prelude::*;

/// A random but learnable dataset: labels depend on feature 0's sign with
/// some per-case noise features appended.
fn learnable(rows: usize, noise_features: usize, jitter: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut features = Vec::with_capacity(rows);
    let mut labels = Vec::with_capacity(rows);
    for i in 0..rows {
        let x = (i as f64 / rows as f64) * 2.0 - 1.0;
        let mut row = vec![x];
        for j in 0..noise_features {
            row.push((((i as u64 + jitter) * 2654435761 + j as u64 * 97) % 1000) as f64 / 1000.0);
        }
        features.push(row);
        labels.push(usize::from(x >= 0.0));
    }
    (features, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Probabilities are always a valid distribution, for any trained model
    /// and any in-range query point.
    #[test]
    fn predictions_are_distributions(
        rows in 10usize..80,
        noise_features in 0usize..4,
        jitter in 0u64..1000,
        query in -2.0f64..2.0,
    ) {
        let (features, labels) = learnable(rows, noise_features, jitter);
        let model = GbdtClassifier::fit(
            &features,
            &labels,
            2,
            &GbdtConfig { rounds: 10, ..GbdtConfig::small() },
        );
        let mut point = vec![query];
        point.extend(std::iter::repeat_n(0.5, noise_features));
        let probs = model.predict_proba(&point);
        prop_assert_eq!(probs.len(), 2);
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    /// Training accuracy on a cleanly separable problem is always high, in
    /// both split modes.
    #[test]
    fn separable_problems_are_learned(
        rows in 20usize..100,
        jitter in 0u64..1000,
        bins in 4usize..64,
    ) {
        let (features, labels) = learnable(rows, 1, jitter);
        for mode in [SplitMode::Exact, SplitMode::Histogram { bins }] {
            let model = GbdtClassifier::fit(
                &features,
                &labels,
                2,
                &GbdtConfig { rounds: 20, split_mode: mode, ..GbdtConfig::small() },
            );
            prop_assert!(
                model.accuracy(&features, &labels) > 0.9,
                "{mode:?} failed to learn"
            );
        }
    }

    /// Fitting is deterministic in the config seed.
    #[test]
    fn fit_is_deterministic(jitter in 0u64..1000, seed in 0u64..1000) {
        let (features, labels) = learnable(40, 2, jitter);
        let config = GbdtConfig { seed, rounds: 8, ..GbdtConfig::small() };
        let a = GbdtClassifier::fit(&features, &labels, 2, &config);
        let b = GbdtClassifier::fit(&features, &labels, 2, &config);
        prop_assert_eq!(a, b);
    }

    /// Feature importances are non-negative and the informative feature
    /// dominates once there is enough data.
    #[test]
    fn importances_are_sane(jitter in 0u64..1000) {
        let (features, labels) = learnable(80, 2, jitter);
        let model = GbdtClassifier::fit(&features, &labels, 2, &GbdtConfig::small());
        let imp = model.feature_importance();
        prop_assert!(imp.iter().all(|i| *i >= 0.0));
        prop_assert!(imp[0] >= imp[1] && imp[0] >= imp[2], "importances {imp:?}");
    }
}
