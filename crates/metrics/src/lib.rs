//! Evaluation metrics for the CrowdLearn reproduction.
//!
//! This crate implements every measurement primitive the paper's evaluation
//! (Section V) relies on:
//!
//! * [`ConfusionMatrix`] with accuracy and macro-averaged precision, recall
//!   and F1 — the headline numbers of Table II and Figures 9/10.
//! * [`RocCurve`] / [`macro_average_roc`] — the macro-average one-vs-rest
//!   ROC curves of Figure 7, with trapezoidal AUC.
//! * [`wilcoxon_signed_rank`] — the Wilcoxon signed-rank test the paper uses
//!   in Section IV-B to show that adjacent incentive levels do *not* produce
//!   significantly different label quality (Figure 6).
//! * [`SummaryStats`] — streaming mean/variance/percentile summaries used for
//!   every delay measurement (Table III, Figures 5, 8, 11).
//! * [`QuantileSketch`] — a deterministic fixed-grid streaming quantile
//!   estimator (O(1) memory in the trace length) for live metric taps that
//!   cannot afford to retain raw samples.
//! * [`brier_score`] / [`CalibrationReport`] — probabilistic-forecast
//!   quality (Brier, reliability diagrams, ECE) for the schemes'
//!   class-probability outputs.
//! * [`bootstrap_ci`] / [`bootstrap_paired_diff_ci`] — percentile-bootstrap
//!   confidence intervals to separate real scheme differences from
//!   run-to-run noise.
//! * [`mcnemar_test`] — paired-classifier significance on shared test items
//!   (the right test for Table II-style accuracy-gap claims).
//!
//! # Example
//!
//! ```
//! use crowdlearn_metrics::ConfusionMatrix;
//!
//! let mut cm = ConfusionMatrix::new(3);
//! for (truth, pred) in [(0, 0), (1, 1), (2, 2), (2, 1), (0, 0)] {
//!     cm.record(truth, pred);
//! }
//! assert_eq!(cm.total(), 5);
//! assert!((cm.accuracy() - 0.8).abs() < 1e-12);
//! assert!(cm.macro_f1() > 0.0);
//! ```

//! Determinism: `detlint`-checked (DESIGN.md "Determinism invariants") —
//! metric folds must not depend on any nondeterministic iteration order.
//!
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bootstrap;
mod confusion;
mod mcnemar;
mod probabilistic;
mod roc;
mod sketch;
mod stats;
mod wilcoxon;

pub use bootstrap::{bootstrap_ci, bootstrap_paired_diff_ci, ConfidenceInterval};
pub use confusion::{ClassReport, ConfusionMatrix};
pub use mcnemar::{mcnemar_test, McNemarOutcome};
pub use probabilistic::{brier_score, CalibrationBin, CalibrationReport};
pub use roc::{macro_average_roc, pooled_roc, RocCurve, RocPoint};
pub use sketch::{QuantileSketch, SketchGridMismatch};
pub use stats::SummaryStats;
pub use wilcoxon::{wilcoxon_signed_rank, WilcoxonOutcome};
