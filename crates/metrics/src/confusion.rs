//! Multi-class confusion matrices and the macro-averaged classification
//! scores reported throughout the paper (Accuracy, Precision, Recall, F1 in
//! Table II are "macro-averaged since the dataset has balanced class labels").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-class precision/recall/F1 report extracted from a [`ConfusionMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// Index of the class this report describes.
    pub class: usize,
    /// Precision: `tp / (tp + fp)`; `0.0` when the class was never predicted.
    pub precision: f64,
    /// Recall: `tp / (tp + fn)`; `0.0` when the class never occurred.
    pub recall: f64,
    /// Harmonic mean of precision and recall; `0.0` when both are zero.
    pub f1: f64,
    /// Number of ground-truth instances of this class (`tp + fn`).
    pub support: usize,
}

/// A `K x K` confusion matrix over class indices `0..K`.
///
/// Rows index the ground truth, columns index the prediction. Counts are
/// accumulated with [`ConfusionMatrix::record`]; all scores are derived views
/// and can be queried at any point.
///
/// # Example
///
/// ```
/// use crowdlearn_metrics::ConfusionMatrix;
///
/// let cm = ConfusionMatrix::from_pairs(3, [(0usize, 0usize), (1, 2), (2, 2)]);
/// assert_eq!(cm.count(1, 2), 1);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    // Row-major: counts[truth * classes + pred].
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty confusion matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "a confusion matrix needs at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Builds a matrix directly from `(truth, prediction)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or any index is out of range.
    pub fn from_pairs<I>(classes: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut cm = Self::new(classes);
        for (truth, pred) in pairs {
            cm.record(truth, pred);
        }
        cm
    }

    /// Number of classes `K`.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one observation with ground-truth class `truth` and predicted
    /// class `pred`.
    ///
    /// # Panics
    ///
    /// Panics if `truth` or `pred` is `>= K`.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.classes, "truth class {truth} out of range");
        assert!(pred < self.classes, "predicted class {pred} out of range");
        self.counts[truth * self.classes + pred] += 1;
    }

    /// Merges another matrix of the same shape into this one.
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(
            self.classes, other.classes,
            "cannot merge confusion matrices of different sizes"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Count of observations with ground truth `truth` predicted as `pred`.
    pub fn count(&self, truth: usize, pred: usize) -> u64 {
        self.counts[truth * self.classes + pred]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of observations on the diagonal. Returns `0.0` when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Number of ground-truth instances of `class`.
    pub fn support(&self, class: usize) -> u64 {
        (0..self.classes).map(|p| self.count(class, p)).sum()
    }

    /// Number of times `class` was predicted.
    pub fn predicted(&self, class: usize) -> u64 {
        (0..self.classes).map(|t| self.count(t, class)).sum()
    }

    /// Per-class precision/recall/F1 report.
    pub fn class_report(&self, class: usize) -> ClassReport {
        let tp = self.count(class, class) as f64;
        let predicted = self.predicted(class) as f64;
        let support = self.support(class);
        let precision = if predicted > 0.0 { tp / predicted } else { 0.0 };
        let recall = if support > 0 {
            tp / support as f64
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        ClassReport {
            class,
            precision,
            recall,
            f1,
            support: support as usize,
        }
    }

    /// Reports for every class, in class-index order.
    pub fn class_reports(&self) -> Vec<ClassReport> {
        (0..self.classes).map(|c| self.class_report(c)).collect()
    }

    /// Unweighted mean of per-class precisions (macro averaging).
    pub fn macro_precision(&self) -> f64 {
        self.macro_mean(|r| r.precision)
    }

    /// Unweighted mean of per-class recalls (macro averaging).
    pub fn macro_recall(&self) -> f64 {
        self.macro_mean(|r| r.recall)
    }

    /// Unweighted mean of per-class F1 scores (macro averaging).
    ///
    /// This is the F1 definition used for Table II: macro-averaged because
    /// the dataset is class-balanced.
    pub fn macro_f1(&self) -> f64 {
        self.macro_mean(|r| r.f1)
    }

    /// Micro-averaged precision. With single-label multi-class data this
    /// equals [`ConfusionMatrix::accuracy`]; exposed for completeness.
    pub fn micro_precision(&self) -> f64 {
        self.accuracy()
    }

    fn macro_mean(&self, score: impl Fn(&ClassReport) -> f64) -> f64 {
        let reports = self.class_reports();
        if reports.is_empty() {
            return 0.0;
        }
        reports.iter().map(score).sum::<f64>() / reports.len() as f64
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "truth\\pred")?;
        for t in 0..self.classes {
            for p in 0..self.classes {
                write!(f, "{:>8}", self.count(t, p))?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "accuracy={:.4} macro_p={:.4} macro_r={:.4} macro_f1={:.4}",
            self.accuracy(),
            self.macro_precision(),
            self.macro_recall(),
            self.macro_f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_has_zero_scores() {
        let cm = ConfusionMatrix::new(3);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.macro_f1(), 0.0);
    }

    #[test]
    fn perfect_predictions_score_one() {
        let cm = ConfusionMatrix::from_pairs(3, (0..3).map(|c| (c, c)));
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_precision(), 1.0);
        assert_eq!(cm.macro_recall(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn always_wrong_scores_zero() {
        let cm = ConfusionMatrix::from_pairs(2, [(0, 1), (1, 0)]);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.macro_f1(), 0.0);
    }

    #[test]
    fn matches_hand_computed_binary_scores() {
        // tp=3 fp=1 fn=2 tn=4 for class 1.
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..3 {
            cm.record(1, 1);
        }
        cm.record(0, 1);
        for _ in 0..2 {
            cm.record(1, 0);
        }
        for _ in 0..4 {
            cm.record(0, 0);
        }
        let r = cm.class_report(1);
        assert!((r.precision - 0.75).abs() < 1e-12);
        assert!((r.recall - 0.6).abs() < 1e-12);
        let expected_f1 = 2.0 * 0.75 * 0.6 / (0.75 + 0.6);
        assert!((r.f1 - expected_f1).abs() < 1e-12);
        assert_eq!(r.support, 5);
    }

    #[test]
    fn never_predicted_class_has_zero_precision_without_nan() {
        let cm = ConfusionMatrix::from_pairs(3, [(0, 0), (1, 0), (2, 0)]);
        let r = cm.class_report(2);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.f1, 0.0);
        assert!(cm.macro_f1().is_finite());
    }

    #[test]
    fn merge_adds_counts() {
        let a = ConfusionMatrix::from_pairs(2, [(0, 0), (1, 1)]);
        let mut b = ConfusionMatrix::from_pairs(2, [(0, 1)]);
        b.merge(&a);
        assert_eq!(b.total(), 3);
        assert_eq!(b.count(0, 0), 1);
        assert_eq!(b.count(0, 1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_rejects_out_of_range() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let cm = ConfusionMatrix::new(2);
        assert!(!format!("{cm}").is_empty());
        assert!(!format!("{cm:?}").is_empty());
    }

    #[test]
    fn micro_precision_equals_accuracy() {
        let cm = ConfusionMatrix::from_pairs(3, [(0, 0), (1, 2), (2, 2), (0, 1)]);
        assert_eq!(cm.micro_precision(), cm.accuracy());
    }
}
