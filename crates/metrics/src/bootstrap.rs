//! Bootstrap confidence intervals for the evaluation's scalar comparisons
//! (e.g. "is CrowdLearn's delay reduction real or run-to-run noise?").

use serde::{Deserialize, Serialize};

/// A percentile-bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Nominal confidence level (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether the interval excludes `value` — e.g. pass `0.0` to check
    /// whether a paired difference is distinguishable from zero.
    pub fn excludes(&self, value: f64) -> bool {
        value < self.lower || value > self.upper
    }
}

/// Percentile bootstrap over a generic statistic of a sample.
///
/// Deterministic in `seed` (SplitMix64 resampling, no external RNG crate
/// needed at this layer).
///
/// # Example
///
/// ```
/// use crowdlearn_metrics::bootstrap_ci;
///
/// let delays = [300.0, 310.0, 295.0, 305.0, 320.0, 290.0, 315.0, 298.0];
/// let ci = bootstrap_ci(&delays, 0.95, 2000, 7, |xs| {
///     xs.iter().sum::<f64>() / xs.len() as f64
/// });
/// assert!(ci.lower <= ci.point && ci.point <= ci.upper);
/// assert!(ci.excludes(0.0));
/// ```
///
/// # Panics
///
/// Panics if `samples` is empty, `level` is outside `(0, 1)`, or
/// `resamples == 0`.
pub fn bootstrap_ci<F>(
    samples: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
    statistic: F,
) -> ConfidenceInterval
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!samples.is_empty(), "need at least one sample");
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "level must be in (0, 1)"
    );
    assert!(resamples > 0, "need at least one resample");

    let point = statistic(samples);
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next_index = |n: usize| -> usize {
        state = splitmix64(state);
        (state % n as u64) as usize
    };

    let mut stats = Vec::with_capacity(resamples);
    let mut buffer = vec![0.0; samples.len()];
    for _ in 0..resamples {
        for slot in buffer.iter_mut() {
            *slot = samples[next_index(samples.len())];
        }
        let s = statistic(&buffer);
        assert!(!s.is_nan(), "statistic must not produce NaN");
        stats.push(s);
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("no NaN statistics"));

    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((alpha * resamples as f64) as usize).min(resamples - 1);
    let hi_idx = (((1.0 - alpha) * resamples as f64) as usize).min(resamples - 1);
    ConfidenceInterval {
        point,
        lower: stats[lo_idx],
        upper: stats[hi_idx],
        level,
    }
}

/// Bootstrap CI for the difference of means between paired samples
/// (`a[i] - b[i]`) — the right tool for same-seed scheme comparisons.
///
/// # Panics
///
/// Panics under the same conditions as [`bootstrap_ci`], or if the slices
/// have different lengths.
pub fn bootstrap_paired_diff_ci(
    a: &[f64],
    b: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> ConfidenceInterval {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    bootstrap_ci(&diffs, level, resamples, seed, |xs| {
        xs.iter().sum::<f64>() / xs.len() as f64
    })
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn interval_brackets_the_point_estimate() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ci = bootstrap_ci(&xs, 0.95, 1000, 3, mean);
        assert!(ci.lower <= ci.point && ci.point <= ci.upper);
        assert!((ci.point - 24.5).abs() < 1e-12);
    }

    #[test]
    fn tight_data_gives_tight_intervals() {
        let tight = vec![10.0; 40];
        let ci = bootstrap_ci(&tight, 0.95, 500, 1, mean);
        assert!((ci.upper - ci.lower).abs() < 1e-12);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let xs: Vec<f64> = (0..60).map(|i| (i % 13) as f64).collect();
        let narrow = bootstrap_ci(&xs, 0.80, 2000, 5, mean);
        let wide = bootstrap_ci(&xs, 0.99, 2000, 5, mean);
        assert!(wide.upper - wide.lower >= narrow.upper - narrow.lower);
    }

    #[test]
    fn deterministic_in_seed() {
        let xs: Vec<f64> = (0..30).map(|i| (i * 7 % 11) as f64).collect();
        let a = bootstrap_ci(&xs, 0.95, 500, 9, mean);
        let b = bootstrap_ci(&xs, 0.95, 500, 9, mean);
        assert_eq!(a, b);
    }

    #[test]
    fn paired_diff_detects_a_real_gap() {
        let a: Vec<f64> = (0..40).map(|i| 100.0 + (i % 7) as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| 90.0 + (i % 5) as f64).collect();
        let ci = bootstrap_paired_diff_ci(&a, &b, 0.95, 2000, 2);
        assert!(ci.excludes(0.0), "gap of ~8 must be detected: {ci:?}");
        assert!(ci.point > 0.0);
    }

    #[test]
    fn paired_diff_accepts_no_gap() {
        let a: Vec<f64> = (0..40).map(|i| (i % 9) as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| ((i + 4) % 9) as f64).collect();
        let ci = bootstrap_paired_diff_ci(&a, &b, 0.95, 2000, 2);
        assert!(!ci.excludes(0.0), "no systematic gap: {ci:?}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        bootstrap_ci(&[], 0.95, 100, 0, mean);
    }
}
