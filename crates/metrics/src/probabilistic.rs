//! Probabilistic-forecast quality: Brier score and expected calibration
//! error for the schemes' class-probability outputs.
//!
//! The paper evaluates with threshold metrics (accuracy/PRF/ROC); these
//! complement them by scoring the *probabilities* the committee, ensemble
//! and CQC produce — useful for diagnosing over- and under-confidence in
//! the simulated experts and in MIC's weighted mixtures.

use serde::{Deserialize, Serialize};

/// Multi-class Brier score: the mean squared distance between the predicted
/// probability vector and the one-hot truth. `0` is perfect; `(K-1)/K` is
/// the score of the uniform forecast; `2` is the worst possible.
///
/// # Example
///
/// ```
/// use crowdlearn_metrics::brier_score;
///
/// let perfect = brier_score(&[vec![1.0, 0.0, 0.0]], &[0]);
/// assert!(perfect.abs() < 1e-12);
/// let uniform = brier_score(&[vec![1.0 / 3.0; 3]], &[0]);
/// assert!((uniform - 2.0 / 3.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if inputs are empty/mismatched or a truth index is out of range.
pub fn brier_score(scores: &[Vec<f64>], truths: &[usize]) -> f64 {
    assert!(!scores.is_empty(), "need at least one forecast");
    assert_eq!(scores.len(), truths.len(), "scores/truths length mismatch");
    let mut total = 0.0;
    for (probs, &truth) in scores.iter().zip(truths) {
        assert!(truth < probs.len(), "truth label out of range");
        for (c, &p) in probs.iter().enumerate() {
            let target = f64::from(u8::from(c == truth));
            total += (p - target) * (p - target);
        }
    }
    total / scores.len() as f64
}

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationBin {
    /// Lower edge of the confidence bin.
    pub lower: f64,
    /// Upper edge of the confidence bin.
    pub upper: f64,
    /// Mean predicted confidence of samples in the bin.
    pub mean_confidence: f64,
    /// Empirical accuracy of samples in the bin.
    pub accuracy: f64,
    /// Number of samples in the bin.
    pub count: usize,
}

/// Reliability diagram + expected calibration error for top-label
/// confidences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    bins: Vec<CalibrationBin>,
    ece: f64,
}

impl CalibrationReport {
    /// Builds the report from per-sample class probabilities and truths,
    /// using `bins` equal-width confidence bins over the top-label
    /// confidence.
    ///
    /// ECE is the count-weighted mean absolute gap between each bin's
    /// confidence and its accuracy — the standard definition.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty/mismatched, `bins == 0`, or a truth index
    /// is out of range.
    pub fn from_scores(scores: &[Vec<f64>], truths: &[usize], bins: usize) -> Self {
        assert!(!scores.is_empty(), "need at least one forecast");
        assert_eq!(scores.len(), truths.len(), "scores/truths length mismatch");
        assert!(bins > 0, "need at least one bin");

        let mut conf_sum = vec![0.0f64; bins];
        let mut acc_sum = vec![0.0f64; bins];
        let mut counts = vec![0usize; bins];
        for (probs, &truth) in scores.iter().zip(truths) {
            assert!(truth < probs.len(), "truth label out of range");
            let (argmax, confidence) = probs.iter().copied().enumerate().fold(
                (0, f64::NEG_INFINITY),
                |(bi, bv), (i, v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                },
            );
            let bin = ((confidence * bins as f64) as usize).min(bins - 1);
            conf_sum[bin] += confidence;
            acc_sum[bin] += f64::from(u8::from(argmax == truth));
            counts[bin] += 1;
        }

        let n = scores.len() as f64;
        let mut ece = 0.0;
        let mut out = Vec::with_capacity(bins);
        for b in 0..bins {
            let count = counts[b];
            let (mean_confidence, accuracy) = if count > 0 {
                (conf_sum[b] / count as f64, acc_sum[b] / count as f64)
            } else {
                (0.0, 0.0)
            };
            ece += (count as f64 / n) * (mean_confidence - accuracy).abs();
            out.push(CalibrationBin {
                lower: b as f64 / bins as f64,
                upper: (b + 1) as f64 / bins as f64,
                mean_confidence,
                accuracy,
                count,
            });
        }
        Self { bins: out, ece }
    }

    /// Expected calibration error in `[0, 1]` (0 = perfectly calibrated).
    pub fn ece(&self) -> f64 {
        self.ece
    }

    /// The reliability-diagram bins, lowest confidence first.
    pub fn bins(&self) -> &[CalibrationBin] {
        &self.bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot(c: usize) -> Vec<f64> {
        let mut v = vec![0.0; 3];
        v[c] = 1.0;
        v
    }

    #[test]
    fn brier_rewards_sharp_correct_forecasts() {
        let sharp = brier_score(&[one_hot(1)], &[1]);
        let hedged = brier_score(&[vec![0.2, 0.6, 0.2]], &[1]);
        let wrong = brier_score(&[one_hot(0)], &[1]);
        assert!(sharp < hedged);
        assert!(hedged < wrong);
        assert!((wrong - 2.0).abs() < 1e-12);
    }

    #[test]
    fn brier_is_mean_over_samples() {
        let a = brier_score(&[one_hot(0), one_hot(1)], &[0, 0]);
        let perfect = brier_score(&[one_hot(0)], &[0]);
        let worst = brier_score(&[one_hot(1)], &[0]);
        assert!((a - 0.5 * (perfect + worst)).abs() < 1e-12);
    }

    #[test]
    fn perfectly_calibrated_forecasts_have_zero_ece() {
        // 10 samples at confidence 0.8 with exactly 8 correct.
        let mut scores = Vec::new();
        let mut truths = Vec::new();
        for i in 0..10 {
            scores.push(vec![0.8, 0.1, 0.1]);
            truths.push(if i < 8 { 0 } else { 1 });
        }
        let report = CalibrationReport::from_scores(&scores, &truths, 10);
        assert!(report.ece() < 1e-9, "ece {}", report.ece());
    }

    #[test]
    fn overconfident_forecasts_have_positive_ece() {
        // Confidence 0.9 but only half right.
        let mut scores = Vec::new();
        let mut truths = Vec::new();
        for i in 0..20 {
            scores.push(vec![0.9, 0.05, 0.05]);
            truths.push(usize::from(i % 2 == 0)); // half the time truth = 1
        }
        let report = CalibrationReport::from_scores(&scores, &truths, 10);
        assert!((report.ece() - 0.4).abs() < 1e-9, "ece {}", report.ece());
    }

    #[test]
    fn bins_partition_the_samples() {
        let scores = vec![
            vec![0.35, 0.33, 0.32],
            vec![0.55, 0.25, 0.20],
            vec![0.95, 0.03, 0.02],
        ];
        let truths = vec![0, 1, 0];
        let report = CalibrationReport::from_scores(&scores, &truths, 5);
        let total: usize = report.bins().iter().map(|b| b.count).sum();
        assert_eq!(total, 3);
        assert_eq!(report.bins().len(), 5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn brier_rejects_mismatch() {
        brier_score(&[one_hot(0)], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn calibration_rejects_zero_bins() {
        CalibrationReport::from_scores(&[vec![1.0, 0.0]], &[0], 0);
    }
}
