//! McNemar's test for comparing two classifiers on the same test items —
//! the right significance test for Table II-style paired accuracy claims.

use serde::{Deserialize, Serialize};

/// Outcome of McNemar's test on paired correctness indicators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McNemarOutcome {
    /// Items classifier A got right and B got wrong.
    pub a_only: u64,
    /// Items classifier B got right and A got wrong.
    pub b_only: u64,
    /// Two-sided p-value (exact binomial for small discordant counts,
    /// continuity-corrected chi-square otherwise).
    pub p_value: f64,
}

impl McNemarOutcome {
    /// Whether the accuracy difference is significant at `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }

    /// Number of discordant items (the test's effective sample size).
    pub fn discordant(&self) -> u64 {
        self.a_only + self.b_only
    }
}

/// McNemar's test over per-item correctness of two classifiers.
///
/// `a_correct[i]` / `b_correct[i]` state whether classifier A / B classified
/// item `i` correctly. Only discordant items inform the test. With 25 or
/// fewer discordant items the exact two-sided binomial test is used;
/// otherwise the continuity-corrected chi-square approximation.
///
/// # Example
///
/// ```
/// use crowdlearn_metrics::mcnemar_test;
///
/// // A fixes 12 of B's errors and introduces only 2: significant.
/// let a: Vec<bool> = (0..100).map(|i| i >= 2).collect();
/// let b: Vec<bool> = (0..100).map(|i| !(2..14).contains(&i) && i >= 2 || i < 2).collect();
/// let out = mcnemar_test(&a, &b);
/// assert!(out.significant(0.05));
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mcnemar_test(a_correct: &[bool], b_correct: &[bool]) -> McNemarOutcome {
    assert!(!a_correct.is_empty(), "need at least one item");
    assert_eq!(
        a_correct.len(),
        b_correct.len(),
        "paired samples must have equal length"
    );
    let mut a_only = 0u64;
    let mut b_only = 0u64;
    for (&a, &b) in a_correct.iter().zip(b_correct) {
        match (a, b) {
            (true, false) => a_only += 1,
            (false, true) => b_only += 1,
            _ => {}
        }
    }
    let n = a_only + b_only;
    let p_value = if n == 0 {
        1.0
    } else if n <= 25 {
        exact_binomial_two_sided(a_only.min(b_only), n)
    } else {
        // Chi-square with continuity correction, 1 degree of freedom.
        let diff = (a_only as f64 - b_only as f64).abs() - 1.0;
        let chi2 = (diff.max(0.0)).powi(2) / n as f64;
        chi_square_1df_sf(chi2)
    };
    McNemarOutcome {
        a_only,
        b_only,
        p_value: p_value.clamp(0.0, 1.0),
    }
}

/// Two-sided exact binomial p-value: `2 * P(X <= k)` for `X ~ Bin(n, 1/2)`,
/// capped at 1.
fn exact_binomial_two_sided(k: u64, n: u64) -> f64 {
    let mut cdf = 0.0f64;
    for i in 0..=k {
        cdf += binomial_pmf_half(i, n);
    }
    (2.0 * cdf).min(1.0)
}

fn binomial_pmf_half(k: u64, n: u64) -> f64 {
    // C(n, k) / 2^n computed in log space for stability.
    let mut log_c = 0.0f64;
    for i in 0..k {
        log_c += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    (log_c - n as f64 * std::f64::consts::LN_2).exp()
}

/// Survival function of the chi-square distribution with one degree of
/// freedom: `P(X >= x) = erfc(sqrt(x / 2))`.
fn chi_square_1df_sf(x: f64) -> f64 {
    erfc((x / 2.0).sqrt())
}

fn erfc(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26 (|err| < 1.5e-7), non-negative inputs here.
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_classifiers_are_not_significant() {
        let a = vec![true, false, true, true, false];
        let out = mcnemar_test(&a, &a);
        assert_eq!(out.discordant(), 0);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    fn one_sided_dominance_is_significant() {
        // A corrects 10 items, B corrects none A missed.
        let mut a = vec![true; 50];
        let mut b = vec![true; 50];
        for flag in &mut b[..10] {
            *flag = false;
        }
        a[49] = false;
        b[49] = false;
        let out = mcnemar_test(&a, &b);
        assert_eq!(out.a_only, 10);
        assert_eq!(out.b_only, 0);
        assert!(out.significant(0.05), "p = {}", out.p_value);
    }

    #[test]
    fn balanced_disagreement_is_not_significant() {
        let mut a = vec![true; 40];
        let mut b = vec![true; 40];
        for i in 0..6 {
            b[i] = false; // A-only wins
            a[20 + i] = false; // B-only wins
        }
        let out = mcnemar_test(&a, &b);
        assert_eq!(out.a_only, out.b_only);
        assert!(out.p_value > 0.5, "p = {}", out.p_value);
    }

    #[test]
    fn exact_small_sample_matches_hand_computation() {
        // 5 discordant, all favoring A: p = 2 * (1/2)^5 = 0.0625.
        let a = vec![true; 10];
        let mut b = vec![true; 10];
        for flag in &mut b[..5] {
            *flag = false;
        }
        let out = mcnemar_test(&a, &b);
        assert!((out.p_value - 0.0625).abs() < 1e-9, "p = {}", out.p_value);
        assert!(!out.significant(0.05));
    }

    #[test]
    fn large_sample_uses_chi_square_sensibly() {
        // 40 vs 10 discordant: clearly significant.
        let n = 200;
        let mut a = vec![true; n];
        let mut b = vec![true; n];
        for flag in &mut b[..40] {
            *flag = false;
        }
        for flag in &mut a[50..60] {
            *flag = false;
        }
        let out = mcnemar_test(&a, &b);
        assert!(out.significant(0.01), "p = {}", out.p_value);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 20;
        let total: f64 = (0..=n).map(|k| binomial_pmf_half(k, n)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        mcnemar_test(&[true], &[true, false]);
    }
}
