//! Wilcoxon signed-rank test for paired samples.
//!
//! Section IV-B of the paper uses this test to show the label quality of
//! adjacent incentive levels is not significantly different (p = 0.12, 0.45,
//! 0.77, 0.25 between 2→4, 4→6, 6→8 and 8→10 cents). The pilot-study bench
//! (`fig6_pilot_quality`) reruns exactly this analysis on the simulated
//! platform.

use serde::{Deserialize, Serialize};

/// Result of a two-sided Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WilcoxonOutcome {
    /// Sum of ranks of positive differences (`W+`).
    pub w_plus: f64,
    /// Sum of ranks of negative differences (`W-`).
    pub w_minus: f64,
    /// Number of non-zero paired differences actually ranked.
    pub n_effective: usize,
    /// Two-sided p-value from the normal approximation with tie correction.
    pub p_value: f64,
    /// Standardized test statistic `z`.
    pub z: f64,
}

impl WilcoxonOutcome {
    /// Whether the difference is significant at the given level (the paper
    /// uses `alpha = 0.05`).
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// Two-sided Wilcoxon signed-rank test on paired samples `a[i]` vs `b[i]`.
///
/// Zero differences are dropped (Wilcoxon's original treatment); tied
/// absolute differences receive average ranks, and the normal-approximation
/// variance includes the standard tie correction. With fewer than 5 effective
/// pairs the test cannot reject anything at conventional levels, so the
/// p-value is reported as `1.0`.
///
/// # Example
///
/// ```
/// use crowdlearn_metrics::wilcoxon_signed_rank;
///
/// let a = [0.81, 0.78, 0.83, 0.80, 0.79, 0.82];
/// let b = [0.80, 0.79, 0.82, 0.81, 0.80, 0.81];
/// let out = wilcoxon_signed_rank(&a, &b);
/// assert!(!out.significant(0.05));
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths or contain NaN.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> WilcoxonOutcome {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    assert!(
        a.iter().chain(b.iter()).all(|x| !x.is_nan()),
        "samples must not contain NaN"
    );

    // Non-zero differences with their magnitudes.
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n < 5 {
        let (w_plus, w_minus) = small_sample_ranks(&diffs);
        return WilcoxonOutcome {
            w_plus,
            w_minus,
            n_effective: n,
            p_value: 1.0,
            z: 0.0,
        };
    }

    // Rank |d| ascending with average ranks for ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        diffs[i]
            .abs()
            .partial_cmp(&diffs[j].abs())
            .expect("no NaN differences")
    });
    let mut ranks = vec![0.0; n];
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && diffs[order[j]].abs() == diffs[order[i]].abs() {
            j += 1;
        }
        let avg_rank = (i + 1 + j) as f64 / 2.0; // average of ranks i+1..=j
        for &idx in &order[i..j] {
            ranks[idx] = avg_rank;
        }
        let t = (j - i) as f64;
        tie_correction += t * t * t - t;
        i = j;
    }

    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let w_minus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d < 0.0)
        .map(|(_, r)| r)
        .sum();

    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    let w = w_plus.min(w_minus);
    let z = if var > 0.0 {
        // Continuity correction of 0.5 toward the mean.
        let num = w - mean;
        let corrected = if num.abs() <= 0.5 {
            0.0
        } else {
            num.abs() - 0.5
        };
        -(corrected / var.sqrt())
    } else {
        0.0
    };
    // Two-sided p from standard normal.
    let p_value = (2.0 * standard_normal_cdf(z)).clamp(0.0, 1.0);

    WilcoxonOutcome {
        w_plus,
        w_minus,
        n_effective: n,
        p_value,
        z,
    }
}

fn small_sample_ranks(diffs: &[f64]) -> (f64, f64) {
    let n = diffs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        diffs[i]
            .abs()
            .partial_cmp(&diffs[j].abs())
            .expect("no NaN differences")
    });
    let mut w_plus = 0.0;
    let mut w_minus = 0.0;
    for (rank0, &idx) in order.iter().enumerate() {
        let rank = (rank0 + 1) as f64;
        if diffs[idx] > 0.0 {
            w_plus += rank;
        } else {
            w_minus += rank;
        }
    }
    (w_plus, w_minus)
}

/// CDF of the standard normal distribution via the complementary error
/// function (Abramowitz & Stegun 7.1.26 rational approximation, |err| < 1.5e-7).
fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let result = poly * (-x * x).exp();
    if sign_negative {
        2.0 - result
    } else {
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let out = wilcoxon_signed_rank(&a, &a);
        assert_eq!(out.n_effective, 0);
        assert_eq!(out.p_value, 1.0);
        assert!(!out.significant(0.05));
    }

    #[test]
    fn clearly_shifted_samples_are_significant() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64 + 10.0).collect();
        let out = wilcoxon_signed_rank(&a, &b);
        assert!(out.significant(0.05), "p = {}", out.p_value);
        assert_eq!(out.w_plus, 0.0);
    }

    #[test]
    fn symmetric_noise_is_not_significant() {
        // Alternating +1/-1 differences: W+ == W-.
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..20)
            .map(|i| i as f64 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let out = wilcoxon_signed_rank(&a, &b);
        assert_eq!(out.w_plus, out.w_minus);
        assert!(out.p_value > 0.9);
    }

    #[test]
    fn rank_sums_total_n_n_plus_one_over_two() {
        let a = [5.0, 3.0, 8.0, 1.0, 9.0, 2.0, 7.0];
        let b = [4.0, 6.0, 2.0, 3.0, 5.0, 9.0, 1.0];
        let out = wilcoxon_signed_rank(&a, &b);
        let n = out.n_effective as f64;
        assert!((out.w_plus + out.w_minus - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn small_samples_never_reject() {
        let out = wilcoxon_signed_rank(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    fn textbook_example_matches_known_statistic() {
        // Classic example (e.g. from Siegel): differences with known W.
        let a = [
            125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0,
        ];
        let b = [
            110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0, 135.0, 145.0,
        ];
        let out = wilcoxon_signed_rank(&a, &b);
        // One zero difference dropped -> 9 effective pairs.
        assert_eq!(out.n_effective, 9);
        let n = 9.0f64;
        assert!((out.w_plus + out.w_minus - n * (n + 1.0) / 2.0).abs() < 1e-9);
        assert!(out.p_value > 0.05, "this example is not significant");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_length_mismatch() {
        wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }
}
