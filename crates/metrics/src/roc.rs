//! One-vs-rest ROC curves and AUC, including the macro-averaging used for
//! Figure 7 of the paper ("Macro-average ROC Curves for All Schemes").

use serde::{Deserialize, Serialize};

/// One operating point on a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate at this threshold.
    pub tpr: f64,
    /// Score threshold that produces this point (`>= threshold` is positive).
    pub threshold: f64,
}

/// A receiver-operating-characteristic curve with its trapezoidal AUC.
///
/// Build one from binary data with [`RocCurve::from_binary_scores`], or get a
/// multi-class macro-average via [`macro_average_roc`].
///
/// # Example
///
/// ```
/// use crowdlearn_metrics::RocCurve;
///
/// // A perfectly separating score.
/// let roc = RocCurve::from_binary_scores(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]);
/// assert!((roc.auc() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
    auc: f64,
}

impl RocCurve {
    /// Computes the ROC curve for binary labels given per-sample scores
    /// (higher score means "more positive").
    ///
    /// Ties in scores are handled by grouping: tied samples move the
    /// operating point together, which makes AUC equal to the
    /// Mann-Whitney U statistic with the standard 0.5 tie credit.
    ///
    /// Degenerate inputs (no positives or no negatives) return a two-point
    /// curve with AUC 0.5 so downstream macro-averaging stays finite.
    ///
    /// # Panics
    ///
    /// Panics if `scores` and `positives` have different lengths, or if any
    /// score is NaN.
    pub fn from_binary_scores(scores: &[f64], positives: &[bool]) -> Self {
        assert_eq!(
            scores.len(),
            positives.len(),
            "scores and labels must be the same length"
        );
        assert!(
            scores.iter().all(|s| !s.is_nan()),
            "ROC scores must not be NaN"
        );
        let pos_total = positives.iter().filter(|&&p| p).count() as f64;
        let neg_total = positives.len() as f64 - pos_total;
        if pos_total == 0.0 || neg_total == 0.0 {
            return Self {
                points: vec![
                    RocPoint {
                        fpr: 0.0,
                        tpr: 0.0,
                        threshold: f64::INFINITY,
                    },
                    RocPoint {
                        fpr: 1.0,
                        tpr: 1.0,
                        threshold: f64::NEG_INFINITY,
                    },
                ],
                auc: 0.5,
            };
        }

        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("no NaN scores"));

        let mut points = vec![RocPoint {
            fpr: 0.0,
            tpr: 0.0,
            threshold: f64::INFINITY,
        }];
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut i = 0;
        while i < order.len() {
            let threshold = scores[order[i]];
            // Consume the whole tie group at this threshold.
            while i < order.len() && scores[order[i]] == threshold {
                if positives[order[i]] {
                    tp += 1.0;
                } else {
                    fp += 1.0;
                }
                i += 1;
            }
            points.push(RocPoint {
                fpr: fp / neg_total,
                tpr: tp / pos_total,
                threshold,
            });
        }

        let auc = trapezoid_area(&points);
        Self { points, auc }
    }

    /// The operating points, ordered from (0,0) to (1,1).
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve (trapezoidal rule), in `[0, 1]`.
    pub fn auc(&self) -> f64 {
        self.auc
    }

    /// Interpolated true-positive rate at a given false-positive rate.
    ///
    /// Used to macro-average curves defined on different threshold grids.
    ///
    /// # Panics
    ///
    /// Panics if `fpr` is outside `[0, 1]`.
    pub fn tpr_at(&self, fpr: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fpr), "fpr must be within [0, 1]");
        let pts = &self.points;
        if fpr < pts[0].fpr {
            return pts[0].tpr;
        }
        // TPR is non-decreasing along the curve, so the upper envelope at a
        // vertical run is simply the last point reached at or before `fpr`.
        let mut best = pts[0].tpr;
        for w in pts.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b.fpr <= fpr {
                best = best.max(b.tpr);
            } else if a.fpr <= fpr {
                // Strictly inside a non-vertical segment: interpolate.
                let t = (fpr - a.fpr) / (b.fpr - a.fpr);
                best = best.max(a.tpr + t * (b.tpr - a.tpr));
                break;
            } else {
                break;
            }
        }
        best
    }
}

fn trapezoid_area(points: &[RocPoint]) -> f64 {
    points
        .windows(2)
        .map(|w| (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0)
        .sum()
}

/// Macro-averaged one-vs-rest ROC curve over `K` classes (Figure 7).
///
/// `scores[i]` is the predicted probability distribution for sample `i` and
/// `truths[i]` its ground-truth class. For each class a binary one-vs-rest
/// curve is computed; the macro curve interpolates all per-class curves on a
/// shared FPR grid and averages their TPRs, which is the standard
/// "macro-average ROC" construction.
///
/// Returns the macro curve; per-class curves are available via [`pooled_roc`]
/// composition if needed.
///
/// # Panics
///
/// Panics if inputs are empty, lengths mismatch, or any truth index is out of
/// range for its score vector.
pub fn macro_average_roc(scores: &[Vec<f64>], truths: &[usize], classes: usize) -> RocCurve {
    assert!(!scores.is_empty(), "need at least one sample");
    assert_eq!(scores.len(), truths.len(), "scores/truths length mismatch");
    assert!(classes > 0, "need at least one class");
    for (s, &t) in scores.iter().zip(truths) {
        assert_eq!(s.len(), classes, "every score vector must have K entries");
        assert!(t < classes, "truth label out of range");
    }

    let per_class: Vec<RocCurve> = (0..classes)
        .map(|c| {
            let class_scores: Vec<f64> = scores.iter().map(|s| s[c]).collect();
            let labels: Vec<bool> = truths.iter().map(|&t| t == c).collect();
            RocCurve::from_binary_scores(&class_scores, &labels)
        })
        .collect();

    // Shared FPR grid: union of all per-class FPR breakpoints.
    let mut grid: Vec<f64> = per_class
        .iter()
        .flat_map(|c| c.points().iter().map(|p| p.fpr))
        .collect();
    grid.push(0.0);
    grid.push(1.0);
    grid.sort_by(|a, b| a.partial_cmp(b).expect("fpr is finite"));
    grid.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let points: Vec<RocPoint> = grid
        .iter()
        .map(|&fpr| {
            let tpr = per_class.iter().map(|c| c.tpr_at(fpr)).sum::<f64>() / classes as f64;
            RocPoint {
                fpr,
                tpr,
                threshold: f64::NAN,
            }
        })
        .collect();
    let auc = trapezoid_area(&points);
    RocCurve { points, auc }
}

/// Pooled (micro) one-vs-rest ROC: every (sample, class) pair becomes one
/// binary decision. A useful companion diagnostic to [`macro_average_roc`].
///
/// # Panics
///
/// Panics under the same conditions as [`macro_average_roc`].
pub fn pooled_roc(scores: &[Vec<f64>], truths: &[usize], classes: usize) -> RocCurve {
    assert!(!scores.is_empty(), "need at least one sample");
    assert_eq!(scores.len(), truths.len(), "scores/truths length mismatch");
    let mut flat_scores = Vec::with_capacity(scores.len() * classes);
    let mut flat_labels = Vec::with_capacity(scores.len() * classes);
    for (s, &t) in scores.iter().zip(truths) {
        assert_eq!(s.len(), classes, "every score vector must have K entries");
        assert!(t < classes, "truth label out of range");
        for (c, &v) in s.iter().enumerate() {
            flat_scores.push(v);
            flat_labels.push(c == t);
        }
    }
    RocCurve::from_binary_scores(&flat_scores, &flat_labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_auc_one() {
        let roc = RocCurve::from_binary_scores(
            &[0.9, 0.8, 0.7, 0.2, 0.1],
            &[true, true, true, false, false],
        );
        assert!((roc.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_have_auc_zero() {
        let roc = RocCurve::from_binary_scores(&[0.1, 0.9], &[true, false]);
        assert!(roc.auc().abs() < 1e-12);
    }

    #[test]
    fn random_constant_scores_have_auc_half() {
        let roc = RocCurve::from_binary_scores(&[0.5; 10], &[true, false].repeat(5));
        assert!((roc.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_class_returns_half() {
        let roc = RocCurve::from_binary_scores(&[0.3, 0.4], &[true, true]);
        assert!((roc.auc() - 0.5).abs() < 1e-12);
        assert_eq!(roc.points().len(), 2);
    }

    #[test]
    fn auc_matches_mann_whitney_with_ties() {
        // scores: pos {0.8, 0.5}, neg {0.5, 0.2}
        // Pairs: (0.8 vs 0.5)=1, (0.8 vs 0.2)=1, (0.5 vs 0.5)=0.5, (0.5 vs 0.2)=1
        // AUC = 3.5/4 = 0.875
        let roc = RocCurve::from_binary_scores(&[0.8, 0.5, 0.5, 0.2], &[true, true, false, false]);
        assert!((roc.auc() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn curve_starts_at_origin_and_ends_at_one_one() {
        let roc = RocCurve::from_binary_scores(&[0.9, 0.4, 0.6, 0.1], &[true, false, true, false]);
        let first = roc.points().first().unwrap();
        let last = roc.points().last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn tpr_interpolation_is_monotone() {
        let roc = RocCurve::from_binary_scores(
            &[0.9, 0.8, 0.55, 0.5, 0.3, 0.2],
            &[true, false, true, false, true, false],
        );
        let mut prev = -1.0;
        for i in 0..=20 {
            let tpr = roc.tpr_at(i as f64 / 20.0);
            assert!(tpr >= prev - 1e-12, "TPR must be non-decreasing in FPR");
            prev = tpr;
        }
    }

    #[test]
    fn macro_roc_perfect_classifier() {
        let scores = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.9, 0.05, 0.05],
            vec![0.1, 0.8, 0.1],
            vec![0.2, 0.1, 0.7],
        ];
        let truths = vec![0, 1, 2, 0, 1, 2];
        let roc = macro_average_roc(&scores, &truths, 3);
        assert!((roc.auc() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn macro_roc_uniform_classifier_is_half() {
        let scores = vec![vec![1.0 / 3.0; 3]; 9];
        let truths = vec![0, 1, 2, 0, 1, 2, 0, 1, 2];
        let roc = macro_average_roc(&scores, &truths, 3);
        assert!((roc.auc() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn better_classifier_has_larger_macro_auc() {
        let truths = vec![0, 1, 2, 0, 1, 2];
        let sharp: Vec<Vec<f64>> = truths
            .iter()
            .map(|&t| {
                let mut v = vec![0.1; 3];
                v[t] = 0.8;
                v
            })
            .collect();
        let mut noisy = sharp.clone();
        // Corrupt two samples.
        noisy[0] = vec![0.1, 0.8, 0.1];
        noisy[3] = vec![0.1, 0.1, 0.8];
        let auc_sharp = macro_average_roc(&sharp, &truths, 3).auc();
        let auc_noisy = macro_average_roc(&noisy, &truths, 3).auc();
        assert!(auc_sharp > auc_noisy);
    }

    #[test]
    fn pooled_roc_runs_and_is_bounded() {
        let scores = vec![vec![0.6, 0.3, 0.1], vec![0.2, 0.5, 0.3]];
        let truths = vec![0, 1];
        let roc = pooled_roc(&scores, &truths, 3);
        assert!(roc.auc() >= 0.0 && roc.auc() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn macro_roc_rejects_mismatched_lengths() {
        macro_average_roc(&[vec![1.0, 0.0]], &[0, 1], 2);
    }
}
