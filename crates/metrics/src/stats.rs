//! Summary statistics for delay measurements (Table III, Figures 5, 8, 11).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Collects samples and reports mean/std/min/max/percentiles.
///
/// The mean and variance use Welford's online algorithm so the summary stays
/// numerically stable for long delay traces; percentiles retain the raw
/// samples (delay traces in this reproduction are small, at most tens of
/// thousands of points).
///
/// # Empty and single-sample contract
///
/// Queries on degenerate summaries never panic, and return one of two
/// documented shapes:
///
/// * Order statistics — [`min`](Self::min), [`max`](Self::max),
///   [`quantile`](Self::quantile), [`median`](Self::median) — return
///   `None` when empty (there is no sample to report).
/// * [`mean`](Self::mean) and [`std_dev`](Self::std_dev) return the `0.0`
///   sentinel when undefined (empty, or fewer than two samples for the
///   standard deviation), because delay aggregations routinely sum and
///   tabulate them. Use [`try_mean`](Self::try_mean) /
///   [`try_std_dev`](Self::try_std_dev) where "no data" must stay
///   distinguishable from "measured zero".
///
/// [`QuantileSketch`](crate::QuantileSketch), the streaming counterpart,
/// follows the same contract.
///
/// # Example
///
/// ```
/// use crowdlearn_metrics::SummaryStats;
///
/// let stats: SummaryStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
/// assert!((stats.mean() - 2.5).abs() < 1e-12);
/// assert_eq!(stats.len(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    samples: Vec<f64>,
    mean: f64,
    m2: f64,
}

impl SummaryStats {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "summary statistics reject NaN samples");
        self.samples.push(value);
        let n = self.samples.len() as f64;
        let delta = value - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of samples collected so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; `0.0` when empty (see the type docs for the
    /// sentinel contract — [`SummaryStats::try_mean`] is the `Option` form).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn try_mean(&self) -> Option<f64> {
        (!self.samples.is_empty()).then_some(self.mean)
    }

    /// Sample standard deviation (n-1 denominator); `0.0` with fewer than two
    /// samples (see the type docs — [`SummaryStats::try_std_dev`] is the
    /// `Option` form).
    pub fn std_dev(&self) -> f64 {
        self.try_std_dev().unwrap_or(0.0)
    }

    /// Sample standard deviation, or `None` with fewer than two samples
    /// (a single sample has no dispersion to estimate).
    pub fn try_std_dev(&self) -> Option<f64> {
        (self.samples.len() >= 2).then(|| (self.m2 / (self.samples.len() as f64 - 1.0)).sqrt())
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// The `q`-th quantile (nearest-rank with linear interpolation), `q` in
    /// `[0, 1]`. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must lie in [0, 1], got {q}"
        );
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            Some(sorted[lo])
        } else {
            let t = pos - lo as f64;
            Some(sorted[lo] * (1.0 - t) + sorted[hi] * t)
        }
    }

    /// Median (0.5 quantile); `None` when empty.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Read-only access to the raw samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &SummaryStats) {
        for &s in &other.samples {
            self.push(s);
        }
    }
}

impl FromIterator<f64> for SummaryStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut stats = SummaryStats::new();
        for v in iter {
            stats.push(v);
        }
        stats
    }
}

impl Extend<f64> for SummaryStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl fmt::Display for SummaryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "n=0 (no samples)");
        }
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} p50={:.3} max={:.3}",
            self.len(),
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.median().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_well_behaved() {
        let s = SummaryStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.try_mean(), None);
        assert_eq!(s.try_std_dev(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.quantile(0.0), None);
        assert_eq!(s.quantile(1.0), None);
        assert_eq!(s.sum(), 0.0);
        assert_eq!(format!("{s}"), "n=0 (no samples)");
    }

    #[test]
    fn single_sample_queries_are_exact_and_total() {
        let s: SummaryStats = [3.5].into_iter().collect();
        assert_eq!(s.try_mean(), Some(3.5));
        // One sample has no dispersion estimate: Option form says so, the
        // sentinel form keeps the documented 0.0.
        assert_eq!(s.try_std_dev(), None);
        assert_eq!(s.std_dev(), 0.0);
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(s.quantile(q), Some(3.5));
        }
        // A measured zero stays distinguishable from "no samples".
        let zero: SummaryStats = [0.0].into_iter().collect();
        assert_eq!(zero.try_mean(), Some(0.0));
        assert_eq!(zero.mean(), SummaryStats::new().mean());
        assert_ne!(zero.try_mean(), SummaryStats::new().try_mean());
    }

    #[test]
    fn mean_and_std_match_closed_form() {
        let s: SummaryStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of that classic example is 32/7.
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let s: SummaryStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(4.0));
        assert!((s.median().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_is_equivalent_to_concatenation() {
        let mut a: SummaryStats = [1.0, 2.0].into_iter().collect();
        let b: SummaryStats = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        let c: SummaryStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert!((a.std_dev() - c.std_dev()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "reject NaN")]
    fn push_rejects_nan() {
        SummaryStats::new().push(f64::NAN);
    }

    #[test]
    fn single_sample_std_is_zero() {
        let s: SummaryStats = [42.0].into_iter().collect();
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn extend_appends() {
        let mut s = SummaryStats::new();
        s.extend([1.0, 5.0]);
        assert_eq!(s.len(), 2);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }
}
