//! Streaming quantile estimation for live metric taps.

use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A deterministic fixed-grid streaming quantile estimator.
///
/// [`SummaryStats`](crate::SummaryStats) keeps every sample, which is fine
/// for end-of-run reports but wrong for a per-event metrics tap that must
/// stay O(1) no matter how long the trace runs. `QuantileSketch` instead
/// bins samples on a fixed uniform grid over `[lo, hi)` and reconstructs
/// order statistics from the cumulative bin counts, so memory is bounded by
/// the bin count and every operation is deterministic — no randomized
/// compaction, no RNG, no iteration-order dependence.
///
/// # Accuracy contract
///
/// As long as no sample fell outside the grid (`clamped() == 0`), every
/// quantile estimate lies within one [`bin_width`](Self::bin_width) of the
/// exact sample quantile that [`SummaryStats::quantile`](crate::SummaryStats::quantile)
/// computes over the same samples: the true order statistic lives in the
/// same bin as the reconstruction, and both interpolate between adjacent
/// order statistics the same way. Out-of-range samples are clamped into the
/// edge bins (and counted), which voids the bound for quantiles landing
/// there — size the grid generously instead.
///
/// The query contract mirrors `SummaryStats`: quantiles, `min` and `max`
/// return `None` when empty; [`mean`](Self::mean) returns the documented
/// `0.0` sentinel when empty (with [`try_mean`](Self::try_mean) as the
/// `Option` form). Minimum and maximum are tracked exactly, not binned.
///
/// # Example
///
/// ```
/// use crowdlearn_metrics::QuantileSketch;
///
/// let mut sketch = QuantileSketch::new(0.0, 100.0, 200);
/// for i in 0..1000 {
///     sketch.push(f64::from(i % 100));
/// }
/// let median = sketch.quantile(0.5).unwrap();
/// assert!((median - 49.5).abs() <= sketch.bin_width());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
    clamped: u64,
    min: f64,
    max: f64,
    mean: f64,
}

impl QuantileSketch {
    /// An empty sketch over the grid `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if the range is not finite and increasing, or `bins` is zero.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "sketch range must be finite and increasing, got [{lo}, {hi})"
        );
        assert!(bins > 0, "sketch needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
            clamped: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite (a binned estimator has no
    /// meaningful cell for non-finite samples).
    pub fn push(&mut self, value: f64) {
        assert!(
            value.is_finite(),
            "quantile sketch rejects non-finite samples"
        );
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.mean += (value - self.mean) / self.count as f64;
        let idx = if value < self.lo {
            self.clamped += 1;
            0
        } else if value >= self.hi {
            self.clamped += 1;
            self.bins.len() - 1
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1)
        };
        self.bins[idx] += 1;
    }

    /// Number of samples absorbed.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Samples that fell outside `[lo, hi)` and were clamped into an edge
    /// bin. While this is zero the one-bin-width accuracy bound holds.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Width of one grid bin — the quantile error bound while
    /// [`clamped`](Self::clamped) is zero.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Arithmetic mean (exact, not binned); `0.0` when empty — the same
    /// sentinel [`SummaryStats::mean`](crate::SummaryStats::mean) documents.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn try_mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Smallest sample (exact); `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (exact); `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-th quantile estimate, `q` in `[0, 1]`; `None` when empty.
    ///
    /// Matches the rank convention of
    /// [`SummaryStats::quantile`](crate::SummaryStats::quantile): linear
    /// interpolation between the order statistics at `floor(q·(n-1))` and
    /// `ceil(q·(n-1))`, each reconstructed from the cumulative bin counts
    /// and clamped to the exact observed `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must lie in [0, 1], got {q}"
        );
        if self.count == 0 {
            return None;
        }
        let pos = q * (self.count - 1) as f64;
        let lo_rank = pos.floor() as u64;
        let hi_rank = pos.ceil() as u64;
        let lo_val = self.value_at_rank(lo_rank);
        if lo_rank == hi_rank {
            return Some(lo_val);
        }
        let hi_val = self.value_at_rank(hi_rank);
        let t = pos - lo_rank as f64;
        Some(lo_val * (1.0 - t) + hi_val * t)
    }

    /// Median (0.5 quantile) estimate; `None` when empty.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Reconstructs the 0-based order statistic `k` from the bin counts:
    /// the sample's bin is located by cumulative count, its position within
    /// the bin interpolated, and the result clamped to the exact extremes.
    fn value_at_rank(&self, k: u64) -> f64 {
        debug_assert!(k < self.count);
        // The first and last order statistics are the exactly-tracked
        // extremes — report them exactly, as SummaryStats does for q=0/q=1.
        if k == 0 {
            return self.min;
        }
        if k == self.count - 1 {
            return self.max;
        }
        let width = self.bin_width();
        let mut cum = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            if k < cum + c {
                let within = (k - cum) as f64 + 0.5;
                let est = self.lo + width * (i as f64 + within / c as f64);
                return est.clamp(self.min, self.max);
            }
            cum += c;
        }
        // invariant: count == sum(bins), so some bin contains rank k.
        unreachable!("rank {k} beyond the {} binned samples", self.count)
    }

    /// The sketch's grid: `(lo, hi, bins)`. Two sketches are mergeable iff
    /// their grids are equal (bit-exact edges, same bin count).
    pub fn grid(&self) -> (f64, f64, usize) {
        (self.lo, self.hi, self.bins.len())
    }

    /// Whether `other` was built over the same grid as `self`, i.e. whether
    /// the two can merge.
    pub fn same_grid(&self, other: &QuantileSketch) -> bool {
        self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len()
    }

    /// Merges another sketch into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches were built over different grids — use
    /// [`QuantileSketch::try_merge`] when the grids are not statically
    /// known to match.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.try_merge(other)
            .expect("invariant: merged sketches share one grid (checked by the caller)");
    }

    /// Merges another sketch into this one, rejecting mismatched grids
    /// with a typed error instead of aborting. On `Err` this sketch is
    /// untouched.
    pub fn try_merge(&mut self, other: &QuantileSketch) -> Result<(), SketchGridMismatch> {
        if !self.same_grid(other) {
            return Err(SketchGridMismatch {
                expected: self.grid(),
                found: other.grid(),
            });
        }
        if other.count == 0 {
            return Ok(());
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        let total = self.count + other.count;
        self.mean =
            (self.mean * self.count as f64 + other.mean * other.count as f64) / total as f64;
        self.count = total;
        self.clamped += other.clamped;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }
}

/// Two sketches could not merge: they were built over different grids, so
/// their bins do not describe the same value ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchGridMismatch {
    /// The receiving sketch's grid, as `(lo, hi, bins)`.
    pub expected: (f64, f64, usize),
    /// The offered sketch's grid, as `(lo, hi, bins)`.
    pub found: (f64, f64, usize),
}

impl fmt::Display for SketchGridMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (elo, ehi, ebins) = self.expected;
        let (flo, fhi, fbins) = self.found;
        write!(
            f,
            "sketch grid mismatch: expected [{elo}, {ehi}) x {ebins} bins, found [{flo}, {fhi}) x {fbins} bins"
        )
    }
}

impl std::error::Error for SketchGridMismatch {}

impl fmt::Display for QuantileSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "n=0 (no samples)");
        }
        write!(
            f,
            "n={} mean={:.3} min={:.3} p50={:.3} p90={:.3} max={:.3} (±{:.3})",
            self.count,
            self.mean(),
            self.min,
            self.median().unwrap_or(f64::NAN),
            self.quantile(0.9).unwrap_or(f64::NAN),
            self.max,
            self.bin_width()
        )
    }
}

// Snapshot codec: the sketch is part of a checkpointed metrics tap, so it
// round-trips bit-exactly (f64 via IEEE bits) and decoding re-checks every
// structural invariant instead of trusting the bytes.
impl Encode for QuantileSketch {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lo.encode(out);
        self.hi.encode(out);
        self.bins.encode(out);
        self.count.encode(out);
        self.clamped.encode(out);
        self.min.encode(out);
        self.max.encode(out);
        self.mean.encode(out);
    }
}

impl Decode for QuantileSketch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let sketch = Self {
            lo: f64::decode(r)?,
            hi: f64::decode(r)?,
            bins: Vec::<u64>::decode(r)?,
            count: u64::decode(r)?,
            clamped: u64::decode(r)?,
            min: f64::decode(r)?,
            max: f64::decode(r)?,
            mean: f64::decode(r)?,
        };
        let grid_ok = sketch.lo.is_finite()
            && sketch.hi.is_finite()
            && sketch.lo < sketch.hi
            && !sketch.bins.is_empty();
        let totals_ok =
            sketch.bins.iter().sum::<u64>() == sketch.count && sketch.clamped <= sketch.count;
        let stats_ok = if sketch.count == 0 {
            sketch.min == f64::INFINITY && sketch.max == f64::NEG_INFINITY && sketch.mean == 0.0
        } else {
            sketch.min.is_finite()
                && sketch.max.is_finite()
                && sketch.min <= sketch.max
                && sketch.mean.is_finite()
        };
        if !grid_ok || !totals_ok || !stats_ok {
            return Err(DecodeError::Invalid);
        }
        Ok(sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SummaryStats;

    fn filled(values: &[f64]) -> (QuantileSketch, SummaryStats) {
        let mut sketch = QuantileSketch::new(0.0, 100.0, 500);
        let mut exact = SummaryStats::new();
        for &v in values {
            sketch.push(v);
            exact.push(v);
        }
        (sketch, exact)
    }

    #[test]
    fn empty_sketch_matches_the_summary_stats_contract() {
        let s = QuantileSketch::new(0.0, 10.0, 4);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.try_mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.clamped(), 0);
        assert_eq!(format!("{s}"), "n=0 (no samples)");
    }

    #[test]
    fn single_sample_is_exact() {
        let mut s = QuantileSketch::new(0.0, 10.0, 4);
        s.push(7.25);
        assert_eq!(s.min(), Some(7.25));
        assert_eq!(s.max(), Some(7.25));
        assert_eq!(s.try_mean(), Some(7.25));
        // One sample: every quantile clamps to the exact extremes.
        assert_eq!(s.quantile(0.0), Some(7.25));
        assert_eq!(s.quantile(0.5), Some(7.25));
        assert_eq!(s.quantile(1.0), Some(7.25));
    }

    #[test]
    fn quantiles_track_the_exact_summary_within_one_bin() {
        let values: Vec<f64> = (0..997).map(|i| (i * 37 % 1000) as f64 / 10.0).collect();
        let (sketch, exact) = filled(&values);
        assert_eq!(sketch.clamped(), 0);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let got = sketch.quantile(q).unwrap();
            let want = exact.quantile(q).unwrap();
            assert!(
                (got - want).abs() <= sketch.bin_width() + 1e-12,
                "q={q}: sketch {got} vs exact {want} (bin width {})",
                sketch.bin_width()
            );
        }
        assert_eq!(sketch.min(), exact.min());
        assert_eq!(sketch.max(), exact.max());
        assert!((sketch.mean() - exact.mean()).abs() < 1e-9);
    }

    #[test]
    fn extreme_quantiles_are_exact() {
        let (sketch, exact) = filled(&[3.0, 99.9, 41.5, 0.2, 77.0]);
        assert_eq!(sketch.quantile(0.0), exact.min());
        assert_eq!(sketch.quantile(1.0), exact.max());
    }

    #[test]
    fn out_of_range_samples_clamp_and_count() {
        let mut s = QuantileSketch::new(0.0, 10.0, 10);
        s.push(-5.0);
        s.push(15.0);
        s.push(5.0);
        assert_eq!(s.clamped(), 2);
        assert_eq!(s.len(), 3);
        // Exact extremes still report the raw values.
        assert_eq!(s.min(), Some(-5.0));
        assert_eq!(s.max(), Some(15.0));
        // Estimates stay within the observed range even for clamped bins.
        let p = s.quantile(1.0).unwrap();
        assert!((-5.0..=15.0).contains(&p));
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = QuantileSketch::new(0.0, 100.0, 50);
        let mut b = QuantileSketch::new(0.0, 100.0, 50);
        let mut both = QuantileSketch::new(0.0, 100.0, 50);
        for i in 0..40 {
            let v = (i * 13 % 100) as f64;
            if i % 2 == 0 {
                a.push(v)
            } else {
                b.push(v)
            }
            both.push(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), both.len());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert!((a.mean() - both.mean()).abs() < 1e-9);
        assert_eq!(a.quantile(0.5), both.quantile(0.5));
    }

    #[test]
    fn try_merge_rejects_mismatched_grids_without_mutating() {
        let mut a = QuantileSketch::new(0.0, 100.0, 50);
        a.push(10.0);
        let pristine = a.clone();
        let mut b = QuantileSketch::new(0.0, 200.0, 50);
        b.push(150.0);
        let err = a.try_merge(&b).expect_err("different grids must reject");
        assert_eq!(err.expected, (0.0, 100.0, 50));
        assert_eq!(err.found, (0.0, 200.0, 50));
        assert!(err.to_string().contains("grid mismatch"));
        assert_eq!(a, pristine, "a failed merge must leave the sketch intact");
        assert!(!a.same_grid(&b));

        // A bin-count mismatch over the same edges also rejects.
        let c = QuantileSketch::new(0.0, 100.0, 51);
        assert!(a.try_merge(&c).is_err());
        assert!(a.try_merge(&pristine).is_ok());
    }

    #[test]
    #[should_panic(expected = "share one grid")]
    fn merge_panics_on_mismatched_grids() {
        let mut a = QuantileSketch::new(0.0, 100.0, 50);
        a.merge(&QuantileSketch::new(0.0, 100.0, 49));
    }

    #[test]
    fn codec_round_trips_and_rejects_corruption() {
        let (sketch, _) = filled(&[1.0, 2.5, 99.0, 42.0]);
        let mut bytes = Vec::new();
        sketch.encode(&mut bytes);
        let back = QuantileSketch::decode(&mut Reader::new(&bytes)).expect("round trip");
        assert_eq!(back, sketch);

        // An empty sketch round-trips too (infinite sentinels travel as bits).
        let empty = QuantileSketch::new(0.0, 1.0, 2);
        let mut bytes = Vec::new();
        empty.encode(&mut bytes);
        assert_eq!(QuantileSketch::decode(&mut Reader::new(&bytes)), Ok(empty));

        // A count that disagrees with the bin totals is rejected.
        let mut tampered = sketch.clone();
        tampered.count += 1;
        let mut bytes = Vec::new();
        tampered.encode(&mut bytes);
        assert_eq!(
            QuantileSketch::decode(&mut Reader::new(&bytes)),
            Err(DecodeError::Invalid)
        );
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        QuantileSketch::new(0.0, 1.0, 2).push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and increasing")]
    fn inverted_range_rejected() {
        QuantileSketch::new(5.0, 1.0, 2);
    }
}
