//! Golden equivalence: the event-driven runtime with an in-flight window
//! of one must reproduce the blocking system *exactly* — same per-image
//! labels, same distributions, same delays, same spend — on the paper
//! configuration with the paper seeds.

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream};
use crowdlearn_runtime::{blocking_makespan_secs, PipelinedSystem, RuntimeConfig};

#[test]
fn window_one_reproduces_blocking_labels_byte_for_byte() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let stream = SensingCycleStream::paper(&dataset);

    let mut blocking = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());
    let blocking_outcomes: Vec<_> = stream
        .cycles()
        .iter()
        .map(|cycle| blocking.run_cycle(cycle, &dataset))
        .collect();

    let mut pipelined = PipelinedSystem::new(
        &dataset,
        CrowdLearnConfig::paper(),
        RuntimeConfig::sequential(),
    );
    let run = pipelined.run(&dataset, &stream);

    assert_eq!(run.outcomes.len(), blocking_outcomes.len());
    for (pipelined_outcome, blocking_outcome) in run.outcomes.iter().zip(&blocking_outcomes) {
        // CycleOutcome equality covers every per-image label, the full
        // class distributions, the delays, and the cents spent.
        assert_eq!(
            pipelined_outcome, blocking_outcome,
            "cycle {} diverged from the blocking system",
            blocking_outcome.cycle
        );
    }
    assert_eq!(run.peak_cycles_in_flight, 1);
    assert_eq!(run.peak_hits_in_flight, 1);
    assert_eq!(run.timeouts, 0);
}

#[test]
fn pipelining_beats_the_blocking_makespan() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let stream = SensingCycleStream::paper(&dataset);

    let mut pipelined =
        PipelinedSystem::new(&dataset, CrowdLearnConfig::paper(), RuntimeConfig::paper());
    let run = pipelined.run(&dataset, &stream);

    // The blocking reference: same outcomes, waits serialized.
    let mut blocking = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());
    let blocking_outcomes: Vec<_> = stream
        .cycles()
        .iter()
        .map(|cycle| blocking.run_cycle(cycle, &dataset))
        .collect();
    let blocking_makespan =
        blocking_makespan_secs(&blocking_outcomes, RuntimeConfig::paper().cycle_period_secs);

    assert!(
        run.makespan_secs < blocking_makespan,
        "pipelined makespan {} should beat blocking {}",
        run.makespan_secs,
        blocking_makespan
    );
    assert!(
        run.peak_cycles_in_flight > 1,
        "window 4 should overlap cycles"
    );
    assert_eq!(run.outcomes.len(), 40);
}

#[test]
fn blocking_makespan_sums_exact_per_query_delays() {
    use crowdlearn::CycleOutcome;
    use crowdlearn_dataset::TemporalContext;

    // Delays chosen so the old mean-times-count reconstruction
    // `(Σdᵢ/n)·n` does NOT round-trip to `Σdᵢ` in f64.
    let delays = vec![0.1, 0.3, 2.7];
    let exact_sum: f64 = delays.iter().sum();
    let mean = exact_sum / delays.len() as f64;
    assert_ne!(
        mean * delays.len() as f64,
        exact_sum,
        "pick delays where the reconstruction actually differs"
    );

    let outcome = CycleOutcome {
        cycle: 0,
        context: TemporalContext::Morning,
        images: Vec::new(),
        algorithm_delay_secs: 5.0,
        crowd_delay_secs: Some(mean),
        query_delay_secs: delays,
        spent_cents: 0,
    };
    // One cycle arriving at t=0: makespan is exactly inference + Σdᵢ.
    assert_eq!(
        blocking_makespan_secs(std::slice::from_ref(&outcome), 600.0),
        5.0 + exact_sum,
        "speedup baselines must be computed from exact per-query sums"
    );
}

#[test]
fn pipelined_runs_are_deterministic() {
    let dataset = Dataset::generate(&DatasetConfig::paper());
    let stream = SensingCycleStream::paper(&dataset);
    let run = |window: usize| {
        let mut system = PipelinedSystem::new(
            &dataset,
            CrowdLearnConfig::paper(),
            RuntimeConfig::paper().with_inflight_window(window),
        );
        system.run(&dataset, &stream)
    };
    let (a, b) = (run(4), run(4));
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.makespan_secs, b.makespan_secs);
    assert_eq!(a.events_processed, b.events_processed);
}
