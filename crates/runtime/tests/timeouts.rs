//! Regression tests for the timeout path's timing and learning accounting.
//!
//! Two bugs lived here:
//!
//! 1. A timed-out HIT that was *not* reposted (out of attempts or budget)
//!    used to be absorbed at the timeout instant, even though its workers
//!    only finish at `posted_at + delay` — time travel that deflated cycle
//!    completion times. It must be absorbed at its true completion time.
//! 2. Only the repost path fed IPD the censored "delay ≥ timeout"
//!    observation; the waited-out path fed nothing at the timeout and then
//!    the *full* delay at absorb. Every posted attempt must produce exactly
//!    one IPD observation.

use crowdlearn::CrowdLearnConfig;
use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream};
use crowdlearn_runtime::{PipelinedSystem, RuntimeConfig, RuntimeReport};

const TIMEOUT_SECS: f64 = 120.0;

fn timeout_run(max_attempts: u32) -> (RuntimeReport, u64) {
    let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(11));
    let stream = SensingCycleStream::new(&dataset, 6, 4);
    let runtime = RuntimeConfig::sequential().with_hit_timeout(Some(TIMEOUT_SECS), max_attempts);
    let mut system = PipelinedSystem::new(&dataset, CrowdLearnConfig::paper(), runtime);
    let observations_before = system.system().delay_observations();
    let run = system.run(&dataset, &stream);
    let observed = system.system().delay_observations() - observations_before;
    (run, observed)
}

#[test]
fn waited_out_hits_complete_at_their_true_answer_time() {
    let (run, _) = timeout_run(1);
    assert!(run.timeouts > 0, "timeout must actually fire");
    assert_eq!(run.reposts, 0, "one attempt means no reposts");

    // Sequential window: each cycle's queries chain serially, each absorbed
    // at its true completion. So a cycle's completion time is at least its
    // arrival plus inference plus the *sum of full query delays* — the
    // outcome's exact per-query record. Absorbing at the timeout instant
    // (the old bug) caps each timed-out query's contribution at the timeout
    // and breaks this inequality.
    for (k, outcome) in run.outcomes.iter().enumerate() {
        let crowd_sum: f64 = outcome.query_delay_secs.iter().sum();
        let arrival = k as f64 * 600.0;
        assert!(
            run.completed_at_secs[k] >= arrival + outcome.algorithm_delay_secs + crowd_sum - 1e-6,
            "cycle {k} completed at {} — before its answers ({arrival} + {} + {crowd_sum})",
            run.completed_at_secs[k],
            outcome.algorithm_delay_secs,
        );
    }

    // And at least one waited-out answer took longer than the timeout, so
    // its cycle's recorded delays must show a super-timeout value.
    let max_delay = run
        .outcomes
        .iter()
        .filter_map(|o| o.crowd_delay_secs)
        .fold(0.0f64, f64::max);
    assert!(
        max_delay > 0.0,
        "run must actually exercise crowd queries to test the timeout path"
    );
}

#[test]
fn every_posted_attempt_feeds_exactly_one_ipd_observation() {
    // No reposts: attempts == queries issued.
    let (run, observed) = timeout_run(1);
    assert!(run.timeouts > 0, "timeout must actually fire");
    assert_eq!(
        observed, run.report.queries_issued as u64,
        "waited-out HITs must feed exactly one (censored) observation"
    );

    // With reposts: each repost is one extra posted attempt, and each
    // attempt — answered, reposted, or waited out — observes exactly once.
    let (run, observed) = timeout_run(3);
    assert!(run.reposts > 0, "escalated reposts must actually fire");
    assert_eq!(
        observed,
        run.report.queries_issued as u64 + run.reposts,
        "attempts and IPD observations must match one-to-one"
    );
}
