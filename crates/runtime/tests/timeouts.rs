//! Regression tests for the timeout path's timing and learning accounting.
//!
//! Two bugs lived here:
//!
//! 1. A timed-out HIT that was *not* reposted (out of attempts or budget)
//!    used to be absorbed at the timeout instant, even though its workers
//!    only finish at `posted_at + delay` — time travel that deflated cycle
//!    completion times. It must be absorbed at its true completion time.
//! 2. Only the repost path fed IPD the censored "delay ≥ timeout"
//!    observation; the waited-out path fed nothing at the timeout and then
//!    the *full* delay at absorb. Every posted attempt must produce exactly
//!    one IPD observation.

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_crowd::{
    DelayModel, IncentiveLevel, Platform, PlatformConfig, Worker, WorkerId, WorkerPool,
};
use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream, TemporalContext};
use crowdlearn_runtime::{PipelinedSystem, RuntimeConfig, RuntimeReport};

const TIMEOUT_SECS: f64 = 120.0;

fn timeout_run(max_attempts: u32) -> (RuntimeReport, u64) {
    let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(11));
    let stream = SensingCycleStream::new(&dataset, 6, 4);
    let runtime = RuntimeConfig::sequential().with_hit_timeout(Some(TIMEOUT_SECS), max_attempts);
    let mut system = PipelinedSystem::new(&dataset, CrowdLearnConfig::paper(), runtime);
    let observations_before = system.system().delay_observations();
    let run = system.run(&dataset, &stream);
    let observed = system.system().delay_observations() - observations_before;
    (run, observed)
}

#[test]
fn waited_out_hits_complete_at_their_true_answer_time() {
    let (run, _) = timeout_run(1);
    assert!(run.timeouts > 0, "timeout must actually fire");
    assert_eq!(run.reposts, 0, "one attempt means no reposts");

    // Sequential window: each cycle's queries chain serially, each absorbed
    // at its true completion. So a cycle's completion time is at least its
    // arrival plus inference plus the *sum of full query delays* — the
    // outcome's exact per-query record. Absorbing at the timeout instant
    // (the old bug) caps each timed-out query's contribution at the timeout
    // and breaks this inequality.
    for (k, outcome) in run.outcomes.iter().enumerate() {
        let crowd_sum: f64 = outcome.query_delay_secs.iter().sum();
        let arrival = k as f64 * 600.0;
        assert!(
            run.completed_at_secs[k] >= arrival + outcome.algorithm_delay_secs + crowd_sum - 1e-6,
            "cycle {k} completed at {} — before its answers ({arrival} + {} + {crowd_sum})",
            run.completed_at_secs[k],
            outcome.algorithm_delay_secs,
        );
    }

    // And at least one waited-out answer took longer than the timeout, so
    // its cycle's recorded delays must show a super-timeout value.
    let max_delay = run
        .outcomes
        .iter()
        .filter_map(|o| o.crowd_delay_secs)
        .fold(0.0f64, f64::max);
    assert!(
        max_delay > 0.0,
        "run must actually exercise crowd queries to test the timeout path"
    );
}

#[test]
fn every_posted_attempt_feeds_exactly_one_ipd_observation() {
    // No reposts: attempts == queries issued.
    let (run, observed) = timeout_run(1);
    assert!(run.timeouts > 0, "timeout must actually fire");
    assert_eq!(
        observed, run.report.queries_issued as u64,
        "waited-out HITs must feed exactly one (censored) observation"
    );

    // With reposts: each repost is one extra posted attempt, and each
    // attempt — answered, reposted, or waited out — observes exactly once.
    let (run, observed) = timeout_run(3);
    assert!(run.reposts > 0, "escalated reposts must actually fire");
    assert_eq!(
        observed,
        run.report.queries_issued as u64 + run.reposts,
        "attempts and IPD observations must match one-to-one"
    );
}

// ---------------------------------------------------------------------------
// The exact-boundary semantic: an answer landing *at* the timeout instant.
//
// `schedule_hit_events` used to schedule `HitAnswered` for `delay ==
// hit_timeout_secs` (censoring only `delay > timeout`), while the IPD
// contract (`CrowdLearnSystem::observe_crowd_delay`) and the pipeline docs
// both censor "delay >= timeout". The runtime now censors at `>=`, matching
// the docs. A platform whose every HIT completes in *exactly* the table
// mean pins the boundary: zero-noise delay surface, every worker at speed
// factor 1.0, so `delay == mean` bit-exactly.

/// Every delay cell equal to `mean_secs`, no log-normal noise.
fn flat_delay_model(mean_secs: f64) -> DelayModel {
    DelayModel::from_table(
        [[mean_secs; IncentiveLevel::COUNT]; TemporalContext::COUNT],
        0.0,
    )
}

/// A pool of identical always-on workers at speed factor exactly 1.0, so
/// each response delay is the cell mean × 1.0 × exp(0) == the cell mean.
fn uniform_pool(size: usize) -> WorkerPool {
    let workers = (0..size)
        .map(|i| Worker::from_traits(WorkerId(i as u32), 0.85, 1.0, [1.0; TemporalContext::COUNT]))
        .collect();
    WorkerPool::from_workers(workers)
}

fn boundary_run(mean_secs: f64, timeout_secs: f64) -> (RuntimeReport, u64) {
    let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(11));
    let stream = SensingCycleStream::new(&dataset, 4, 4);
    let platform_config = PlatformConfig::paper()
        .with_seed(23)
        .with_delay_model(flat_delay_model(mean_secs));
    let platform = Platform::with_pool(platform_config, uniform_pool(80));
    let system = CrowdLearnSystem::with_platform(&dataset, CrowdLearnConfig::paper(), platform);
    let runtime = RuntimeConfig::sequential().with_hit_timeout(Some(timeout_secs), 1);
    let mut pipelined = PipelinedSystem::from_system(system, runtime);
    let observations_before = pipelined.system().delay_observations();
    let run = pipelined.run(&dataset, &stream);
    let observed = pipelined.system().delay_observations() - observations_before;
    (run, observed)
}

#[test]
fn answer_landing_exactly_at_the_timeout_is_censored() {
    // delay == timeout == 300 s for every HIT: the boundary case. Censoring
    // at `>=` means every posted attempt times out; the old `>` semantic
    // would have answered every one of them.
    let (run, observed) = boundary_run(300.0, 300.0);
    let queries = run.report.queries_issued as u64;
    assert!(queries > 0, "run must actually post crowd queries");
    assert_eq!(
        run.timeouts, queries,
        "every exact-boundary answer must be censored (delay >= timeout)"
    );
    assert_eq!(run.reposts, 0, "one attempt means no reposts");
    // Exactly one (censored) IPD observation per posted attempt — the
    // waited-out late absorption must not observe a second time.
    assert_eq!(
        observed, queries,
        "boundary censoring must still observe exactly once per attempt"
    );
    // The waited-out answers are still absorbed, at their true completion
    // time: every cycle closes and records its full per-query delays.
    for outcome in &run.outcomes {
        for &delay in &outcome.query_delay_secs {
            assert!(
                (delay - 300.0).abs() < 1e-9,
                "uniform platform must produce the exact table-mean delay, got {delay}"
            );
        }
    }
}

#[test]
fn answer_strictly_inside_the_timeout_is_absorbed() {
    // Same platform, timeout one second *above* the uniform delay: no HIT
    // reaches the boundary, so nothing may be censored. Together with the
    // test above this pins the censor set as exactly `delay >= timeout`.
    let (run, observed) = boundary_run(300.0, 301.0);
    let queries = run.report.queries_issued as u64;
    assert!(queries > 0, "run must actually post crowd queries");
    assert_eq!(run.timeouts, 0, "sub-timeout answers must all be absorbed");
    assert_eq!(run.reposts, 0);
    assert_eq!(
        observed, queries,
        "absorbed answers observe their true delay exactly once"
    );
}
