//! Property tests for the runtime's core invariants:
//!
//! 1. the virtual clock never runs backwards for any schedule,
//! 2. no event is lost or duplicated by the queue,
//! 3. in-flight cycles (and HITs) never exceed the configured window,
//! 4. the crowd budget is never overspent, even with concurrent cycles
//!    and incentive-escalated reposts in flight.

use crowdlearn::CrowdLearnConfig;
use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream};
use crowdlearn_runtime::{EventKind, EventQueue, PipelinedSystem, RuntimeConfig, VirtualClock};
use proptest::collection::vec;
use proptest::prelude::*;

/// A small but complete system: the full boot sequence at a fraction of
/// the paper's training volume, over an 8-cycle stream.
fn small_config(seed: u64, budget_cents: f64) -> CrowdLearnConfig {
    let mut config = CrowdLearnConfig::paper().with_seed(seed);
    config.queries_per_cycle = 3;
    config.warmup_per_cell = 1;
    config.cqc_training_queries = 84;
    config.horizon_queries = 24;
    config.budget_cents = budget_cents;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Popping any schedule of events advances a clock monotonically, and
    /// `scheduled == popped + pending` holds at every step.
    #[test]
    fn clock_is_monotone_and_no_event_is_lost(
        times in vec((0.0f64..1e6, 0usize..64), 1..128)
    ) {
        let mut queue = EventQueue::new();
        let mut clock = VirtualClock::new();
        for &(at, cycle) in &times {
            queue.schedule(at, EventKind::CycleArrival { cycle });
        }
        prop_assert_eq!(queue.scheduled(), times.len() as u64);
        let mut popped = 0u64;
        let mut last = f64::NEG_INFINITY;
        while let Some(event) = queue.pop() {
            clock.advance_to(event.at_secs); // panics if non-monotone
            prop_assert!(event.at_secs >= last);
            last = event.at_secs;
            popped += 1;
            prop_assert_eq!(queue.scheduled(), popped + queue.len() as u64);
        }
        prop_assert_eq!(popped, times.len() as u64);
        prop_assert_eq!(clock.now_secs(), last);
    }

    /// Simultaneous events pop in scheduling order (FIFO among ties), so
    /// the event stream is a pure function of the schedule calls.
    #[test]
    fn ties_resolve_in_scheduling_order(cycles in vec(0usize..1000, 2..64)) {
        let mut queue = EventQueue::new();
        for &cycle in &cycles {
            queue.schedule(42.0, EventKind::CycleArrival { cycle });
        }
        let order: Vec<usize> = std::iter::from_fn(|| queue.pop())
            .filter_map(|e| e.kind.cycle())
            .collect();
        prop_assert_eq!(order, cycles);
    }
}

proptest! {
    // Each case boots and runs a full (small) system; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Across windows, timeouts, and budgets: cycle/HIT concurrency stays
    /// within the window, every cycle completes no earlier than it
    /// arrived, and the evaluation spend never exceeds the budget — even
    /// though several cycles charge it concurrently and timed-out HITs
    /// repost at escalated incentives.
    #[test]
    fn window_and_budget_invariants_hold(
        seed in 0u64..512,
        window in 1usize..6,
        budget_cents in 30.0f64..160.0,
        with_timeout in any::<bool>(),
        timeout_secs in 120.0f64..900.0,
    ) {
        let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(seed ^ 0xd5));
        let stream = SensingCycleStream::new(&dataset, 8, 5);
        let runtime = RuntimeConfig::paper()
            .with_inflight_window(window)
            .with_hit_timeout(with_timeout.then_some(timeout_secs), 3);
        let mut system =
            PipelinedSystem::new(&dataset, small_config(seed, budget_cents), runtime.clone());
        let run = system.run(&dataset, &stream);

        // Backpressure: the window bounds cycle concurrency, and intra-cycle
        // query chaining bounds HITs to one per active cycle.
        prop_assert!(run.peak_cycles_in_flight <= window);
        prop_assert!(run.peak_hits_in_flight <= window);

        // Completeness: every cycle finalized, at or after its arrival.
        prop_assert_eq!(run.outcomes.len(), 8);
        for (k, (outcome, &done)) in
            run.outcomes.iter().zip(&run.completed_at_secs).enumerate()
        {
            prop_assert_eq!(outcome.cycle, k);
            prop_assert!(done >= k as f64 * runtime.cycle_period_secs);
        }

        // Budget safety: every charge (selections *and* escalated reposts)
        // went through the same ledger, so the evaluation spend can never
        // exceed the budget.
        let spent = run.outcomes.iter().map(|o| o.spent_cents).sum::<u64>();
        prop_assert!(
            spent as f64 <= budget_cents + 1e-9,
            "spent {} cents of a {} cent budget", spent, budget_cents
        );
        prop_assert_eq!(spent, system.system().evaluation_spent_cents());
        if run.timeouts > 0 {
            prop_assert!(run.reposts <= run.timeouts);
        }
    }
}

proptest! {
    // Each case boots and runs a full (small) system; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation under arbitrary valid fault plans: every posted HIT
    /// attempt feeds the incentive learner exactly one delay observation
    /// (answered, censored-then-late, or censored-then-abandoned), every
    /// cycle still finalizes, and the run terminates even when the breaker
    /// opens with the in-flight window full — the drain assertions inside
    /// the runtime (`finish`) make a stalled ladder a hard failure.
    #[test]
    fn faulted_runs_conserve_observations_and_terminate(
        seed in 0u64..256,
        plan_seed in 0u64..u64::MAX,
        outage_from in 0.0f64..4000.0,
        outage_len in 60.0f64..4000.0,
        attrition_from in 0.0f64..4000.0,
        attrition_fraction in 0.0f64..0.9,
        loss_from in 0.0f64..4000.0,
        loss_prob in 0.0f64..1.0,
        shock_at in 0.0f64..4000.0,
        shock_cents in 0.0f64..120.0,
    ) {
        use crowdlearn_runtime::{FaultEpisode, FaultPlan, MetricsTap};

        let plan = FaultPlan::new(plan_seed, vec![
            FaultEpisode::PlatformOutage {
                from_secs: outage_from,
                until_secs: outage_from + outage_len,
            },
            FaultEpisode::WorkerAttrition {
                fraction: attrition_fraction,
                from_secs: attrition_from,
                until_secs: attrition_from + 1200.0,
            },
            FaultEpisode::AnswerLoss {
                prob: loss_prob,
                from_secs: loss_from,
                until_secs: loss_from + 1800.0,
            },
            FaultEpisode::BudgetShock {
                at_secs: shock_at,
                cents: shock_cents,
            },
        ]);
        let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(seed ^ 0xfa));
        let stream = SensingCycleStream::new(&dataset, 8, 5);
        let runtime = RuntimeConfig::paper()
            .with_inflight_window(3)
            .with_hit_timeout(Some(150.0), 2)
            .with_faults(plan);
        let mut system =
            PipelinedSystem::new(&dataset, small_config(seed, 120.0), runtime);
        system.attach_metrics_tap(MetricsTap::new());
        let observed_at_boot = system.system().delay_observations();
        let run = system.run(&dataset, &stream);

        // Completeness: the run drained (or `run` would have panicked on
        // the parked/waiting/in-flight drain assertions), and every cycle
        // finalized in order.
        prop_assert_eq!(run.outcomes.len(), 8);
        for (k, outcome) in run.outcomes.iter().enumerate() {
            prop_assert_eq!(outcome.cycle, k);
        }

        // Conservation: posted attempts (first posts + reposts) map
        // one-to-one onto delay observations.
        let tap = run.metrics.as_ref().expect("tap was attached");
        let attempts = tap.hits_posted() + tap.hits_reposted();
        let observed = system.system().delay_observations() - observed_at_boot;
        prop_assert_eq!(
            observed, attempts,
            "posted {} attempts but the learner saw {} observations",
            attempts, observed
        );

        // The ladder's own accounting stays coherent.
        prop_assert!(tap.hits_abandoned() <= tap.hits_timed_out());
        prop_assert_eq!(tap.degraded_cycles(), run.degraded_cycles);
        prop_assert!(run.degraded_cycles <= 8);
    }
}
