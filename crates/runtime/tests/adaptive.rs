//! Behavioral tests for the adaptive window controller: on a platform with
//! *exact* (zero-noise, uniform-speed) delays, the controller's moves are
//! fully predictable, so the tests pin both directions of the decision
//! rule — widening under a slow crowd with a backlog, narrowing once fast
//! contexts dominate the rolling quantile and the backlog drains — plus
//! the guarantees the policy makes regardless of profile: the effective
//! window never leaves `[min, max]`, `Static` never moves, and a collapsed
//! `Adaptive { min == max }` range cannot move either.

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_crowd::{
    DelayModel, IncentiveLevel, Platform, PlatformConfig, Worker, WorkerId, WorkerPool,
};
use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream, TemporalContext};
use crowdlearn_runtime::{PipelinedSystem, RunBound, RuntimeConfig, RuntimeReport, WindowPolicy};

/// Morning/afternoon HITs take `slow_secs` exactly, evening/midnight HITs
/// `fast_secs` exactly — contexts rotate round-robin per cycle, so the
/// stream alternates two slow cycles with two fast ones.
fn diurnal_delay_model(slow_secs: f64, fast_secs: f64) -> DelayModel {
    DelayModel::from_table(
        [
            [slow_secs; IncentiveLevel::COUNT],
            [slow_secs; IncentiveLevel::COUNT],
            [fast_secs; IncentiveLevel::COUNT],
            [fast_secs; IncentiveLevel::COUNT],
        ],
        0.0,
    )
}

fn uniform_pool(size: usize) -> WorkerPool {
    let workers = (0..size)
        .map(|i| Worker::from_traits(WorkerId(i as u32), 0.85, 1.0, [1.0; TemporalContext::COUNT]))
        .collect();
    WorkerPool::from_workers(workers)
}

fn adaptive_run(policy: WindowPolicy, cycles: usize) -> RuntimeReport {
    let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(11));
    let stream = SensingCycleStream::new(&dataset, cycles, 4);
    let platform_config = PlatformConfig::paper()
        .with_seed(23)
        .with_delay_model(diurnal_delay_model(1200.0, 30.0));
    let platform = Platform::with_pool(platform_config, uniform_pool(80));
    let system = CrowdLearnSystem::with_platform(&dataset, CrowdLearnConfig::paper(), platform);
    let runtime = RuntimeConfig::paper().with_window_policy(policy);
    let mut pipelined = PipelinedSystem::from_system(system, runtime);
    pipelined.run(&dataset, &stream)
}

/// An aggressive controller over `[1, 3]`: watch the p25 delay, narrow
/// below 0.1 cycle periods (60 s), widen above 0.5 (300 s), no cooldown.
fn test_policy() -> WindowPolicy {
    WindowPolicy::Adaptive {
        min: 1,
        max: 3,
        percentile: 0.25,
        low_threshold: 0.1,
        high_threshold: 0.5,
        cooldown_cycles: 0,
    }
}

#[test]
fn controller_widens_under_backlog_and_narrows_when_the_crowd_speeds_up() {
    let run = adaptive_run(test_policy(), 16);

    // One trajectory entry per cycle close.
    assert_eq!(run.window_trajectory.len(), 16);
    assert!(
        run.window_trajectory.iter().all(|&w| (1..=3).contains(&w)),
        "effective window must stay within [min, max]: {:?}",
        run.window_trajectory
    );

    // Widening: the slow cycles (1200 s per serialized query against a
    // 600 s cadence) pile arrivals behind a window of 1, and the p25 delay
    // starts at 1200 s >> 300 s, so the controller must open the window.
    let peak = *run.window_trajectory.iter().max().expect("non-empty");
    assert!(
        peak > 1,
        "a 2x-over-cadence crowd with a backlog must widen the window: {:?}",
        run.window_trajectory
    );

    // Narrowing: once the fast contexts (30 s) have fed a quarter of the
    // samples, the p25 drops under 60 s; when the arrival backlog has also
    // drained, the controller must hand back the unneeded overlap.
    let last = *run.window_trajectory.last().expect("non-empty");
    assert!(
        last < peak,
        "after the crowd speeds up and the backlog drains, the window must narrow: {:?}",
        run.window_trajectory
    );

    // The adaptive policy always reports its tap (auto-attached at start).
    assert!(
        run.metrics.is_some(),
        "adaptive runs must hand the controlling tap back on the report"
    );
}

#[test]
fn static_policy_trajectory_is_constant() {
    let run = adaptive_run(WindowPolicy::Static(2), 8);
    assert_eq!(run.window_trajectory, vec![2; 8]);
    assert!(
        run.metrics.is_none(),
        "a static run without an attached tap reports no metrics"
    );
}

#[test]
fn collapsed_adaptive_range_cannot_move() {
    // min == max pins the window even under the aggressive thresholds and
    // the strongly bimodal delay profile.
    let run = adaptive_run(
        WindowPolicy::Adaptive {
            min: 2,
            max: 2,
            percentile: 0.25,
            low_threshold: 0.1,
            high_threshold: 0.5,
            cooldown_cycles: 0,
        },
        8,
    );
    assert_eq!(run.window_trajectory, vec![2; 8]);
}

#[test]
fn cooldown_spaces_controller_moves_apart() {
    // Same fixture, but every move must be followed by >= 2 held closes.
    let run = adaptive_run(
        WindowPolicy::Adaptive {
            min: 1,
            max: 3,
            percentile: 0.25,
            low_threshold: 0.1,
            high_threshold: 0.5,
            cooldown_cycles: 2,
        },
        16,
    );
    let moves: Vec<usize> = run
        .window_trajectory
        .windows(2)
        .enumerate()
        .filter(|(_, w)| w[0] != w[1])
        .map(|(i, _)| i)
        .collect();
    assert!(
        !moves.is_empty(),
        "the bimodal profile must still move the window: {:?}",
        run.window_trajectory
    );
    for pair in moves.windows(2) {
        assert!(
            pair[1] - pair[0] > 2,
            "moves at closes {} and {} violate the 2-cycle cooldown: {:?}",
            pair[0],
            pair[1],
            run.window_trajectory
        );
    }
}

#[test]
fn effective_window_is_pollable_between_slices() {
    let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(11));
    let stream = SensingCycleStream::new(&dataset, 16, 4);
    let platform_config = PlatformConfig::paper()
        .with_seed(23)
        .with_delay_model(diurnal_delay_model(1200.0, 30.0));
    let platform = Platform::with_pool(platform_config, uniform_pool(80));
    let system = CrowdLearnSystem::with_platform(&dataset, CrowdLearnConfig::paper(), platform);
    let mut pipelined = PipelinedSystem::from_system(
        system,
        RuntimeConfig::paper().with_window_policy(test_policy()),
    );

    assert_eq!(pipelined.effective_window(), None, "not running yet");
    let mut seen = Vec::new();
    let mut report = None;
    while report.is_none() {
        report = pipelined.run_until(&dataset, &stream, RunBound::Events(25));
        if let Some(window) = pipelined.effective_window() {
            seen.push(window);
        }
    }
    let report = report.expect("loop exits with the report");
    assert!(
        seen.iter().any(|&w| w > 1),
        "polled windows must show the controller opening up: {seen:?}"
    );
    // The polled view and the trajectory agree on the peak window.
    let polled_peak = seen.iter().max().copied().unwrap_or(1);
    let trajectory_peak = report.window_trajectory.iter().max().copied().unwrap();
    assert_eq!(polled_peak, trajectory_peak);
    assert_eq!(pipelined.effective_window(), None, "drained run is idle");
}
