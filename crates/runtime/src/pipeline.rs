//! The pipelined CrowdLearn system: the paper's closed loop re-driven as a
//! discrete-event simulation so crowd waits overlap computation.

use crate::{EventKind, EventQueue, HitBoard, HitId, RuntimeConfig, VirtualClock};
use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem, CycleOutcome, CycleWork, SchemeReport};
use crowdlearn_crowd::IncentiveLevel;
use crowdlearn_dataset::{Dataset, SensingCycle, SensingCycleStream};
use std::collections::{BTreeMap, VecDeque};

/// What a pipelined run produced, beyond the usual quality report: the
/// virtual-time makespan and the pipelining/repost telemetry.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// The run's quality report (accuracy, F1, spend) — same shape the
    /// blocking system produces.
    pub report: SchemeReport,
    /// Per-cycle outcomes in cycle order, for label-level comparison
    /// against the blocking system.
    pub outcomes: Vec<CycleOutcome>,
    /// Virtual time at which the last cycle finalized.
    pub makespan_secs: f64,
    /// Virtual completion time of each cycle, in cycle order.
    pub completed_at_secs: Vec<f64>,
    /// Events the loop processed.
    pub events_processed: u64,
    /// Most sensing cycles ever simultaneously admitted.
    pub peak_cycles_in_flight: usize,
    /// Most HITs ever simultaneously in flight.
    pub peak_hits_in_flight: usize,
    /// HITs that reached their timeout.
    pub timeouts: u64,
    /// Timed-out HITs that were reposted.
    pub reposts: u64,
}

/// The virtual-time makespan of the *blocking* system on the same
/// outcomes: each cycle starts at the later of its arrival and the previous
/// cycle's completion, then serially waits out inference plus every crowd
/// answer (the `run_cycle` loop's behaviour, timed).
pub fn blocking_makespan_secs(outcomes: &[CycleOutcome], cycle_period_secs: f64) -> f64 {
    let mut t = 0.0f64;
    for (k, outcome) in outcomes.iter().enumerate() {
        let arrival = k as f64 * cycle_period_secs;
        let queries = outcome.images.iter().filter(|i| i.queried).count() as f64;
        let crowd_sum = outcome.crowd_delay_secs.unwrap_or(0.0) * queries;
        t = arrival.max(t) + outcome.algorithm_delay_secs + crowd_sum;
    }
    t
}

/// The CrowdLearn closed loop driven by an event queue over virtual time.
///
/// Within a cycle, queries chain exactly as the blocking system issues
/// them — the next query posts only once the previous answer is absorbed,
/// because IPD's choice for query *n+1* depends on the delay observed for
/// query *n*. Pipelining comes from *cycles overlapping*: while cycle `k`'s
/// crowd answers are pending, cycles `k+1..k+window-1` arrive, run
/// inference, and post their own queries. With `inflight_window == 1` the
/// event loop degenerates to the blocking system's exact module-call order,
/// which is what the golden test pins: identical per-image labels, cycle by
/// cycle.
pub struct PipelinedSystem {
    system: CrowdLearnSystem,
    config: RuntimeConfig,
}

impl PipelinedSystem {
    /// Boots the underlying [`CrowdLearnSystem`] (committee training, CQC
    /// fit, bandit warm-up — identical to the blocking constructor) under
    /// `runtime` scheduling.
    pub fn new(dataset: &Dataset, config: CrowdLearnConfig, runtime: RuntimeConfig) -> Self {
        runtime.validate();
        Self {
            system: CrowdLearnSystem::new(dataset, config),
            config: runtime,
        }
    }

    /// Wraps an already-booted system.
    pub fn from_system(system: CrowdLearnSystem, runtime: RuntimeConfig) -> Self {
        runtime.validate();
        Self {
            system,
            config: runtime,
        }
    }

    /// The runtime configuration.
    pub fn runtime_config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The underlying system.
    pub fn system(&self) -> &CrowdLearnSystem {
        &self.system
    }

    /// Runs the whole stream through the event loop and reports quality
    /// plus virtual-time telemetry.
    pub fn run(&mut self, dataset: &Dataset, stream: &SensingCycleStream) -> RuntimeReport {
        let driver = Driver {
            system: &mut self.system,
            config: self.config,
            dataset,
            cycles: stream.cycles(),
            clock: VirtualClock::new(),
            queue: EventQueue::new(),
            board: HitBoard::new(),
            active: BTreeMap::new(),
            waiting: VecDeque::new(),
            slots_used: 0,
            outcomes: (0..stream.cycles().len()).map(|_| None).collect(),
            completed_at_secs: vec![0.0; stream.cycles().len()],
            peak_cycles_in_flight: 0,
            timeouts: 0,
            reposts: 0,
        };
        driver.run()
    }
}

/// All the mutable state of one event-loop execution.
struct Driver<'a> {
    system: &'a mut CrowdLearnSystem,
    config: RuntimeConfig,
    dataset: &'a Dataset,
    cycles: &'a [SensingCycle],
    clock: VirtualClock,
    queue: EventQueue,
    board: HitBoard,
    /// Cycles whose inference has completed and whose queries are live.
    active: BTreeMap<usize, CycleWork>,
    /// Cycles that have arrived but exceed the in-flight window.
    waiting: VecDeque<usize>,
    /// Cycles admitted (inference scheduled or active) and not yet retired.
    slots_used: usize,
    outcomes: Vec<Option<CycleOutcome>>,
    completed_at_secs: Vec<f64>,
    peak_cycles_in_flight: usize,
    timeouts: u64,
    reposts: u64,
}

impl Driver<'_> {
    fn run(mut self) -> RuntimeReport {
        for k in 0..self.cycles.len() {
            self.queue.schedule(
                k as f64 * self.config.cycle_period_secs,
                EventKind::CycleArrival { cycle: k },
            );
        }

        let mut events = 0u64;
        while let Some(event) = self.queue.pop() {
            self.clock.advance_to(event.at_secs);
            events += 1;
            match event.kind {
                EventKind::CycleArrival { cycle } => {
                    self.waiting.push_back(cycle);
                    self.try_admit();
                }
                EventKind::InferenceDone { cycle } => {
                    let work = self.system.start_cycle(&self.cycles[cycle], self.dataset);
                    self.active.insert(cycle, work);
                    self.peak_cycles_in_flight = self.peak_cycles_in_flight.max(self.active.len());
                    self.post_or_finalize(cycle);
                }
                // Informational marker emitted when a HIT goes up; the
                // posting itself happened when it was scheduled.
                EventKind::HitPosted { .. } => {}
                EventKind::HitAnswered { cycle, hit } => self.on_answered(cycle, hit),
                EventKind::HitTimedOut { cycle, hit } => self.on_timed_out(cycle, hit),
                EventKind::RetrainDone { cycle } => {
                    let work = self
                        .active
                        .remove(&cycle)
                        .expect("invariant: RetrainDone only fires for an active cycle");
                    let outcome =
                        self.system
                            .finalize_cycle(work, &self.cycles[cycle], self.dataset);
                    self.completed_at_secs[cycle] = self.clock.now_secs();
                    self.outcomes[cycle] = Some(outcome);
                    self.slots_used -= 1;
                    self.try_admit();
                }
            }
        }

        assert!(self.waiting.is_empty(), "cycles left waiting at drain");
        assert_eq!(self.board.in_flight(), 0, "HITs left in flight at drain");
        let outcomes: Vec<CycleOutcome> = self
            .outcomes
            .into_iter()
            .map(|o| {
                o.expect("invariant: every admitted cycle is finalized before the queue drains")
            })
            .collect();
        let mut report = SchemeReport::new("CrowdLearn (pipelined)");
        for outcome in &outcomes {
            report.record_cycle(outcome);
        }
        let makespan_secs = self.completed_at_secs.iter().copied().fold(0.0, f64::max);
        RuntimeReport {
            report,
            outcomes,
            makespan_secs,
            completed_at_secs: self.completed_at_secs,
            events_processed: events,
            peak_cycles_in_flight: self.peak_cycles_in_flight,
            peak_hits_in_flight: self.board.peak_in_flight(),
            timeouts: self.timeouts,
            reposts: self.reposts,
        }
    }

    /// Admits waiting cycles while the pipeline window has room, scheduling
    /// each one's `InferenceDone` after the committee's execution delay.
    fn try_admit(&mut self) {
        while self.slots_used < self.config.inflight_window {
            let Some(k) = self.waiting.pop_front() else {
                return;
            };
            self.slots_used += 1;
            let batch = self.cycles[k].image_ids.len();
            let delay = self.system.algorithm_delay_secs(batch, k as u64);
            self.queue.schedule(
                self.clock.now_secs() + delay,
                EventKind::InferenceDone { cycle: k },
            );
        }
    }

    /// Posts cycle `k`'s next query, or — when nothing is left to post and
    /// nothing is outstanding — closes the cycle out.
    fn post_or_finalize(&mut self, k: usize) {
        let now = self.clock.now_secs();
        let work = self
            .active
            .get_mut(&k)
            .expect("invariant: HIT events only target active cycles");
        match self
            .system
            .post_next_query(work, &self.cycles[k], self.dataset)
        {
            Some(posted) => {
                let delay = posted.pending.completion_delay_secs();
                let hit = self.board.post(
                    k,
                    posted.image_index,
                    posted.incentive,
                    now,
                    1,
                    posted.pending,
                );
                self.schedule_hit_events(k, hit, now, delay);
            }
            None => {
                if work.outstanding() == 0 {
                    self.queue
                        .schedule(now, EventKind::RetrainDone { cycle: k });
                }
            }
        }
    }

    /// Emits the `HitPosted` marker and schedules the HIT's resolution:
    /// `HitAnswered` when every worker beats the timeout, `HitTimedOut`
    /// otherwise. Exactly one resolution event is scheduled per posted HIT.
    fn schedule_hit_events(&mut self, k: usize, hit: HitId, posted_at: f64, delay: f64) {
        self.queue
            .schedule(posted_at, EventKind::HitPosted { cycle: k, hit });
        match self.config.hit_timeout_secs {
            Some(timeout) if delay > timeout => self.queue.schedule(
                posted_at + timeout,
                EventKind::HitTimedOut { cycle: k, hit },
            ),
            _ => self
                .queue
                .schedule(posted_at + delay, EventKind::HitAnswered { cycle: k, hit }),
        };
    }

    fn on_answered(&mut self, k: usize, hit: HitId) {
        let inflight = self.board.take(hit);
        debug_assert_eq!(inflight.cycle, k);
        let response = inflight.pending.into_response();
        let timely = self.system.answer_is_timely(&response);
        let work = self
            .active
            .get_mut(&k)
            .expect("invariant: HIT events only target active cycles");
        self.system
            .absorb_answer(work, inflight.image_index, &response, timely);
        self.post_or_finalize(k);
    }

    /// A HIT expired. If attempts and budget allow, repost it at an
    /// escalated incentive (the expired attempt feeds IPD a censored
    /// delay observation — all we learned is "longer than the timeout").
    /// Otherwise absorb the eventual answer as a late, learning-only
    /// observation: it still updates Hedge weights and retraining but can
    /// never offload its image.
    fn on_timed_out(&mut self, k: usize, hit: HitId) {
        self.timeouts += 1;
        let timeout = self
            .config
            .hit_timeout_secs
            .expect("invariant: HitTimedOut is only scheduled when a timeout is configured");
        let inflight = self.board.take(hit);
        debug_assert_eq!(inflight.cycle, k);
        let now = self.clock.now_secs();
        let work = self
            .active
            .get_mut(&k)
            .expect("invariant: HIT events only target active cycles");

        if inflight.attempt < self.config.max_post_attempts {
            let level = if self.config.escalate_on_repost {
                escalate(inflight.incentive)
            } else {
                inflight.incentive
            };
            if let Some(posted) = self.system.repost_query(
                work,
                &self.cycles[k],
                self.dataset,
                inflight.image_index,
                level,
            ) {
                self.reposts += 1;
                self.system.observe_crowd_delay(
                    inflight.pending.context(),
                    inflight.incentive,
                    timeout,
                );
                let delay = posted.pending.completion_delay_secs();
                let new_hit = self.board.post(
                    k,
                    posted.image_index,
                    posted.incentive,
                    now,
                    inflight.attempt + 1,
                    posted.pending,
                );
                self.schedule_hit_events(k, new_hit, now, delay);
                return;
            }
        }

        // Out of attempts (or budget): wait the expired HIT out after all.
        let response = inflight.pending.into_response();
        let work = self
            .active
            .get_mut(&k)
            .expect("invariant: HIT events only target active cycles");
        self.system
            .absorb_answer(work, inflight.image_index, &response, false);
        self.post_or_finalize(k);
    }
}

/// One incentive level up, saturating at the most generous.
fn escalate(level: IncentiveLevel) -> IncentiveLevel {
    IncentiveLevel::from_index((level.index() + 1).min(IncentiveLevel::COUNT - 1))
}
