//! The pipelined CrowdLearn system: the paper's closed loop re-driven as a
//! discrete-event simulation so crowd waits overlap computation.

use crate::faults::{BreakerState, FaultEpisode, FaultInjector};
use crate::fleet::FleetHook;
use crate::{
    EventKind, EventQueue, HitBoard, HitId, MetricKind, MetricRecord, MetricsSink, MetricsTap,
    RuntimeConfig, RuntimeSnapshot, SnapshotError, VirtualClock, WindowPolicy,
};
use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem, CycleOutcome, CycleWork, SchemeReport};
use crowdlearn_crowd::{IncentiveLevel, SubmitterId};
use crowdlearn_dataset::{Dataset, SensingCycle, SensingCycleStream};
use serde::binary::{Decode, DecodeError, Encode, Reader};
use std::collections::{BTreeMap, VecDeque};

/// What a pipelined run produced, beyond the usual quality report: the
/// virtual-time makespan and the pipelining/repost telemetry.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// The run's quality report (accuracy, F1, spend) — same shape the
    /// blocking system produces.
    pub report: SchemeReport,
    /// Per-cycle outcomes in cycle order, for label-level comparison
    /// against the blocking system.
    pub outcomes: Vec<CycleOutcome>,
    /// Virtual time at which the last cycle finalized.
    pub makespan_secs: f64,
    /// Virtual completion time of each cycle, in cycle order.
    pub completed_at_secs: Vec<f64>,
    /// Events the loop processed.
    pub events_processed: u64,
    /// Most sensing cycles ever simultaneously admitted.
    pub peak_cycles_in_flight: usize,
    /// Most HITs ever simultaneously in flight.
    pub peak_hits_in_flight: usize,
    /// HITs that reached their timeout.
    pub timeouts: u64,
    /// Timed-out HITs that were reposted.
    pub reposts: u64,
    /// HIT posts and reposts the crowd path refused while unavailable
    /// (breaker open or a platform outage active). Zero on a fault-free
    /// run.
    pub posts_rejected: u64,
    /// Cycles that fell back to AI-only labeling while the breaker was
    /// open (the degradation ladder's bottom rung). Zero on a fault-free
    /// run.
    pub degraded_cycles: u64,
    /// The run's streaming metrics, when a [`MetricsTap`] was attached
    /// (via [`PipelinedSystem::attach_metrics_tap`]) for the whole run.
    /// Always `Some` under an adaptive window policy — the controller
    /// needs the tap, so [`PipelinedSystem::start`] attaches one.
    pub metrics: Option<MetricsTap>,
    /// The effective in-flight window after each `CycleClosed` decision,
    /// in cycle-close order — the window controller's trajectory. Constant
    /// under [`WindowPolicy::Static`].
    pub window_trajectory: Vec<usize>,
}

/// The window controller's most recent move at a `CycleClosed` boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowDecision {
    /// No adjustment: static policy, cooldown, hysteresis dead zone, or a
    /// bound was hit.
    Held,
    /// The effective window grew by one cycle.
    Widened,
    /// The effective window shrank by one cycle.
    Narrowed,
}

impl Encode for WindowDecision {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WindowDecision::Held => 0u8.encode(out),
            WindowDecision::Widened => 1u8.encode(out),
            WindowDecision::Narrowed => 2u8.encode(out),
        }
    }
}

impl Decode for WindowDecision {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(WindowDecision::Held),
            1 => Ok(WindowDecision::Widened),
            2 => Ok(WindowDecision::Narrowed),
            _ => Err(DecodeError::Invalid),
        }
    }
}

/// The virtual-time makespan of the *blocking* system on the same
/// outcomes: each cycle starts at the later of its arrival and the previous
/// cycle's completion, then serially waits out inference plus every crowd
/// answer (the `run_cycle` loop's behaviour, timed).
///
/// The serial crowd wait is the *exact* sum of the cycle's per-query
/// delays ([`CycleOutcome::query_delay_secs`]), not the mean-times-count
/// reconstruction — `(Σdᵢ/n)·n` differs from `Σdᵢ` in the last float bits,
/// which is enough to spoil byte-exact speedup comparisons.
pub fn blocking_makespan_secs(outcomes: &[CycleOutcome], cycle_period_secs: f64) -> f64 {
    let mut t = 0.0f64;
    for (k, outcome) in outcomes.iter().enumerate() {
        let arrival = k as f64 * cycle_period_secs;
        let crowd_sum: f64 = outcome.query_delay_secs.iter().sum();
        t = arrival.max(t) + outcome.algorithm_delay_secs + crowd_sum;
    }
    t
}

/// How far [`PipelinedSystem::run_until`] drives the event loop before
/// yielding control back to the caller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunBound {
    /// Process at most this many further events.
    Events(u64),
    /// Process events due at or before this virtual time (seconds).
    VirtualTime(f64),
}

/// The CrowdLearn closed loop driven by an event queue over virtual time.
///
/// Within a cycle, queries chain exactly as the blocking system issues
/// them — the next query posts only once the previous answer is absorbed,
/// because IPD's choice for query *n+1* depends on the delay observed for
/// query *n*. Pipelining comes from *cycles overlapping*: while cycle `k`'s
/// crowd answers are pending, cycles `k+1..k+window-1` arrive, run
/// inference, and post their own queries. With `WindowPolicy::Static(1)`
/// the event loop degenerates to the blocking system's exact module-call
/// order, which is what the golden test pins: identical per-image labels,
/// cycle by cycle. Under [`WindowPolicy::Adaptive`] the effective window
/// itself moves at `CycleClosed` boundaries, steered by the metrics tap
/// (see [`RuntimeConfig`] and DESIGN.md "Adaptive window control").
///
/// Execution is reentrant: [`PipelinedSystem::run`] is a convenience over
/// [`PipelinedSystem::step`]/[`PipelinedSystem::run_until`], which pause at
/// any event boundary. A paused system can be checkpointed with
/// [`PipelinedSystem::snapshot`] and later rebuilt — in another process —
/// with [`PipelinedSystem::resume`]; the resumed run replays the remaining
/// events identically, byte for byte.
pub struct PipelinedSystem {
    system: CrowdLearnSystem,
    config: RuntimeConfig,
    exec: Option<ExecState>,
    tap: Option<MetricsTap>,
}

impl PipelinedSystem {
    /// Boots the underlying [`CrowdLearnSystem`] (committee training, CQC
    /// fit, bandit warm-up — identical to the blocking constructor) under
    /// `runtime` scheduling.
    pub fn new(dataset: &Dataset, config: CrowdLearnConfig, runtime: RuntimeConfig) -> Self {
        runtime.validate();
        Self {
            system: CrowdLearnSystem::new(dataset, config),
            config: runtime,
            exec: None,
            tap: None,
        }
    }

    /// Wraps an already-booted system.
    pub fn from_system(system: CrowdLearnSystem, runtime: RuntimeConfig) -> Self {
        runtime.validate();
        Self {
            system,
            config: runtime,
            exec: None,
            tap: None,
        }
    }

    /// Attaches a streaming [`MetricsTap`]: from here on the driver feeds
    /// it one [`MetricRecord`] per event-boundary transition. Attach
    /// *before* the first [`PipelinedSystem::step`] to observe the whole
    /// run. The tap is part of the runtime state — it rides inside
    /// [`PipelinedSystem::snapshot`], and [`PipelinedSystem::run`] hands it
    /// back on [`RuntimeReport::metrics`]. Replaces any previous tap.
    pub fn attach_metrics_tap(&mut self, tap: MetricsTap) {
        self.tap = Some(tap);
    }

    /// The attached metrics tap, for polling between
    /// [`PipelinedSystem::run_until`] slices.
    pub fn metrics_tap(&self) -> Option<&MetricsTap> {
        self.tap.as_ref()
    }

    /// Detaches and returns the metrics tap, stopping the stream.
    pub fn take_metrics_tap(&mut self) -> Option<MetricsTap> {
        self.tap.take()
    }

    /// The runtime configuration.
    pub fn runtime_config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The underlying system.
    pub fn system(&self) -> &CrowdLearnSystem {
        &self.system
    }

    /// Whether an execution is in progress (started and not yet drained
    /// into a report).
    pub fn is_running(&self) -> bool {
        self.exec.is_some()
    }

    /// Events processed so far in the current execution, or `None` when no
    /// execution is in progress.
    pub fn events_processed(&self) -> Option<u64> {
        self.exec.as_ref().map(|e| e.events_processed)
    }

    /// The current virtual time, or `None` when no execution is in
    /// progress.
    pub fn virtual_now_secs(&self) -> Option<f64> {
        self.exec.as_ref().map(|e| e.clock.now_secs())
    }

    /// Begins an execution over `stream` if none is in progress: schedules
    /// every cycle's arrival on the sensing cadence. Idempotent while an
    /// execution is running.
    ///
    /// An adaptive window policy is driven by the metrics tap, so when the
    /// caller did not attach one, `start` attaches the default
    /// [`MetricsTap::new`] — adaptive runs therefore always report
    /// `Some` on [`RuntimeReport::metrics`]. (Detaching the tap mid-run
    /// freezes the controller at its current window.)
    pub fn start(&mut self, stream: &SensingCycleStream) {
        if self.exec.is_none() {
            if self.config.window_policy.is_adaptive() && self.tap.is_none() {
                self.tap = Some(MetricsTap::new());
            }
            self.exec = Some(ExecState::start(&self.config, stream.cycles().len()));
        }
    }

    /// The controller's current effective in-flight window, or `None` when
    /// no execution is in progress. Constant under
    /// [`WindowPolicy::Static`]; poll between
    /// [`PipelinedSystem::run_until`] slices to watch an adaptive
    /// controller move.
    pub fn effective_window(&self) -> Option<usize> {
        self.exec.as_ref().map(|e| e.window)
    }

    /// The window controller's decision at the most recent `CycleClosed`
    /// boundary, or `None` when no execution is in progress.
    pub fn last_window_decision(&self) -> Option<WindowDecision> {
        self.exec.as_ref().map(|e| e.last_window_decision)
    }

    /// The crowd-path circuit breaker's current state, or `None` when no
    /// execution is in progress. `Closed` on every fault-free run; poll
    /// between [`PipelinedSystem::run_until`] slices to watch the
    /// degradation ladder engage under a [`crate::FaultPlan`].
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.exec.as_ref().map(|e| e.breaker)
    }

    /// Cycles currently parked mid-crowd behind an open breaker, waiting
    /// for recovery to resume posting; `None` when no execution is in
    /// progress.
    pub fn parked_cycles(&self) -> Option<usize> {
        self.exec.as_ref().map(|e| e.parked.len())
    }

    /// Processes the next event. Returns `false` when the event queue has
    /// drained — the execution is complete and the next
    /// [`PipelinedSystem::run_until`] (or [`PipelinedSystem::run`]) call
    /// produces the report.
    ///
    /// # Panics
    ///
    /// Panics if `stream` has a different cycle count than the stream this
    /// execution started (or resumed) with.
    pub fn step(&mut self, dataset: &Dataset, stream: &SensingCycleStream) -> bool {
        self.step_with(dataset, stream, None)
    }

    /// [`PipelinedSystem::step`] with an optional fleet context: when a
    /// [`crate::FleetOrchestrator`] drives this system as a shard, the hook
    /// layers shared-worker-pool contention onto every posted HIT and books
    /// the spend into the fleet ledger. `None` (the standalone path) is
    /// byte-identical to the pre-fleet loop.
    pub(crate) fn step_with(
        &mut self,
        dataset: &Dataset,
        stream: &SensingCycleStream,
        fleet: Option<FleetHook<'_>>,
    ) -> bool {
        self.start(stream);
        let exec = self
            .exec
            .as_mut()
            .expect("invariant: start() installs the execution state");
        assert_eq!(
            stream.cycles().len(),
            exec.outcomes.len(),
            "stream/execution cycle-count mismatch"
        );
        let Some(event) = exec.queue.pop() else {
            return false;
        };
        exec.events_processed += 1;
        exec.clock.advance_to(event.at_secs);
        Driver {
            system: &mut self.system,
            config: &self.config,
            dataset,
            cycles: stream.cycles(),
            exec,
            tap: self.tap.as_mut(),
            fleet,
        }
        .handle(event.kind);
        true
    }

    /// Virtual due time of the next pending event, or `None` when no
    /// execution is in progress or its queue has drained. The fleet
    /// orchestrator merges shard queues by `(due, shard index)` off this.
    pub(crate) fn next_event_due_secs(&self) -> Option<f64> {
        self.exec.as_ref()?.queue.peek().map(|e| e.at_secs)
    }

    /// Tags the underlying platform with the shard's identity so
    /// `PlatformStats` attributes worker-seconds per shard.
    pub(crate) fn set_platform_submitter(&mut self, submitter: SubmitterId) {
        self.system.set_platform_submitter(submitter);
    }

    /// Drives the event loop until `bound` is exhausted or the queue
    /// drains. Returns the report when the execution completes, `None` when
    /// it pauses at an event boundary — ready for more `run_until` calls or
    /// a [`PipelinedSystem::snapshot`].
    pub fn run_until(
        &mut self,
        dataset: &Dataset,
        stream: &SensingCycleStream,
        bound: RunBound,
    ) -> Option<RuntimeReport> {
        self.start(stream);
        let mut remaining = match bound {
            RunBound::Events(n) => n,
            RunBound::VirtualTime(_) => u64::MAX,
        };
        loop {
            {
                let exec = self
                    .exec
                    .as_ref()
                    .expect("invariant: start() installs the execution state");
                let Some(next) = exec.queue.peek() else {
                    break;
                };
                if remaining == 0 {
                    return None;
                }
                if let RunBound::VirtualTime(t) = bound {
                    if next.at_secs > t {
                        return None;
                    }
                }
            }
            let stepped = self.step(dataset, stream);
            debug_assert!(stepped, "peeked event must pop");
            remaining -= 1;
        }
        Some(self.finish())
    }

    /// Runs the whole stream through the event loop and reports quality
    /// plus virtual-time telemetry.
    pub fn run(&mut self, dataset: &Dataset, stream: &SensingCycleStream) -> RuntimeReport {
        self.run_until(dataset, stream, RunBound::Events(u64::MAX))
            .expect("invariant: an unbounded run drains the event queue")
    }

    /// Runs the whole stream like [`PipelinedSystem::run`], but hands a
    /// fresh [`RuntimeSnapshot`] to `store` every `interval_events` events —
    /// cheap insurance for long runs (and long [`crate::ParallelSweep`]
    /// points, via [`crate::SweepCheckpoints`]): if the process dies, the
    /// run resumes from the latest stored checkpoint and, snapshots being
    /// byte-identical continuations, finishes with exactly the report the
    /// uninterrupted run would have produced.
    ///
    /// # Panics
    ///
    /// Panics if `interval_events` is zero.
    pub fn run_auto_snapshotted<F>(
        &mut self,
        dataset: &Dataset,
        stream: &SensingCycleStream,
        interval_events: u64,
        mut store: F,
    ) -> Result<RuntimeReport, SnapshotError>
    where
        F: FnMut(RuntimeSnapshot),
    {
        assert!(interval_events > 0, "snapshot interval must be positive");
        loop {
            match self.run_until(dataset, stream, RunBound::Events(interval_events)) {
                Some(report) => return Ok(report),
                None => store(self.snapshot()?),
            }
        }
    }

    /// Closes out a drained execution into its report. Crate-visible so the
    /// fleet orchestrator can finalize its shards.
    pub(crate) fn finish(&mut self) -> RuntimeReport {
        let exec = self
            .exec
            .take()
            .expect("invariant: finish() only follows a drained execution");
        assert!(exec.waiting.is_empty(), "cycles left waiting at drain");
        assert!(exec.parked.is_empty(), "cycles left parked at drain");
        assert_eq!(exec.board.in_flight(), 0, "HITs left in flight at drain");
        let outcomes: Vec<CycleOutcome> = exec
            .outcomes
            .into_iter()
            .map(|o| {
                o.expect("invariant: every admitted cycle is finalized before the queue drains")
            })
            .collect();
        let mut report = SchemeReport::new("CrowdLearn (pipelined)");
        for outcome in &outcomes {
            report.record_cycle(outcome);
        }
        let makespan_secs = exec.completed_at_secs.iter().copied().fold(0.0, f64::max);
        RuntimeReport {
            report,
            outcomes,
            makespan_secs,
            completed_at_secs: exec.completed_at_secs,
            events_processed: exec.events_processed,
            peak_cycles_in_flight: exec.peak_cycles_in_flight,
            peak_hits_in_flight: exec.board.peak_in_flight(),
            timeouts: exec.timeouts,
            reposts: exec.reposts,
            posts_rejected: exec.posts_rejected,
            degraded_cycles: exec.degraded_cycles,
            metrics: self.tap.take(),
            window_trajectory: exec.window_trajectory,
        }
    }

    /// Serializes the whole system — learned module state plus any
    /// in-progress execution — at the current event boundary.
    ///
    /// Fails with [`SnapshotError::UnsupportedSystem`] when a component has
    /// no serialized form (non-simulated classifiers, non-checkpointable
    /// bandit policies).
    pub fn snapshot(&self) -> Result<RuntimeSnapshot, SnapshotError> {
        let mut payload = Vec::new();
        self.config.encode(&mut payload);
        self.system
            .encode_state(&mut payload)
            .map_err(SnapshotError::UnsupportedSystem)?;
        self.exec.encode(&mut payload);
        self.tap.encode(&mut payload);
        Ok(RuntimeSnapshot::seal(payload))
    }

    /// Rebuilds a system from a snapshot, against the same stream the
    /// snapshotted run was processing (the stream itself is not serialized:
    /// it regenerates deterministically from its dataset + seed, and resume
    /// cross-checks the cycle count).
    pub fn resume(
        snapshot: &RuntimeSnapshot,
        stream: &SensingCycleStream,
    ) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(snapshot.payload());
        let config = RuntimeConfig::decode(&mut r).map_err(SnapshotError::Corrupt)?;
        let system = CrowdLearnSystem::decode_state(&mut r).map_err(SnapshotError::Corrupt)?;
        let exec = Option::<ExecState>::decode(&mut r).map_err(SnapshotError::Corrupt)?;
        let tap = Option::<MetricsTap>::decode(&mut r).map_err(SnapshotError::Corrupt)?;
        if !r.is_empty() {
            return Err(SnapshotError::Corrupt(DecodeError::Invalid));
        }
        if let Some(exec) = &exec {
            if exec.outcomes.len() != stream.cycles().len() {
                return Err(SnapshotError::CycleCountMismatch {
                    expected: exec.outcomes.len(),
                    found: stream.cycles().len(),
                });
            }
        }
        Ok(Self {
            system,
            config,
            exec,
            tap,
        })
    }
}

/// All the mutable state of one event-loop execution — everything that
/// must survive a pause/snapshot for the run to continue identically.
struct ExecState {
    clock: VirtualClock,
    queue: EventQueue,
    board: HitBoard,
    /// Cycles whose inference has completed and whose queries are live.
    active: BTreeMap<usize, CycleWork>,
    /// Cycles that have arrived but exceed the in-flight window.
    waiting: VecDeque<usize>,
    /// Cycles admitted (inference scheduled or active) and not yet retired.
    slots_used: usize,
    /// The window controller's state: the current *effective* in-flight
    /// window (always `config.initial_window()` under a static policy).
    window: usize,
    /// `CycleClosed` boundaries left before the controller may move again.
    window_cooldown: u32,
    /// The controller's most recent decision.
    last_window_decision: WindowDecision,
    /// Effective window after each `CycleClosed` decision, in close order.
    window_trajectory: Vec<usize>,
    events_processed: u64,
    outcomes: Vec<Option<CycleOutcome>>,
    completed_at_secs: Vec<f64>,
    peak_cycles_in_flight: usize,
    timeouts: u64,
    reposts: u64,
    /// The run's fault injector: the configured plan plus the live
    /// position of its dedicated loss stream.
    injector: FaultInjector,
    /// The crowd-path circuit breaker (see DESIGN.md "Fault model &
    /// degradation ladder"). `Closed` for the whole of a fault-free run.
    breaker: BreakerState,
    /// The breaker's current probe backoff, in cycle periods: reset to the
    /// configured base on recovery, doubled (up to the ceiling) on every
    /// failed probe.
    breaker_backoff_cycles: u32,
    /// Cycles parked mid-crowd behind an open breaker, in park order; the
    /// probe that closes the breaker re-enters them into posting.
    parked: VecDeque<usize>,
    /// Posts and reposts refused while the crowd path was unavailable.
    posts_rejected: u64,
    /// Cycles that degraded to AI-only labeling.
    degraded_cycles: u64,
}

impl ExecState {
    /// A fresh execution: every cycle's arrival scheduled on the cadence,
    /// plus the fault plan's episode boundaries. An empty plan schedules
    /// nothing extra, so its event sequence — and therefore the whole run —
    /// is byte-identical to one with no fault machinery at all.
    fn start(config: &RuntimeConfig, n_cycles: usize) -> Self {
        let mut queue = EventQueue::new();
        for k in 0..n_cycles {
            queue.schedule(
                k as f64 * config.cycle_period_secs,
                EventKind::CycleArrival { cycle: k },
            );
        }
        for (i, episode) in config.faults.episodes().iter().enumerate() {
            queue.schedule(episode.start_secs(), EventKind::FaultStart { episode: i });
            if let Some(until) = episode.end_secs() {
                queue.schedule(until, EventKind::FaultEnd { episode: i });
            }
        }
        Self {
            clock: VirtualClock::new(),
            queue,
            board: HitBoard::new(),
            active: BTreeMap::new(),
            waiting: VecDeque::new(),
            slots_used: 0,
            window: config.initial_window(),
            window_cooldown: 0,
            last_window_decision: WindowDecision::Held,
            window_trajectory: Vec::new(),
            events_processed: 0,
            outcomes: (0..n_cycles).map(|_| None).collect(),
            completed_at_secs: vec![0.0; n_cycles],
            peak_cycles_in_flight: 0,
            timeouts: 0,
            reposts: 0,
            injector: FaultInjector::new(config.faults.clone()),
            breaker: BreakerState::Closed,
            breaker_backoff_cycles: config.breaker.base_backoff_cycles,
            parked: VecDeque::new(),
            posts_rejected: 0,
            degraded_cycles: 0,
        }
    }
}

impl Encode for ExecState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.clock.encode(out);
        self.queue.encode(out);
        self.board.encode(out);
        self.active.encode(out);
        self.waiting.encode(out);
        self.slots_used.encode(out);
        self.window.encode(out);
        self.window_cooldown.encode(out);
        self.last_window_decision.encode(out);
        self.window_trajectory.encode(out);
        self.events_processed.encode(out);
        self.outcomes.encode(out);
        self.completed_at_secs.encode(out);
        self.peak_cycles_in_flight.encode(out);
        self.timeouts.encode(out);
        self.reposts.encode(out);
        self.injector.encode(out);
        self.breaker.encode(out);
        self.breaker_backoff_cycles.encode(out);
        self.parked.encode(out);
        self.posts_rejected.encode(out);
        self.degraded_cycles.encode(out);
    }
}

impl Decode for ExecState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let state = Self {
            clock: VirtualClock::decode(r)?,
            queue: EventQueue::decode(r)?,
            board: HitBoard::decode(r)?,
            active: BTreeMap::<usize, CycleWork>::decode(r)?,
            waiting: VecDeque::<usize>::decode(r)?,
            slots_used: usize::decode(r)?,
            window: usize::decode(r)?,
            window_cooldown: u32::decode(r)?,
            last_window_decision: WindowDecision::decode(r)?,
            window_trajectory: Vec::<usize>::decode(r)?,
            events_processed: u64::decode(r)?,
            outcomes: Vec::<Option<CycleOutcome>>::decode(r)?,
            completed_at_secs: Vec::<f64>::decode(r)?,
            peak_cycles_in_flight: usize::decode(r)?,
            timeouts: u64::decode(r)?,
            reposts: u64::decode(r)?,
            injector: FaultInjector::decode(r)?,
            breaker: BreakerState::decode(r)?,
            breaker_backoff_cycles: u32::decode(r)?,
            parked: VecDeque::<usize>::decode(r)?,
            posts_rejected: u64::decode(r)?,
            degraded_cycles: u64::decode(r)?,
        };
        let n = state.outcomes.len();
        let cycle_indices_in_range = state.active.keys().all(|&k| k < n)
            && state.waiting.iter().all(|&k| k < n)
            && state.parked.iter().all(|&k| k < n)
            && state.completed_at_secs.len() == n;
        let window_ok = state.window >= 1
            && state.window_trajectory.len() <= n
            && state.window_trajectory.iter().all(|&w| w >= 1);
        let breaker_ok = state.breaker_backoff_cycles >= 1
            && (state.breaker == BreakerState::Closed || state.parked.len() <= n)
            && (state.breaker != BreakerState::Closed || state.parked.is_empty());
        if !cycle_indices_in_range
            || !window_ok
            || !breaker_ok
            || state.peak_cycles_in_flight < state.active.len()
            || state
                .completed_at_secs
                .iter()
                .any(|t| !t.is_finite() || *t < 0.0)
        {
            return Err(DecodeError::Invalid);
        }
        Ok(state)
    }
}

/// A transient view over one [`PipelinedSystem`]'s modules, inputs, and
/// execution state — the event handlers. Rebuilt per event, so the system
/// can pause (and snapshot) between any two events.
struct Driver<'a> {
    system: &'a mut CrowdLearnSystem,
    config: &'a RuntimeConfig,
    dataset: &'a Dataset,
    cycles: &'a [SensingCycle],
    exec: &'a mut ExecState,
    tap: Option<&'a mut MetricsTap>,
    /// Fleet context when this system runs as a shard: shared-pool
    /// contention deferral and fleet-ledger booking on every post.
    fleet: Option<FleetHook<'a>>,
}

impl Driver<'_> {
    /// Feeds the attached tap one record: the transition plus the
    /// instantaneous gauges sampled *after* it took effect. A single
    /// branch-on-`None` when no tap is attached, so the untapped loop pays
    /// nothing measurable (the makespan bench pins this).
    fn emit(&mut self, kind: MetricKind) {
        let Some(tap) = self.tap.as_deref_mut() else {
            return;
        };
        tap.record(&MetricRecord {
            at_secs: self.exec.clock.now_secs(),
            queue_depth: self.exec.queue.len(),
            window_occupancy: self.exec.slots_used,
            hits_in_flight: self.exec.board.in_flight(),
            kind,
        });
    }

    /// Emits the `SpendCharged` record for a just-posted HIT. The ledger
    /// lookup only happens when a tap is listening.
    fn emit_spend(&mut self, k: usize, incentive: IncentiveLevel) {
        if self.tap.is_some() {
            let remaining = self.system.remaining_budget_cents();
            self.emit(MetricKind::SpendCharged {
                cycle: k,
                cents: incentive.cents(),
                remaining_budget_cents: remaining,
            });
        }
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::CycleArrival { cycle } => {
                self.exec.waiting.push_back(cycle);
                self.try_admit();
            }
            EventKind::InferenceDone { cycle } => {
                let work = self.system.start_cycle(&self.cycles[cycle], self.dataset);
                self.exec.active.insert(cycle, work);
                self.exec.peak_cycles_in_flight =
                    self.exec.peak_cycles_in_flight.max(self.exec.active.len());
                self.post_or_finalize(cycle);
            }
            // Informational marker emitted when a HIT goes up; the
            // posting itself happened when it was scheduled.
            EventKind::HitPosted { .. } => {}
            EventKind::HitAnswered { cycle, hit } => self.on_answered(cycle, hit),
            EventKind::HitTimedOut { cycle, hit } => self.on_timed_out(cycle, hit),
            EventKind::LateAnswer { cycle, hit } => self.on_late_answer(cycle, hit),
            EventKind::RetrainDone { cycle } => {
                let work = self
                    .exec
                    .active
                    .remove(&cycle)
                    .expect("invariant: RetrainDone only fires for an active cycle");
                let outcome = self
                    .system
                    .finalize_cycle(work, &self.cycles[cycle], self.dataset);
                self.exec.completed_at_secs[cycle] = self.exec.clock.now_secs();
                let spent_cents = outcome.spent_cents;
                let queries = outcome.images.iter().filter(|i| i.queried).count();
                self.exec.outcomes[cycle] = Some(outcome);
                self.exec.slots_used -= 1;
                self.emit(MetricKind::CycleClosed {
                    cycle,
                    spent_cents,
                    queries,
                });
                self.control_window();
                self.exec.window_trajectory.push(self.exec.window);
                self.try_admit();
            }
            EventKind::FaultStart { episode } => self.on_fault_start(episode),
            EventKind::FaultEnd { episode } => self.emit(MetricKind::FaultEnded { episode }),
            EventKind::BreakerProbe => self.on_breaker_probe(),
        }
    }

    /// A fault episode takes effect. Windowed episodes act through the
    /// injector's time queries, so the event only announces them; the
    /// instantaneous [`FaultEpisode::BudgetShock`] lands here, clawing its
    /// cents back from the incentive ledger.
    fn on_fault_start(&mut self, episode: usize) {
        let kind = *self
            .exec
            .injector
            .plan()
            .episodes()
            .get(episode)
            .expect("invariant: fault events only reference plan episodes");
        if let FaultEpisode::BudgetShock { cents, .. } = kind {
            self.system.clawback_budget_cents(cents);
        }
        self.emit(MetricKind::FaultStarted { episode });
    }

    /// The first refused post while `Closed` trips the breaker: crowd
    /// posting stops, and a probe is scheduled after the current backoff.
    fn trip_breaker(&mut self, now: f64) {
        if self.exec.breaker != BreakerState::Closed {
            return;
        }
        self.exec.breaker = BreakerState::Open;
        self.emit(MetricKind::BreakerTransition {
            from: BreakerState::Closed,
            to: BreakerState::Open,
        });
        self.schedule_probe(now);
    }

    fn schedule_probe(&mut self, now: f64) {
        let backoff = f64::from(self.exec.breaker_backoff_cycles) * self.config.cycle_period_secs;
        self.exec
            .queue
            .schedule(now + backoff, EventKind::BreakerProbe);
    }

    /// The scheduled probe fires: the breaker passes through `HalfProbe`
    /// and either closes (recovery — the backoff resets and parked cycles
    /// resume posting) or re-opens with doubled backoff. Exactly one probe
    /// is in flight whenever the breaker is not `Closed`, and every outage
    /// window ends at a finite virtual time, so the machine cannot stall.
    fn on_breaker_probe(&mut self) {
        let now = self.exec.clock.now_secs();
        debug_assert_eq!(self.exec.breaker, BreakerState::Open);
        self.exec.breaker = BreakerState::HalfProbe;
        self.emit(MetricKind::BreakerTransition {
            from: BreakerState::Open,
            to: BreakerState::HalfProbe,
        });
        if self.exec.injector.outage_active(now) {
            self.exec.breaker = BreakerState::Open;
            self.emit(MetricKind::BreakerTransition {
                from: BreakerState::HalfProbe,
                to: BreakerState::Open,
            });
            self.exec.breaker_backoff_cycles = self
                .exec
                .breaker_backoff_cycles
                .saturating_mul(2)
                .min(self.config.breaker.max_backoff_cycles);
            self.schedule_probe(now);
            return;
        }
        self.exec.breaker = BreakerState::Closed;
        self.emit(MetricKind::BreakerTransition {
            from: BreakerState::HalfProbe,
            to: BreakerState::Closed,
        });
        self.exec.breaker_backoff_cycles = self.config.breaker.base_backoff_cycles;
        while let Some(k) = self.exec.parked.pop_front() {
            self.post_or_finalize(k);
        }
    }

    /// The adaptive window controller, consulted at every `CycleClosed`
    /// boundary (after the close was emitted, before admission). Under
    /// [`WindowPolicy::Adaptive`] it compares the tap's rolling crowd-delay
    /// percentile against the low/high thresholds (multiples of the cycle
    /// period) and moves the effective window one step within `[min, max]`:
    ///
    /// * **widen** when the watched percentile exceeds the high threshold
    ///   *and* arrivals are queued behind the window — crowd waits outlast
    ///   the cadence and admission is the bottleneck;
    /// * **narrow** when the percentile is below the low threshold and no
    ///   backlog is queued — the crowd beats the cadence, so overlap only
    ///   inflates HIT-board and budget exposure;
    /// * **hold** otherwise (the hysteresis dead zone between the
    ///   thresholds), and always for `cooldown_cycles` closes after a move.
    ///
    /// The decision is a pure function of the streamed metrics and the
    /// execution state — no wall clock, no RNG — so it preserves the
    /// runtime's same-seed byte-identity, and its state (window, cooldown,
    /// last decision) rides inside the snapshot for identical resume.
    fn control_window(&mut self) {
        let WindowPolicy::Adaptive {
            min,
            max,
            percentile,
            low_threshold,
            high_threshold,
            cooldown_cycles,
        } = self.config.window_policy
        else {
            return;
        };
        if self.exec.window_cooldown > 0 {
            self.exec.window_cooldown -= 1;
            self.exec.last_window_decision = WindowDecision::Held;
            return;
        }
        // No tap (detached mid-run) or no absorbed answer yet: no signal,
        // hold at the current window.
        let Some(delay_p) = self
            .tap
            .as_deref()
            .and_then(|tap| tap.crowd_delay().quantile(percentile))
        else {
            self.exec.last_window_decision = WindowDecision::Held;
            return;
        };
        let period = self.config.cycle_period_secs;
        let backlog = !self.exec.waiting.is_empty();
        if delay_p > high_threshold * period && backlog && self.exec.window < max {
            self.exec.window += 1;
            self.exec.window_cooldown = cooldown_cycles;
            self.exec.last_window_decision = WindowDecision::Widened;
        } else if delay_p < low_threshold * period && !backlog && self.exec.window > min {
            // No eviction on narrow: admission simply stops until
            // occupancy drops below the new window.
            self.exec.window -= 1;
            self.exec.window_cooldown = cooldown_cycles;
            self.exec.last_window_decision = WindowDecision::Narrowed;
        } else {
            self.exec.last_window_decision = WindowDecision::Held;
        }
    }

    /// Admits waiting cycles while the effective pipeline window has room,
    /// scheduling each one's `InferenceDone` after the committee's
    /// execution delay.
    fn try_admit(&mut self) {
        while self.exec.slots_used < self.exec.window {
            let Some(k) = self.exec.waiting.pop_front() else {
                return;
            };
            self.exec.slots_used += 1;
            let batch = self.cycles[k].image_ids.len();
            let delay = self.system.algorithm_delay_secs(batch, k as u64);
            self.exec.queue.schedule(
                self.exec.clock.now_secs() + delay,
                EventKind::InferenceDone { cycle: k },
            );
            self.emit(MetricKind::CycleAdmitted { cycle: k });
        }
    }

    /// Posts cycle `k`'s next query, or — when nothing is left to post and
    /// nothing is outstanding — closes the cycle out. When the crowd path
    /// is unavailable (breaker not `Closed`, or a platform outage covers
    /// this instant) the degradation ladder takes over instead:
    /// [`Driver::degrade_or_park`].
    fn post_or_finalize(&mut self, k: usize) {
        let now = self.exec.clock.now_secs();
        if self.exec.breaker != BreakerState::Closed || self.exec.injector.outage_active(now) {
            self.degrade_or_park(k, now);
            return;
        }
        let work = self
            .exec
            .active
            .get_mut(&k)
            .expect("invariant: HIT events only target active cycles");
        match self
            .system
            .post_next_query(work, &self.cycles[k], self.dataset)
        {
            Some(mut posted) => {
                if let Some(hook) = self.fleet.as_mut() {
                    hook.absorb_post(now, &mut posted);
                }
                let lost = self.exec.injector.answer_lost(now);
                let factor = self.exec.injector.attrition_factor(now);
                if factor > 1.0 {
                    posted
                        .pending
                        .defer_by(posted.pending.completion_delay_secs() * (factor - 1.0));
                }
                let delay = posted.pending.completion_delay_secs();
                let incentive = posted.incentive;
                let hit = self.exec.board.post(
                    k,
                    posted.image_index,
                    incentive,
                    now,
                    1,
                    lost,
                    posted.pending,
                );
                self.schedule_hit_events(k, hit, now, delay, lost);
                self.emit(MetricKind::HitPosted {
                    cycle: k,
                    hit,
                    incentive,
                    attempt: 1,
                });
                self.emit_spend(k, incentive);
            }
            None => {
                if work.outstanding() == 0 {
                    self.exec
                        .queue
                        .schedule(now, EventKind::RetrainDone { cycle: k });
                }
            }
        }
    }

    /// The degradation ladder at a would-post boundary while the crowd
    /// path is unavailable. The first refusal trips the breaker; then the
    /// cycle takes the highest rung it can reach:
    ///
    /// 1. posting already finished — drain normally (and wait out any
    ///    in-flight answer exactly as a healthy run would);
    /// 2. an answer is still in flight — wait; its absorption re-enters
    ///    this ladder;
    /// 3. the crowd was never consulted — degrade to AI-only labeling:
    ///    `finalize_cycle` labels every image from the committee vote, no
    ///    HIT is posted, no budget spent;
    /// 4. otherwise the cycle is mid-crowd — park it; the probe that
    ///    closes the breaker re-posts its remaining queries through the
    ///    existing escalation machinery.
    fn degrade_or_park(&mut self, k: usize, now: f64) {
        self.trip_breaker(now);
        let work = self
            .exec
            .active
            .get(&k)
            .expect("invariant: HIT events only target active cycles");
        let posting_done = work.posting_done();
        let outstanding = work.outstanding();
        let untouched = work.spent_cents() == 0 && work.answers_absorbed() == 0;
        if posting_done {
            // Nothing further would have posted: this is the normal drain
            // check, not a refused post.
            if outstanding == 0 {
                self.exec
                    .queue
                    .schedule(now, EventKind::RetrainDone { cycle: k });
            }
            return;
        }
        self.exec.posts_rejected += 1;
        if outstanding > 0 {
            return;
        }
        if untouched {
            self.exec.degraded_cycles += 1;
            self.emit(MetricKind::DegradedCycle { cycle: k });
            self.exec
                .queue
                .schedule(now, EventKind::RetrainDone { cycle: k });
            return;
        }
        self.exec.parked.push_back(k);
    }

    /// Emits the `HitPosted` marker and schedules the HIT's resolution:
    /// `HitAnswered` when every worker *beats* the timeout (`delay <
    /// timeout`), `HitTimedOut` otherwise — an answer landing exactly at
    /// the timeout instant is censored, matching the IPD contract's
    /// "delay >= timeout" (`CrowdLearnSystem::observe_crowd_delay`).
    /// A `lost` attempt ([`FaultEpisode::AnswerLoss`]) never answers at
    /// all, so only its timeout is scheduled. Exactly one resolution event
    /// is scheduled per posted HIT.
    fn schedule_hit_events(
        &mut self,
        k: usize,
        hit: HitId,
        posted_at: f64,
        delay: f64,
        lost: bool,
    ) {
        self.exec
            .queue
            .schedule(posted_at, EventKind::HitPosted { cycle: k, hit });
        if lost {
            let timeout = self
                .config
                .hit_timeout_secs
                .expect("invariant: an AnswerLoss plan requires a configured HIT timeout");
            self.exec.queue.schedule(
                posted_at + timeout,
                EventKind::HitTimedOut { cycle: k, hit },
            );
            return;
        }
        match self.config.hit_timeout_secs {
            Some(timeout) if delay >= timeout => self.exec.queue.schedule(
                posted_at + timeout,
                EventKind::HitTimedOut { cycle: k, hit },
            ),
            _ => self
                .exec
                .queue
                .schedule(posted_at + delay, EventKind::HitAnswered { cycle: k, hit }),
        };
    }

    fn on_answered(&mut self, k: usize, hit: HitId) {
        let inflight = self.exec.board.take(hit);
        debug_assert_eq!(inflight.cycle, k);
        let context = inflight.pending.context();
        let response = inflight.pending.into_response();
        let timely = self.system.answer_is_timely(&response);
        let delay_secs = response.completion_delay_secs;
        let work = self
            .exec
            .active
            .get_mut(&k)
            .expect("invariant: HIT events only target active cycles");
        self.system
            .absorb_answer(work, inflight.image_index, &response, timely);
        self.emit(MetricKind::HitAnswered {
            cycle: k,
            hit,
            context,
            delay_secs,
            timely,
        });
        self.post_or_finalize(k);
    }

    /// A HIT expired. If attempts, budget, and the crowd path allow,
    /// repost it at an escalated incentive. Either way the expired attempt
    /// feeds IPD a censored delay observation — all we learned *at the
    /// timeout* is "longer than the timeout" — so every posted attempt
    /// produces exactly one IPD observation. When the HIT is not reposted
    /// it is abandoned (emitting [`MetricKind::HitAbandoned`] with the
    /// attempt count) and one of two things happens: a *lost* attempt
    /// ([`FaultEpisode::AnswerLoss`]) has no answer coming, so its
    /// outstanding slot is released and posting resumes immediately; a
    /// live attempt is waited out — its workers still answer at the
    /// attempt's true completion time, so a `LateAnswer` is scheduled
    /// there rather than absorbing the answer at the timeout instant.
    fn on_timed_out(&mut self, k: usize, hit: HitId) {
        self.exec.timeouts += 1;
        let timeout = self
            .config
            .hit_timeout_secs
            .expect("invariant: HitTimedOut is only scheduled when a timeout is configured");
        let inflight = self.exec.board.take(hit);
        debug_assert_eq!(inflight.cycle, k);
        let now = self.exec.clock.now_secs();
        self.system
            .observe_crowd_delay(inflight.pending.context(), inflight.incentive, timeout);
        self.emit(MetricKind::HitTimedOut {
            cycle: k,
            hit,
            incentive: inflight.incentive,
            censored_delay_secs: timeout,
        });

        if inflight.attempt < self.config.max_post_attempts {
            let crowd_available =
                self.exec.breaker == BreakerState::Closed && !self.exec.injector.outage_active(now);
            if crowd_available {
                let level = if self.config.escalate_on_repost {
                    escalate(inflight.incentive)
                } else {
                    inflight.incentive
                };
                let work = self
                    .exec
                    .active
                    .get_mut(&k)
                    .expect("invariant: HIT events only target active cycles");
                if let Some(mut posted) = self.system.repost_query(
                    work,
                    &self.cycles[k],
                    self.dataset,
                    inflight.image_index,
                    level,
                ) {
                    if let Some(hook) = self.fleet.as_mut() {
                        hook.absorb_post(now, &mut posted);
                    }
                    self.exec.reposts += 1;
                    let lost = self.exec.injector.answer_lost(now);
                    let factor = self.exec.injector.attrition_factor(now);
                    if factor > 1.0 {
                        posted
                            .pending
                            .defer_by(posted.pending.completion_delay_secs() * (factor - 1.0));
                    }
                    let delay = posted.pending.completion_delay_secs();
                    let incentive = posted.incentive;
                    let new_hit = self.exec.board.post(
                        k,
                        posted.image_index,
                        incentive,
                        now,
                        inflight.attempt + 1,
                        lost,
                        posted.pending,
                    );
                    self.schedule_hit_events(k, new_hit, now, delay, lost);
                    self.emit(MetricKind::HitReposted {
                        cycle: k,
                        hit: new_hit,
                        incentive,
                        attempt: inflight.attempt + 1,
                    });
                    self.emit_spend(k, incentive);
                    return;
                }
            } else {
                // The repost was refused outright: count it, trip the
                // breaker if this is the first refusal, and fall through
                // to the abandon ladder below.
                self.trip_breaker(now);
                self.exec.posts_rejected += 1;
            }
        }

        // Out of attempts, budget, or crowd path: the requester gives up
        // on this query.
        self.emit(MetricKind::HitAbandoned {
            cycle: k,
            hit,
            attempts: inflight.attempt,
        });
        if inflight.lost {
            // A lost attempt has no answer coming — ever. Release its
            // outstanding slot so the cycle's query chain moves on; the
            // unanswered image falls back to its AI label at finalize.
            let work = self
                .exec
                .active
                .get_mut(&k)
                .expect("invariant: HIT events only target active cycles");
            self.system.abandon_query(work);
            self.post_or_finalize(k);
            return;
        }

        // A live attempt is waited out after all. Its answer completes at
        // `posted_at + delay` — at or after the timeout, since
        // `HitTimedOut` is scheduled when the delay reaches the timeout —
        // so absorption is deferred to a `LateAnswer` there instead of
        // happening inside the timeout handler. At the exact boundary
        // (`delay == timeout`) both events share a due time and the
        // queue's scheduling-order tiebreak absorbs the late answer after
        // this timeout, keeping the censor-then-absorb order.
        let due = inflight.posted_at_secs + inflight.pending.completion_delay_secs();
        let id = inflight.id;
        self.exec.board.reinstate(inflight);
        self.exec
            .queue
            .schedule(due, EventKind::LateAnswer { cycle: k, hit: id });
    }

    /// A waited-out HIT's workers finally answered: absorb the late answer
    /// at its true completion time. IPD already got this attempt's censored
    /// observation at the timeout, so the late absorb skips the IPD report.
    fn on_late_answer(&mut self, k: usize, hit: HitId) {
        let inflight = self.exec.board.take(hit);
        debug_assert_eq!(inflight.cycle, k);
        let context = inflight.pending.context();
        let response = inflight.pending.into_response();
        let delay_secs = response.completion_delay_secs;
        let work = self
            .exec
            .active
            .get_mut(&k)
            .expect("invariant: HIT events only target active cycles");
        self.system
            .absorb_late_answer(work, inflight.image_index, &response);
        self.emit(MetricKind::LateAnswerAbsorbed {
            cycle: k,
            hit,
            context,
            delay_secs,
        });
        self.post_or_finalize(k);
    }
}

/// One incentive level up, saturating at the most generous.
fn escalate(level: IncentiveLevel) -> IncentiveLevel {
    IncentiveLevel::from_index((level.index() + 1).min(IncentiveLevel::COUNT - 1))
}
