//! Versioned, checksummed runtime snapshots.
//!
//! A [`RuntimeSnapshot`] captures a [`crate::PipelinedSystem`] at an event
//! boundary — the learned module state plus, mid-run, the whole execution
//! state (clock, event queue, HIT board, per-cycle work). Resuming from it
//! replays the remaining events exactly as the original run would have, so
//! the final [`crate::RuntimeReport`] is byte-identical.
//!
//! The wire format frames the payload against corruption and format drift:
//!
//! ```text
//! magic  b"CLSNAP\x00\x01"          8 bytes
//! format version                     u32 LE
//! payload length                     u64 LE
//! FNV-1a-64 checksum of the payload  u64 LE
//! payload                            length bytes
//! ```
//!
//! The payload itself is the vendored binary codec's output:
//! `RuntimeConfig`, then the core system state
//! ([`crowdlearn::CrowdLearnSystem::encode_state`]), then the optional
//! execution state, then the optional streaming metrics tap
//! ([`crate::MetricsTap`] — version 2; it rides in the snapshot so a
//! resumed run replays the identical metric stream). Floats travel as
//! IEEE-754 bits, so round trips are bit-exact by construction.

use crowdlearn::StateError;
use serde::binary::DecodeError;

/// Leading bytes of every snapshot.
const MAGIC: [u8; 8] = *b"CLSNAP\x00\x01";

/// Current snapshot format version. Bump on any payload layout change.
///
/// Version history: 1 — initial format; 2 — `CycleOutcome` gained exact
/// per-query delays and the payload gained the optional metrics tap;
/// 3 — the `Platform` codec gained the submitter id and `PlatformStats`
/// gained the repost grid and per-submitter usage (fleet attribution);
/// 4 — `RuntimeConfig` encodes a tagged `WindowPolicy` where the static
/// window used to sit, and the execution state carries the window
/// controller (effective window, cooldown counter, last decision, window
/// trajectory);
/// 5 — fault injection: `RuntimeConfig` carries the `FaultPlan` and
/// `BreakerConfig`, the execution state carries the `FaultInjector`,
/// breaker state/backoff, parked cycles, and rejection/degradation
/// counters, each in-flight HIT carries its `lost` flag, and the metrics
/// tap carries the abandonment/fault/breaker/degradation counters.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 5;

/// Why a snapshot could not be produced or restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The system holds a component with no serialized form (a non-simulated
    /// classifier or a non-checkpointable bandit policy).
    UnsupportedSystem(StateError),
    /// The bytes do not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by a different format version.
    VersionMismatch {
        /// The version recorded in the snapshot.
        found: u32,
    },
    /// The payload checksum does not match — the bytes were corrupted.
    ChecksumMismatch,
    /// The payload failed to decode or failed a state invariant.
    Corrupt(DecodeError),
    /// The stream handed to resume has a different cycle count than the
    /// stream the snapshot was taken against.
    CycleCountMismatch {
        /// Cycles the snapshot expects.
        expected: usize,
        /// Cycles the provided stream has.
        found: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnsupportedSystem(e) => write!(f, "system is not checkpointable: {e}"),
            SnapshotError::BadMagic => write!(f, "not a runtime snapshot (bad magic)"),
            SnapshotError::VersionMismatch { found } => write!(
                f,
                "snapshot format version {found} != supported {SNAPSHOT_FORMAT_VERSION}"
            ),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::Corrupt(e) => write!(f, "snapshot payload corrupt: {e}"),
            SnapshotError::CycleCountMismatch { expected, found } => write!(
                f,
                "snapshot expects a {expected}-cycle stream, got {found} cycles"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A sealed snapshot: an opaque payload plus the framing that lets a later
/// process validate it before trusting a single byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeSnapshot {
    payload: Vec<u8>,
}

impl RuntimeSnapshot {
    /// Wraps a freshly encoded payload (crate-internal: only
    /// [`crate::PipelinedSystem::snapshot`] produces valid payloads).
    pub(crate) fn seal(payload: Vec<u8>) -> Self {
        Self { payload }
    }

    /// The raw payload bytes (already validated when this snapshot came
    /// from [`RuntimeSnapshot::from_bytes`]).
    pub(crate) fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The snapshot's serialized size in bytes, framing included.
    pub fn serialized_len(&self) -> usize {
        MAGIC.len() + 4 + 8 + 8 + self.payload.len()
    }

    /// Serializes the snapshot with its magic/version/length/checksum frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Validates the frame (magic, version, length, checksum) and returns
    /// the snapshot. The payload's *contents* are validated later, when
    /// [`crate::PipelinedSystem::resume`] decodes them.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let header = MAGIC.len() + 4 + 8 + 8;
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < header {
            return Err(SnapshotError::Corrupt(DecodeError::Truncated));
        }
        let version = u32::from_le_bytes(
            bytes[8..12]
                .try_into()
                .expect("invariant: slice is 4 bytes"),
        );
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::VersionMismatch { found: version });
        }
        let len = u64::from_le_bytes(
            bytes[12..20]
                .try_into()
                .expect("invariant: slice is 8 bytes"),
        );
        let checksum = u64::from_le_bytes(
            bytes[20..28]
                .try_into()
                .expect("invariant: slice is 8 bytes"),
        );
        let payload = &bytes[header..];
        if payload.len() as u64 != len {
            return Err(SnapshotError::Corrupt(if (payload.len() as u64) < len {
                DecodeError::Truncated
            } else {
                DecodeError::Invalid
            }));
        }
        if fnv1a64(payload) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        Ok(Self {
            payload: payload.to_vec(),
        })
    }
}

/// FNV-1a 64-bit over the payload — cheap, dependency-free, and plenty to
/// catch torn writes and bit flips (this guards against accidents, not
/// adversaries). Shared with the fleet snapshot frame (`crate::fleet`).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let snap = RuntimeSnapshot::seal(vec![1, 2, 3, 4, 5]);
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), snap.serialized_len());
        assert_eq!(RuntimeSnapshot::from_bytes(&bytes), Ok(snap));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = RuntimeSnapshot::seal(vec![9; 16]).to_bytes();
        bytes[0] ^= 0xff;
        assert_eq!(
            RuntimeSnapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        );
    }

    #[test]
    fn rejects_version_mismatch() {
        let mut bytes = RuntimeSnapshot::seal(vec![9; 16]).to_bytes();
        bytes[8] = 0xfe; // version LE low byte
        assert_eq!(
            RuntimeSnapshot::from_bytes(&bytes),
            Err(SnapshotError::VersionMismatch { found: 0xfe })
        );
    }

    #[test]
    fn rejects_corrupted_payload() {
        let mut bytes = RuntimeSnapshot::seal(vec![9; 16]).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(
            RuntimeSnapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch)
        );
    }

    #[test]
    fn rejects_truncation() {
        let bytes = RuntimeSnapshot::seal(vec![9; 16]).to_bytes();
        assert_eq!(
            RuntimeSnapshot::from_bytes(&bytes[..bytes.len() - 3]),
            Err(SnapshotError::Corrupt(DecodeError::Truncated))
        );
        assert_eq!(
            RuntimeSnapshot::from_bytes(&bytes[..10]),
            Err(SnapshotError::Corrupt(DecodeError::Truncated))
        );
    }
}
