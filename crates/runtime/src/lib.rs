//! # crowdlearn-runtime
//!
//! An event-driven, virtual-time runtime for the CrowdLearn closed loop.
//!
//! The blocking [`CrowdLearnSystem`](crowdlearn::CrowdLearnSystem) waits
//! out every crowd answer before touching the next query, so a sensing
//! cycle's wall time is dominated by serial crowd latency. In the paper's
//! deployment those waits overlap: cycle `k`'s HITs are still out on the
//! platform while cycle `k+1`'s imagery arrives and runs AI inference.
//! This crate reproduces that overlap *deterministically* as a
//! discrete-event simulation:
//!
//! - [`VirtualClock`] — monotone virtual seconds; wall time plays no role.
//! - [`EventQueue`] — a binary-heap queue of typed [`Event`]s ordered by
//!   `(due time, scheduling order)`, so simultaneous events resolve
//!   deterministically.
//! - [`EventKind`] — the event vocabulary of the loop: cycle arrivals,
//!   inference completions, HIT postings/answers/timeouts, late answers
//!   of waited-out HITs, retrain completions, fault-episode boundaries,
//!   and breaker probes.
//! - [`HitBoard`] — the in-flight HIT table with its high-water mark.
//! - [`PipelinedSystem`] — the CrowdLearn modules (QSS/IPD/CQC/MIC)
//!   re-driven as event handlers over the reentrant cycle stages the core
//!   crate exposes, with bounded cycle overlap (backpressure), per-HIT
//!   timeouts, and incentive-escalated reposts charged to the same budget.
//!   The overlap bound is governed by a [`WindowPolicy`]: a static window,
//!   or an adaptive one whose deterministic controller widens/narrows the
//!   effective window at `CycleClosed` boundaries from the metrics tap's
//!   rolling crowd-delay quantiles ([`WindowDecision`] is its vocabulary;
//!   [`RuntimeReport::window_trajectory`] its audit trail).
//!   Execution is reentrant ([`PipelinedSystem::step`] /
//!   [`PipelinedSystem::run_until`]) and checkpointable at any event
//!   boundary into a versioned, checksummed [`RuntimeSnapshot`] that
//!   [`PipelinedSystem::resume`] restores to a byte-identical continuation.
//! - [`ParallelSweep`] — scoped-thread executor running one independently
//!   seeded experiment per sweep point, returning results in input order,
//!   with [`SweepCheckpoints`] for periodic per-point snapshots.
//! - [`FleetOrchestrator`] — N concurrent shards (one [`PipelinedSystem`]
//!   per disaster stream) multiplexed into a single deterministic global
//!   event order over a shared worker pool (cross-stream contention defers
//!   HIT completions) and a shared budget ledger ([`FleetLedger`], split
//!   into per-shard quotas by an [`ArbitrationPolicy`]). The whole fleet
//!   checkpoints into a [`FleetSnapshot`]; a 1-shard fleet is
//!   byte-identical to the bare pipelined runtime (`tests/determinism.rs`).
//! - [`FaultPlan`] / [`FaultInjector`] — deterministic fault injection: a
//!   seeded, virtual-time schedule of typed [`FaultEpisode`]s (platform
//!   outages, worker attrition, answer loss, budget shocks) consulted by
//!   the driver at event boundaries, answered with a crowd-path circuit
//!   breaker ([`BreakerState`], tuned by [`BreakerConfig`]) and a
//!   degradation ladder down to AI-only labeling — an empty plan is
//!   byte-identical to a run with no fault machinery at all (DESIGN.md
//!   "Fault model & degradation ladder").
//! - [`MetricsTap`] — a deterministic streaming-metrics sink fed by the
//!   driver at every event boundary: rolling crowd-delay quantiles (overall
//!   and per temporal context), spend pacing against the budget ledger,
//!   window occupancy and queue depth with high-water marks. The tap rides
//!   inside [`RuntimeSnapshot`], so a resumed run replays the identical
//!   metric stream ([`MetricsSink`] is the extension point for custom
//!   consumers).
//!
//! ## Equivalence to the blocking system
//!
//! With [`RuntimeConfig::sequential`] (an in-flight window of one, no HIT
//! timeout), the event loop executes the *exact* module-call sequence of
//! the blocking system and produces byte-identical per-image labels — the
//! golden test in `tests/golden.rs` pins this. Wider windows change only
//! *when* module calls interleave across cycles, never the per-call
//! arithmetic, and cut the virtual-time makespan by overlapping crowd
//! waits (`crowdlearn-bench --bin makespan` quantifies it).

//! Determinism: a simulation crate under `detlint` rules D1-D6 (DESIGN.md
//! "Determinism invariants"), including D4 — library code must surface
//! errors or state its `expect` invariant, never panic mid-cycle.
//!
#![forbid(unsafe_code)]

mod clock;
mod config;
mod event;
mod faults;
mod fleet;
mod hit;
mod metrics;
mod pipeline;
mod queue;
mod snapshot;
mod sweep;

pub use clock::VirtualClock;
pub use config::{RuntimeConfig, WindowPolicy};
pub use event::{Event, EventKind};
pub use faults::{BreakerConfig, BreakerState, FaultEpisode, FaultInjector, FaultPlan};
pub use fleet::{
    ArbitrationPolicy, ContentionStats, FleetConfig, FleetLedger, FleetOrchestrator, FleetReport,
    FleetSnapshot, FleetSnapshotError, ShardSpec, TapGridMismatch, FLEET_SNAPSHOT_FORMAT_VERSION,
};
pub use hit::{HitBoard, HitId, InFlightHit};
pub use metrics::{MetricKind, MetricRecord, MetricsSink, MetricsTap, MetricsTapConfig};
pub use pipeline::{
    blocking_makespan_secs, PipelinedSystem, RunBound, RuntimeReport, WindowDecision,
};
pub use queue::EventQueue;
pub use snapshot::{RuntimeSnapshot, SnapshotError, SNAPSHOT_FORMAT_VERSION};
pub use sweep::{ParallelSweep, SweepCheckpoints};
