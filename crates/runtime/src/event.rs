//! The typed event vocabulary of the pipelined runtime.

use crate::HitId;
use std::cmp::Ordering;

/// What happens at a virtual instant.
///
/// Six event kinds cover the whole CrowdLearn loop once crowd waits are
/// asynchronous: cycles arrive on the sensing cadence, AI inference
/// completes after the committee's execution delay, HITs are posted /
/// answered / expired on the platform, and retraining closes a cycle out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A sensing cycle's imagery arrived (paper Definition 1: one batch
    /// every cycle period).
    CycleArrival {
        /// Index of the arriving cycle.
        cycle: usize,
    },
    /// Committee inference + QSS/IPD bookkeeping for a cycle finished; its
    /// crowd queries may start posting.
    InferenceDone {
        /// Index of the inferred cycle.
        cycle: usize,
    },
    /// A HIT went up on the platform.
    HitPosted {
        /// Cycle the query belongs to.
        cycle: usize,
        /// The posted HIT.
        hit: HitId,
    },
    /// Every worker on a HIT has answered; the response is observable.
    HitAnswered {
        /// Cycle the query belongs to.
        cycle: usize,
        /// The answered HIT.
        hit: HitId,
    },
    /// A HIT reached its timeout with workers still pending; the runtime
    /// may repost it at an escalated incentive.
    HitTimedOut {
        /// Cycle the query belongs to.
        cycle: usize,
        /// The expired HIT.
        hit: HitId,
    },
    /// MIC finished the cycle's weight update + retrain; the cycle's
    /// pipeline slot is free.
    RetrainDone {
        /// Index of the finalized cycle.
        cycle: usize,
    },
}

impl EventKind {
    /// The sensing cycle this event belongs to.
    pub fn cycle(&self) -> usize {
        match *self {
            EventKind::CycleArrival { cycle }
            | EventKind::InferenceDone { cycle }
            | EventKind::HitPosted { cycle, .. }
            | EventKind::HitAnswered { cycle, .. }
            | EventKind::HitTimedOut { cycle, .. }
            | EventKind::RetrainDone { cycle } => cycle,
        }
    }
}

/// A scheduled event: a kind, a virtual due time, and a tie-breaking
/// sequence number.
///
/// Events order by `(at_secs, seq)`. The sequence number is assigned at
/// scheduling time, so simultaneous events pop in the order they were
/// scheduled — which makes the whole simulation a deterministic function of
/// the seeds, independent of heap internals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual due time, seconds.
    pub at_secs: f64,
    /// Scheduling order, the tie-breaker for simultaneous events.
    pub seq: u64,
    /// What happens.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at_secs
            .total_cmp(&other.at_secs)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_seq() {
        let a = Event {
            at_secs: 1.0,
            seq: 5,
            kind: EventKind::CycleArrival { cycle: 0 },
        };
        let b = Event {
            at_secs: 1.0,
            seq: 6,
            kind: EventKind::CycleArrival { cycle: 1 },
        };
        let c = Event {
            at_secs: 0.5,
            seq: 7,
            kind: EventKind::CycleArrival { cycle: 2 },
        };
        assert!(c < a && a < b);
    }

    #[test]
    fn kind_reports_cycle() {
        assert_eq!(EventKind::RetrainDone { cycle: 7 }.cycle(), 7);
        assert_eq!(
            EventKind::HitAnswered {
                cycle: 3,
                hit: HitId(9)
            }
            .cycle(),
            3
        );
    }
}
