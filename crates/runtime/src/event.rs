//! The typed event vocabulary of the pipelined runtime.

use crate::HitId;
use serde::binary::{Decode, DecodeError, Encode, Reader};
use std::cmp::Ordering;

/// What happens at a virtual instant.
///
/// Seven event kinds cover the whole CrowdLearn loop once crowd waits are
/// asynchronous: cycles arrive on the sensing cadence, AI inference
/// completes after the committee's execution delay, HITs are posted /
/// answered / expired on the platform (with a late-answer completion for
/// expired HITs that are waited out), and retraining closes a cycle out.
/// Three more carry the fault-injection machinery: scheduled fault episodes
/// start and end ([`crate::FaultPlan`]), and the crowd-path circuit breaker
/// probes the platform after backing off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A sensing cycle's imagery arrived (paper Definition 1: one batch
    /// every cycle period).
    CycleArrival {
        /// Index of the arriving cycle.
        cycle: usize,
    },
    /// Committee inference + QSS/IPD bookkeeping for a cycle finished; its
    /// crowd queries may start posting.
    InferenceDone {
        /// Index of the inferred cycle.
        cycle: usize,
    },
    /// A HIT went up on the platform.
    HitPosted {
        /// Cycle the query belongs to.
        cycle: usize,
        /// The posted HIT.
        hit: HitId,
    },
    /// Every worker on a HIT has answered; the response is observable.
    HitAnswered {
        /// Cycle the query belongs to.
        cycle: usize,
        /// The answered HIT.
        hit: HitId,
    },
    /// A HIT reached its timeout with workers still pending; the runtime
    /// may repost it at an escalated incentive.
    HitTimedOut {
        /// Cycle the query belongs to.
        cycle: usize,
        /// The expired HIT.
        hit: HitId,
    },
    /// A HIT that already timed out (and was out of repost attempts) has
    /// finally been answered by its workers; the late answer is absorbed at
    /// its true completion time, not the timeout instant.
    LateAnswer {
        /// Cycle the query belongs to.
        cycle: usize,
        /// The waited-out HIT.
        hit: HitId,
    },
    /// MIC finished the cycle's weight update + retrain; the cycle's
    /// pipeline slot is free.
    RetrainDone {
        /// Index of the finalized cycle.
        cycle: usize,
    },
    /// A scheduled fault episode begins (see [`crate::FaultPlan`]); the
    /// driver flips the injector's view of the world at this instant.
    FaultStart {
        /// Index of the episode in the plan.
        episode: usize,
    },
    /// A scheduled fault episode ends.
    FaultEnd {
        /// Index of the episode in the plan.
        episode: usize,
    },
    /// The crowd-path circuit breaker's backoff elapsed; the driver tests
    /// whether the platform accepts posts again (Open → HalfProbe).
    BreakerProbe,
}

impl EventKind {
    /// The sensing cycle this event belongs to, or `None` for the
    /// fault-injection events, which belong to the run rather than a cycle.
    pub fn cycle(&self) -> Option<usize> {
        match *self {
            EventKind::CycleArrival { cycle }
            | EventKind::InferenceDone { cycle }
            | EventKind::HitPosted { cycle, .. }
            | EventKind::HitAnswered { cycle, .. }
            | EventKind::HitTimedOut { cycle, .. }
            | EventKind::LateAnswer { cycle, .. }
            | EventKind::RetrainDone { cycle } => Some(cycle),
            EventKind::FaultStart { .. } | EventKind::FaultEnd { .. } | EventKind::BreakerProbe => {
                None
            }
        }
    }
}

/// A scheduled event: a kind, a virtual due time, and a tie-breaking
/// sequence number.
///
/// Events order by `(at_secs, seq)`. The sequence number is assigned at
/// scheduling time, so simultaneous events pop in the order they were
/// scheduled — which makes the whole simulation a deterministic function of
/// the seeds, independent of heap internals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual due time, seconds.
    pub at_secs: f64,
    /// Scheduling order, the tie-breaker for simultaneous events.
    pub seq: u64,
    /// What happens.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at_secs
            .total_cmp(&other.at_secs)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// Snapshot codec: each kind is a stable u8 tag followed by its fields.
// `LateAnswer` takes tag 6 (added after `RetrainDone`) so the five original
// payload-bearing tags stay what they were in format version 1.
impl Encode for EventKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            EventKind::CycleArrival { cycle } => {
                0u8.encode(out);
                cycle.encode(out);
            }
            EventKind::InferenceDone { cycle } => {
                1u8.encode(out);
                cycle.encode(out);
            }
            EventKind::HitPosted { cycle, hit } => {
                2u8.encode(out);
                cycle.encode(out);
                hit.encode(out);
            }
            EventKind::HitAnswered { cycle, hit } => {
                3u8.encode(out);
                cycle.encode(out);
                hit.encode(out);
            }
            EventKind::HitTimedOut { cycle, hit } => {
                4u8.encode(out);
                cycle.encode(out);
                hit.encode(out);
            }
            EventKind::RetrainDone { cycle } => {
                5u8.encode(out);
                cycle.encode(out);
            }
            EventKind::LateAnswer { cycle, hit } => {
                6u8.encode(out);
                cycle.encode(out);
                hit.encode(out);
            }
            EventKind::FaultStart { episode } => {
                7u8.encode(out);
                episode.encode(out);
            }
            EventKind::FaultEnd { episode } => {
                8u8.encode(out);
                episode.encode(out);
            }
            EventKind::BreakerProbe => 9u8.encode(out),
        }
    }
}

impl Decode for EventKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(EventKind::CycleArrival {
                cycle: usize::decode(r)?,
            }),
            1 => Ok(EventKind::InferenceDone {
                cycle: usize::decode(r)?,
            }),
            2 => Ok(EventKind::HitPosted {
                cycle: usize::decode(r)?,
                hit: HitId::decode(r)?,
            }),
            3 => Ok(EventKind::HitAnswered {
                cycle: usize::decode(r)?,
                hit: HitId::decode(r)?,
            }),
            4 => Ok(EventKind::HitTimedOut {
                cycle: usize::decode(r)?,
                hit: HitId::decode(r)?,
            }),
            5 => Ok(EventKind::RetrainDone {
                cycle: usize::decode(r)?,
            }),
            6 => Ok(EventKind::LateAnswer {
                cycle: usize::decode(r)?,
                hit: HitId::decode(r)?,
            }),
            7 => Ok(EventKind::FaultStart {
                episode: usize::decode(r)?,
            }),
            8 => Ok(EventKind::FaultEnd {
                episode: usize::decode(r)?,
            }),
            9 => Ok(EventKind::BreakerProbe),
            _ => Err(DecodeError::Invalid),
        }
    }
}

impl Encode for Event {
    fn encode(&self, out: &mut Vec<u8>) {
        self.at_secs.encode(out);
        self.seq.encode(out);
        self.kind.encode(out);
    }
}

impl Decode for Event {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let at_secs = f64::decode(r)?;
        let seq = u64::decode(r)?;
        let kind = EventKind::decode(r)?;
        if at_secs.is_nan() || at_secs < 0.0 {
            return Err(DecodeError::Invalid);
        }
        Ok(Self { at_secs, seq, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_seq() {
        let a = Event {
            at_secs: 1.0,
            seq: 5,
            kind: EventKind::CycleArrival { cycle: 0 },
        };
        let b = Event {
            at_secs: 1.0,
            seq: 6,
            kind: EventKind::CycleArrival { cycle: 1 },
        };
        let c = Event {
            at_secs: 0.5,
            seq: 7,
            kind: EventKind::CycleArrival { cycle: 2 },
        };
        assert!(c < a && a < b);
    }

    #[test]
    fn kind_reports_cycle() {
        assert_eq!(EventKind::RetrainDone { cycle: 7 }.cycle(), Some(7));
        assert_eq!(
            EventKind::HitAnswered {
                cycle: 3,
                hit: HitId(9)
            }
            .cycle(),
            Some(3)
        );
        assert_eq!(
            EventKind::LateAnswer {
                cycle: 4,
                hit: HitId(2)
            }
            .cycle(),
            Some(4)
        );
        assert_eq!(EventKind::FaultStart { episode: 0 }.cycle(), None);
        assert_eq!(EventKind::FaultEnd { episode: 1 }.cycle(), None);
        assert_eq!(EventKind::BreakerProbe.cycle(), None);
    }

    #[test]
    fn codec_round_trips_every_kind() {
        let kinds = [
            EventKind::CycleArrival { cycle: 1 },
            EventKind::InferenceDone { cycle: 2 },
            EventKind::HitPosted {
                cycle: 3,
                hit: HitId(10),
            },
            EventKind::HitAnswered {
                cycle: 4,
                hit: HitId(11),
            },
            EventKind::HitTimedOut {
                cycle: 5,
                hit: HitId(12),
            },
            EventKind::RetrainDone { cycle: 6 },
            EventKind::LateAnswer {
                cycle: 7,
                hit: HitId(13),
            },
            EventKind::FaultStart { episode: 0 },
            EventKind::FaultEnd { episode: 1 },
            EventKind::BreakerProbe,
        ];
        for (seq, kind) in kinds.into_iter().enumerate() {
            let event = Event {
                at_secs: 100.5 * (seq as f64 + 1.0),
                seq: seq as u64,
                kind,
            };
            assert_eq!(Event::from_bytes(&event.to_bytes()), Ok(event));
        }
        assert_eq!(Event::from_bytes(&[7u8]), Err(DecodeError::Truncated));
        // The first unused tag decodes to a typed error, not a panic.
        let mut bad = Vec::new();
        1.5f64.encode(&mut bad);
        0u64.encode(&mut bad);
        10u8.encode(&mut bad);
        assert_eq!(Event::from_bytes(&bad), Err(DecodeError::Invalid));
    }
}
