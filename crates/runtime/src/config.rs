//! Runtime configuration.

use crate::faults::{BreakerConfig, FaultPlan};
use serde::binary::{Decode, DecodeError, Encode, Reader};

/// How the pipeline's in-flight cycle window is governed.
///
/// The window is the runtime's backpressure knob: cycles beyond it queue up
/// and are admitted as earlier cycles retire. A static window is a fixed
/// bet on crowd latency — too narrow starves throughput when the crowd is
/// slow relative to the sensing cadence, too wide floods the HIT board (and
/// the budget) when it is fast. The adaptive policy lets the runtime's
/// window controller re-make that bet at every `CycleClosed` boundary from
/// the metrics tap's rolling crowd-delay quantiles (see DESIGN.md
/// "Adaptive window control").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowPolicy {
    /// A fixed window of `n` cycles. `Static(1)` reproduces the fully
    /// sequential (blocking) system; this is byte-identical to the
    /// pre-controller runtime at every window size.
    Static(usize),
    /// Widen/narrow the *effective* window one step at a time within
    /// `[min, max]`, driven by the attached metrics tap (one is attached
    /// automatically at start when missing). At each `CycleClosed`
    /// boundary the controller compares the tap's rolling crowd-delay
    /// `percentile` against two thresholds expressed as multiples of the
    /// cycle period — the gap between them plus the cooldown is the
    /// hysteresis that keeps the controller from thrashing. The decision
    /// is a pure function of streamed metrics: no wall clock, no RNG, so
    /// same-seed runs stay byte-identical.
    Adaptive {
        /// Smallest effective window (also the starting window). At least 1.
        min: usize,
        /// Largest effective window. At least `min`.
        max: usize,
        /// Which rolling crowd-delay quantile the controller watches,
        /// in `[0, 1]` (the paper's tail-latency lens is 0.9).
        percentile: f64,
        /// Narrow when the watched delay percentile drops below
        /// `low_threshold × cycle_period_secs` (and the window is above
        /// `min`): the crowd is beating the cadence, overlap is unneeded.
        low_threshold: f64,
        /// Widen when the watched delay percentile exceeds
        /// `high_threshold × cycle_period_secs` *and* arrivals are queued
        /// behind the window (and the window is below `max`): cycles
        /// outlast the cadence and admission is the bottleneck. Must be
        /// strictly above `low_threshold` — the band between the two is
        /// the hysteresis dead zone.
        high_threshold: f64,
        /// `CycleClosed` boundaries to hold after a change before the
        /// controller may move again.
        cooldown_cycles: u32,
    },
}

impl WindowPolicy {
    /// An adaptive policy over `[min, max]` with the default controller
    /// tuning: watch the 0.9 delay quantile, narrow below 0.25 cycle
    /// periods, widen above 0.5, one-cycle cooldown.
    pub fn adaptive(min: usize, max: usize) -> Self {
        WindowPolicy::Adaptive {
            min,
            max,
            percentile: 0.9,
            low_threshold: 0.25,
            high_threshold: 0.5,
            cooldown_cycles: 1,
        }
    }

    /// The window an execution opens with: the static size, or the
    /// adaptive floor (the controller only widens on evidence).
    pub fn initial_window(&self) -> usize {
        match *self {
            WindowPolicy::Static(n) => n,
            WindowPolicy::Adaptive { min, .. } => min,
        }
    }

    /// Whether this policy adapts at runtime.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, WindowPolicy::Adaptive { .. })
    }

    fn validate(&self) {
        match *self {
            WindowPolicy::Static(n) => {
                assert!(n > 0, "window must admit at least one cycle");
            }
            WindowPolicy::Adaptive {
                min,
                max,
                percentile,
                low_threshold,
                high_threshold,
                ..
            } => {
                assert!(min > 0, "window must admit at least one cycle");
                assert!(max >= min, "adaptive window range must satisfy min <= max");
                assert!(
                    (0.0..=1.0).contains(&percentile),
                    "watched percentile must lie in [0, 1]"
                );
                assert!(
                    low_threshold.is_finite() && low_threshold >= 0.0,
                    "low threshold must be finite and non-negative"
                );
                assert!(
                    high_threshold.is_finite() && high_threshold > low_threshold,
                    "high threshold must be finite and above the low threshold"
                );
            }
        }
    }

    fn is_valid(&self) -> bool {
        match *self {
            WindowPolicy::Static(n) => n > 0,
            WindowPolicy::Adaptive {
                min,
                max,
                percentile,
                low_threshold,
                high_threshold,
                ..
            } => {
                min > 0
                    && max >= min
                    && (0.0..=1.0).contains(&percentile)
                    && low_threshold.is_finite()
                    && low_threshold >= 0.0
                    && high_threshold.is_finite()
                    && high_threshold > low_threshold
            }
        }
    }
}

impl Encode for WindowPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            WindowPolicy::Static(n) => {
                0u8.encode(out);
                n.encode(out);
            }
            WindowPolicy::Adaptive {
                min,
                max,
                percentile,
                low_threshold,
                high_threshold,
                cooldown_cycles,
            } => {
                1u8.encode(out);
                min.encode(out);
                max.encode(out);
                percentile.encode(out);
                low_threshold.encode(out);
                high_threshold.encode(out);
                cooldown_cycles.encode(out);
            }
        }
    }
}

impl Decode for WindowPolicy {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let policy = match u8::decode(r)? {
            0 => WindowPolicy::Static(usize::decode(r)?),
            1 => WindowPolicy::Adaptive {
                min: usize::decode(r)?,
                max: usize::decode(r)?,
                percentile: f64::decode(r)?,
                low_threshold: f64::decode(r)?,
                high_threshold: f64::decode(r)?,
                cooldown_cycles: u32::decode(r)?,
            },
            _ => return Err(DecodeError::Invalid),
        };
        if !policy.is_valid() {
            return Err(DecodeError::Invalid);
        }
        Ok(policy)
    }
}

/// Configuration of the event-driven runtime: the sensing cadence, how the
/// in-flight cycle window is governed, the per-HIT timeout/repost policy,
/// and the fault scenario to inject (empty by default — carrying a
/// [`FaultPlan`] is what cost this struct its `Copy`).
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Seconds between sensing-cycle arrivals (paper Definition 1: a cycle
    /// every 10 minutes).
    pub cycle_period_secs: f64,
    /// How the in-flight cycle window (backpressure) is governed:
    /// arrivals beyond the effective window queue up and are admitted as
    /// earlier cycles retire. `Static(1)` reproduces the fully sequential
    /// system.
    pub window_policy: WindowPolicy,
    /// Optional per-HIT timeout: a HIT whose workers have not all answered
    /// within this many seconds of posting expires and may be reposted.
    /// An answer landing *exactly at* the timeout counts as expired
    /// (censoring is `delay >= timeout`, matching the IPD contract).
    /// `None` waits out every answer (the paper's setting).
    pub hit_timeout_secs: Option<f64>,
    /// Maximum posting attempts per query, counting the original post.
    /// Reposts beyond this absorb the original (late) answer as a
    /// learning-only observation.
    pub max_post_attempts: u32,
    /// Whether a repost escalates one incentive level above the expired
    /// attempt (capped at the highest level); `false` reposts at the same
    /// incentive.
    pub escalate_on_repost: bool,
    /// The fault scenario injected into the run (see [`FaultPlan`]). The
    /// empty plan — the default — schedules no events and draws nothing:
    /// byte-identical to a runtime without fault injection.
    pub faults: FaultPlan,
    /// Crowd-path circuit-breaker backoff tuning (only consulted once a
    /// fault actually rejects a post).
    pub breaker: BreakerConfig,
}

impl RuntimeConfig {
    /// The paper deployment's cadence: 600 s cycles, a static four-cycle
    /// pipeline window, no per-HIT timeout.
    pub fn paper() -> Self {
        Self {
            cycle_period_secs: 600.0,
            window_policy: WindowPolicy::Static(4),
            hit_timeout_secs: None,
            max_post_attempts: 1,
            escalate_on_repost: true,
            faults: FaultPlan::none(),
            breaker: BreakerConfig::paper(),
        }
    }

    /// A window-1 configuration: cycles never overlap, reproducing the
    /// blocking system's module-call order exactly (the golden-test mode).
    pub fn sequential() -> Self {
        Self::paper().with_inflight_window(1)
    }

    /// Sets a static in-flight cycle window of `window` cycles
    /// (shorthand for `with_window_policy(WindowPolicy::Static(window))`).
    pub fn with_inflight_window(mut self, window: usize) -> Self {
        self.window_policy = WindowPolicy::Static(window);
        self
    }

    /// Sets the window policy.
    pub fn with_window_policy(mut self, policy: WindowPolicy) -> Self {
        self.window_policy = policy;
        self
    }

    /// Sets the sensing-cycle period.
    pub fn with_cycle_period_secs(mut self, secs: f64) -> Self {
        self.cycle_period_secs = secs;
        self
    }

    /// Sets the per-HIT timeout and the total posting attempts allowed.
    pub fn with_hit_timeout(mut self, timeout_secs: Option<f64>, max_attempts: u32) -> Self {
        self.hit_timeout_secs = timeout_secs;
        self.max_post_attempts = max_attempts;
        self
    }

    /// Sets whether reposts escalate the incentive.
    pub fn with_escalation(mut self, escalate: bool) -> Self {
        self.escalate_on_repost = escalate;
        self
    }

    /// Sets the fault scenario to inject.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Sets the circuit-breaker backoff tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// The effective window an execution opens with (see
    /// [`WindowPolicy::initial_window`]).
    pub fn initial_window(&self) -> usize {
        self.window_policy.initial_window()
    }

    pub(crate) fn validate(&self) {
        assert!(
            self.cycle_period_secs > 0.0,
            "cycle period must be positive"
        );
        // An infinite (or NaN-producing) period validates as `> 0` but later
        // NaN-panics deep inside `EventQueue::schedule` when arrival times
        // are computed — reject it here, at the configuration boundary.
        assert!(
            self.cycle_period_secs.is_finite(),
            "cycle period must be finite"
        );
        self.window_policy.validate();
        assert!(
            self.max_post_attempts >= 1,
            "need at least one post attempt"
        );
        if let Some(t) = self.hit_timeout_secs {
            assert!(t > 0.0, "HIT timeout must be positive");
            assert!(t.is_finite(), "HIT timeout must be finite");
        }
        self.faults.validate();
        // A lost answer never completes, so only the timeout path can
        // retire it — loss plans without a timeout would deadlock.
        assert!(
            !self.faults.has_answer_loss() || self.hit_timeout_secs.is_some(),
            "an AnswerLoss fault plan requires a HIT timeout"
        );
        self.breaker.validate();
    }

    /// Non-panicking mirror of [`RuntimeConfig::validate`] for decode paths.
    pub(crate) fn is_valid(&self) -> bool {
        self.cycle_period_secs.is_finite()
            && self.cycle_period_secs > 0.0
            && self.window_policy.is_valid()
            && self.max_post_attempts >= 1
            && self
                .hit_timeout_secs
                .is_none_or(|t| t.is_finite() && t > 0.0)
            && self.faults.is_valid()
            && (!self.faults.has_answer_loss() || self.hit_timeout_secs.is_some())
            && self.breaker.is_valid()
    }
}

impl Encode for RuntimeConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cycle_period_secs.encode(out);
        self.window_policy.encode(out);
        self.hit_timeout_secs.encode(out);
        self.max_post_attempts.encode(out);
        self.escalate_on_repost.encode(out);
        self.faults.encode(out);
        self.breaker.encode(out);
    }
}

impl Decode for RuntimeConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let config = Self {
            cycle_period_secs: f64::decode(r)?,
            window_policy: WindowPolicy::decode(r)?,
            hit_timeout_secs: Option::<f64>::decode(r)?,
            max_post_attempts: u32::decode(r)?,
            escalate_on_repost: bool::decode(r)?,
            faults: FaultPlan::decode(r)?,
            breaker: BreakerConfig::decode(r)?,
        };
        if !config.is_valid() {
            return Err(DecodeError::Invalid);
        }
        Ok(config)
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        RuntimeConfig::paper().validate();
        RuntimeConfig::sequential().validate();
        assert_eq!(
            RuntimeConfig::sequential().window_policy,
            WindowPolicy::Static(1)
        );
        assert_eq!(RuntimeConfig::sequential().initial_window(), 1);
    }

    #[test]
    fn adaptive_defaults_are_valid_and_open_at_the_floor() {
        let policy = WindowPolicy::adaptive(2, 6);
        RuntimeConfig::paper().with_window_policy(policy).validate();
        assert_eq!(policy.initial_window(), 2);
        assert!(policy.is_adaptive());
        assert!(!WindowPolicy::Static(3).is_adaptive());
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_window_rejected() {
        RuntimeConfig::paper().with_inflight_window(0).validate();
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn inverted_adaptive_range_rejected() {
        RuntimeConfig::paper()
            .with_window_policy(WindowPolicy::adaptive(4, 2))
            .validate();
    }

    #[test]
    #[should_panic(expected = "above the low threshold")]
    fn collapsed_hysteresis_band_rejected() {
        RuntimeConfig::paper()
            .with_window_policy(WindowPolicy::Adaptive {
                min: 1,
                max: 4,
                percentile: 0.9,
                low_threshold: 0.5,
                high_threshold: 0.5,
                cooldown_cycles: 0,
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "cycle period must be finite")]
    fn infinite_cycle_period_rejected() {
        RuntimeConfig::paper()
            .with_cycle_period_secs(f64::INFINITY)
            .validate();
    }

    #[test]
    #[should_panic(expected = "HIT timeout must be finite")]
    fn infinite_hit_timeout_rejected() {
        RuntimeConfig::paper()
            .with_hit_timeout(Some(f64::INFINITY), 2)
            .validate();
    }

    #[test]
    #[should_panic(expected = "requires a HIT timeout")]
    fn answer_loss_without_timeout_rejected() {
        RuntimeConfig::paper()
            .with_faults(FaultPlan::new(
                1,
                vec![crate::FaultEpisode::AnswerLoss {
                    prob: 0.5,
                    from_secs: 0.0,
                    until_secs: 100.0,
                }],
            ))
            .validate();
    }

    #[test]
    fn faulted_config_round_trips() {
        let config = RuntimeConfig::paper()
            .with_hit_timeout(Some(300.0), 2)
            .with_faults(FaultPlan::new(
                7,
                vec![crate::FaultEpisode::PlatformOutage {
                    from_secs: 600.0,
                    until_secs: 1800.0,
                }],
            ));
        config.validate();
        assert_eq!(
            RuntimeConfig::from_bytes(&config.to_bytes()),
            Ok(config.clone())
        );

        // An AnswerLoss plan without a timeout is invalid on the wire too.
        let mut bad = config;
        bad.hit_timeout_secs = None;
        bad.faults = FaultPlan::new(
            1,
            vec![crate::FaultEpisode::AnswerLoss {
                prob: 0.5,
                from_secs: 0.0,
                until_secs: 100.0,
            }],
        );
        assert_eq!(
            RuntimeConfig::from_bytes(&bad.to_bytes()),
            Err(DecodeError::Invalid)
        );
    }

    #[test]
    fn codec_round_trips_and_rejects_invalid() {
        let config = RuntimeConfig::paper().with_hit_timeout(Some(900.0), 3);
        assert_eq!(
            RuntimeConfig::from_bytes(&config.to_bytes()),
            Ok(config.clone())
        );

        let adaptive = RuntimeConfig::paper().with_window_policy(WindowPolicy::adaptive(1, 8));
        assert_eq!(
            RuntimeConfig::from_bytes(&adaptive.to_bytes()),
            Ok(adaptive)
        );

        let mut bad = RuntimeConfig::paper();
        bad.cycle_period_secs = f64::INFINITY;
        assert_eq!(
            RuntimeConfig::from_bytes(&bad.to_bytes()),
            Err(DecodeError::Invalid)
        );

        // An adaptive policy whose hysteresis band is inverted on the wire
        // is rejected at decode.
        let mut bad = RuntimeConfig::paper().with_window_policy(WindowPolicy::adaptive(1, 8));
        if let WindowPolicy::Adaptive { low_threshold, .. } = &mut bad.window_policy {
            *low_threshold = 9.0;
        }
        assert_eq!(
            RuntimeConfig::from_bytes(&bad.to_bytes()),
            Err(DecodeError::Invalid)
        );
    }
}
