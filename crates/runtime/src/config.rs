//! Runtime configuration.

use serde::binary::{Decode, DecodeError, Encode, Reader};

/// Configuration of the event-driven runtime: the sensing cadence, how many
/// cycles may be in flight, and the per-HIT timeout/repost policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Seconds between sensing-cycle arrivals (paper Definition 1: a cycle
    /// every 10 minutes).
    pub cycle_period_secs: f64,
    /// Maximum sensing cycles concurrently in the pipeline (backpressure):
    /// arrivals beyond the window queue up and are admitted as earlier
    /// cycles retire. `1` reproduces the fully sequential system.
    pub inflight_window: usize,
    /// Optional per-HIT timeout: a HIT whose workers have not all answered
    /// within this many seconds of posting expires and may be reposted.
    /// `None` waits out every answer (the paper's setting).
    pub hit_timeout_secs: Option<f64>,
    /// Maximum posting attempts per query, counting the original post.
    /// Reposts beyond this absorb the original (late) answer as a
    /// learning-only observation.
    pub max_post_attempts: u32,
    /// Whether a repost escalates one incentive level above the expired
    /// attempt (capped at the highest level); `false` reposts at the same
    /// incentive.
    pub escalate_on_repost: bool,
}

impl RuntimeConfig {
    /// The paper deployment's cadence: 600 s cycles, a four-cycle pipeline
    /// window, no per-HIT timeout.
    pub fn paper() -> Self {
        Self {
            cycle_period_secs: 600.0,
            inflight_window: 4,
            hit_timeout_secs: None,
            max_post_attempts: 1,
            escalate_on_repost: true,
        }
    }

    /// A window-1 configuration: cycles never overlap, reproducing the
    /// blocking system's module-call order exactly (the golden-test mode).
    pub fn sequential() -> Self {
        Self::paper().with_inflight_window(1)
    }

    /// Sets the in-flight cycle window.
    pub fn with_inflight_window(mut self, window: usize) -> Self {
        self.inflight_window = window;
        self
    }

    /// Sets the sensing-cycle period.
    pub fn with_cycle_period_secs(mut self, secs: f64) -> Self {
        self.cycle_period_secs = secs;
        self
    }

    /// Sets the per-HIT timeout and the total posting attempts allowed.
    pub fn with_hit_timeout(mut self, timeout_secs: Option<f64>, max_attempts: u32) -> Self {
        self.hit_timeout_secs = timeout_secs;
        self.max_post_attempts = max_attempts;
        self
    }

    /// Sets whether reposts escalate the incentive.
    pub fn with_escalation(mut self, escalate: bool) -> Self {
        self.escalate_on_repost = escalate;
        self
    }

    pub(crate) fn validate(&self) {
        assert!(
            self.cycle_period_secs > 0.0,
            "cycle period must be positive"
        );
        // An infinite (or NaN-producing) period validates as `> 0` but later
        // NaN-panics deep inside `EventQueue::schedule` when arrival times
        // are computed — reject it here, at the configuration boundary.
        assert!(
            self.cycle_period_secs.is_finite(),
            "cycle period must be finite"
        );
        assert!(
            self.inflight_window > 0,
            "window must admit at least one cycle"
        );
        assert!(
            self.max_post_attempts >= 1,
            "need at least one post attempt"
        );
        if let Some(t) = self.hit_timeout_secs {
            assert!(t > 0.0, "HIT timeout must be positive");
            assert!(t.is_finite(), "HIT timeout must be finite");
        }
    }

    /// Non-panicking mirror of [`RuntimeConfig::validate`] for decode paths.
    pub(crate) fn is_valid(&self) -> bool {
        self.cycle_period_secs.is_finite()
            && self.cycle_period_secs > 0.0
            && self.inflight_window > 0
            && self.max_post_attempts >= 1
            && self
                .hit_timeout_secs
                .is_none_or(|t| t.is_finite() && t > 0.0)
    }
}

impl Encode for RuntimeConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cycle_period_secs.encode(out);
        self.inflight_window.encode(out);
        self.hit_timeout_secs.encode(out);
        self.max_post_attempts.encode(out);
        self.escalate_on_repost.encode(out);
    }
}

impl Decode for RuntimeConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let config = Self {
            cycle_period_secs: f64::decode(r)?,
            inflight_window: usize::decode(r)?,
            hit_timeout_secs: Option::<f64>::decode(r)?,
            max_post_attempts: u32::decode(r)?,
            escalate_on_repost: bool::decode(r)?,
        };
        if !config.is_valid() {
            return Err(DecodeError::Invalid);
        }
        Ok(config)
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        RuntimeConfig::paper().validate();
        RuntimeConfig::sequential().validate();
        assert_eq!(RuntimeConfig::sequential().inflight_window, 1);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_window_rejected() {
        RuntimeConfig::paper().with_inflight_window(0).validate();
    }

    #[test]
    #[should_panic(expected = "cycle period must be finite")]
    fn infinite_cycle_period_rejected() {
        RuntimeConfig::paper()
            .with_cycle_period_secs(f64::INFINITY)
            .validate();
    }

    #[test]
    #[should_panic(expected = "HIT timeout must be finite")]
    fn infinite_hit_timeout_rejected() {
        RuntimeConfig::paper()
            .with_hit_timeout(Some(f64::INFINITY), 2)
            .validate();
    }

    #[test]
    fn codec_round_trips_and_rejects_invalid() {
        let config = RuntimeConfig::paper().with_hit_timeout(Some(900.0), 3);
        assert_eq!(RuntimeConfig::from_bytes(&config.to_bytes()), Ok(config));

        let mut bad = RuntimeConfig::paper();
        bad.cycle_period_secs = f64::INFINITY;
        assert_eq!(
            RuntimeConfig::from_bytes(&bad.to_bytes()),
            Err(DecodeError::Invalid)
        );
    }
}
