//! Runtime configuration.

/// Configuration of the event-driven runtime: the sensing cadence, how many
/// cycles may be in flight, and the per-HIT timeout/repost policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Seconds between sensing-cycle arrivals (paper Definition 1: a cycle
    /// every 10 minutes).
    pub cycle_period_secs: f64,
    /// Maximum sensing cycles concurrently in the pipeline (backpressure):
    /// arrivals beyond the window queue up and are admitted as earlier
    /// cycles retire. `1` reproduces the fully sequential system.
    pub inflight_window: usize,
    /// Optional per-HIT timeout: a HIT whose workers have not all answered
    /// within this many seconds of posting expires and may be reposted.
    /// `None` waits out every answer (the paper's setting).
    pub hit_timeout_secs: Option<f64>,
    /// Maximum posting attempts per query, counting the original post.
    /// Reposts beyond this absorb the original (late) answer as a
    /// learning-only observation.
    pub max_post_attempts: u32,
    /// Whether a repost escalates one incentive level above the expired
    /// attempt (capped at the highest level); `false` reposts at the same
    /// incentive.
    pub escalate_on_repost: bool,
}

impl RuntimeConfig {
    /// The paper deployment's cadence: 600 s cycles, a four-cycle pipeline
    /// window, no per-HIT timeout.
    pub fn paper() -> Self {
        Self {
            cycle_period_secs: 600.0,
            inflight_window: 4,
            hit_timeout_secs: None,
            max_post_attempts: 1,
            escalate_on_repost: true,
        }
    }

    /// A window-1 configuration: cycles never overlap, reproducing the
    /// blocking system's module-call order exactly (the golden-test mode).
    pub fn sequential() -> Self {
        Self::paper().with_inflight_window(1)
    }

    /// Sets the in-flight cycle window.
    pub fn with_inflight_window(mut self, window: usize) -> Self {
        self.inflight_window = window;
        self
    }

    /// Sets the sensing-cycle period.
    pub fn with_cycle_period_secs(mut self, secs: f64) -> Self {
        self.cycle_period_secs = secs;
        self
    }

    /// Sets the per-HIT timeout and the total posting attempts allowed.
    pub fn with_hit_timeout(mut self, timeout_secs: Option<f64>, max_attempts: u32) -> Self {
        self.hit_timeout_secs = timeout_secs;
        self.max_post_attempts = max_attempts;
        self
    }

    /// Sets whether reposts escalate the incentive.
    pub fn with_escalation(mut self, escalate: bool) -> Self {
        self.escalate_on_repost = escalate;
        self
    }

    pub(crate) fn validate(&self) {
        assert!(
            self.cycle_period_secs > 0.0,
            "cycle period must be positive"
        );
        assert!(
            self.inflight_window > 0,
            "window must admit at least one cycle"
        );
        assert!(
            self.max_post_attempts >= 1,
            "need at least one post attempt"
        );
        if let Some(t) = self.hit_timeout_secs {
            assert!(t > 0.0, "HIT timeout must be positive");
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        RuntimeConfig::paper().validate();
        RuntimeConfig::sequential().validate();
        assert_eq!(RuntimeConfig::sequential().inflight_window, 1);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_window_rejected() {
        RuntimeConfig::paper().with_inflight_window(0).validate();
    }
}
