//! Parallel experiment sweeps.

use crate::RuntimeSnapshot;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs one independently seeded experiment per sweep point across a pool
/// of scoped worker threads.
///
/// Each sweep point is a self-contained configuration (its own seeds, its
/// own dataset, its own system), so points share no mutable state and the
/// parallel execution produces *exactly* the numbers the serial loop
/// produces — results come back in input order regardless of which worker
/// finished first. Workers pull points off a shared atomic cursor, so
/// imbalanced points (e.g. larger query sizes) self-balance.
#[derive(Debug, Clone, Copy)]
pub struct ParallelSweep {
    threads: usize,
}

impl ParallelSweep {
    /// A sweep over exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        Self { threads }
    }

    /// One worker per available hardware thread (at least one).
    pub fn auto() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates `run` on every point, returning results in input order.
    /// `run` receives the point's index and the point itself.
    pub fn run<P, T, F>(&self, points: &[P], run: F) -> Vec<T>
    where
        P: Sync,
        T: Send,
        F: Fn(usize, &P) -> T + Sync,
    {
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = points.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(points.len().max(1)) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= points.len() {
                        break;
                    }
                    let result = run(i, &points[i]);
                    *slots[i]
                        .lock()
                        .expect("invariant: sweep workers never panic while holding a slot") =
                        Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("invariant: sweep workers never panic while holding a slot")
                    .expect("invariant: the cursor hands every sweep point to exactly one worker")
            })
            .collect()
    }
}

/// Shared store of the latest [`RuntimeSnapshot`] per sweep point.
///
/// Long sweep points lose all progress if a worker thread is killed
/// mid-run. Workers that periodically execute
/// [`crate::PipelinedSystem::run_auto_snapshotted`] can park each
/// checkpoint here (the store is `Sync`, so the [`ParallelSweep`] closure
/// can write into it from any worker), and a relaunched sweep resumes each
/// point from its latest checkpoint instead of from scratch — snapshots
/// restore byte-identical continuations, so the resumed result equals the
/// uninterrupted one.
#[derive(Debug, Default)]
pub struct SweepCheckpoints {
    slots: Vec<Mutex<Option<RuntimeSnapshot>>>,
}

impl SweepCheckpoints {
    /// An empty store with one slot per sweep point.
    pub fn new(points: usize) -> Self {
        Self {
            slots: (0..points).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Replaces point `index`'s checkpoint with `snapshot`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn store(&self, index: usize, snapshot: RuntimeSnapshot) {
        *self.slots[index]
            .lock()
            .expect("invariant: checkpoint writers never panic while holding a slot") =
            Some(snapshot);
    }

    /// The latest checkpoint stored for point `index`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn latest(&self, index: usize) -> Option<RuntimeSnapshot> {
        self.slots[index]
            .lock()
            .expect("invariant: checkpoint writers never panic while holding a slot")
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let points: Vec<u64> = (0..37).collect();
        let sweep = ParallelSweep::new(4);
        let results = sweep.run(&points, |i, p| {
            // Stagger finish order to exercise the reordering.
            std::thread::sleep(std::time::Duration::from_micros(37 - *p));
            (i, p * 2)
        });
        for (i, (idx, doubled)) in results.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, points[i] * 2);
        }
    }

    #[test]
    fn matches_serial_execution() {
        let points: Vec<u64> = (0..16).collect();
        let f = |_: usize, p: &u64| p.wrapping_mul(0x9e37_79b9).rotate_left(13);
        let serial: Vec<u64> = points.iter().enumerate().map(|(i, p)| f(i, p)).collect();
        let parallel = ParallelSweep::new(3).run(&points, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn single_thread_and_empty_inputs_work() {
        let sweep = ParallelSweep::new(1);
        assert_eq!(sweep.run(&[1, 2, 3], |_, p| p + 1), vec![2, 3, 4]);
        let empty: Vec<i32> = sweep.run(&[] as &[i32], |_, p| *p);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        ParallelSweep::new(0);
    }
}
