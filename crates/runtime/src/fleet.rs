//! The fleet orchestrator: N concurrent disaster streams over one shared
//! worker pool and one budget ledger.
//!
//! The paper evaluates CrowdLearn one disaster at a time; a production
//! deployment serves many. This module runs N independent
//! [`crate::PipelinedSystem`]s as *shards* — one per
//! [`SensingCycleStream`] — multiplexed into a single deterministic global
//! event order, with two fleet-level couplings the single-stream runtime
//! cannot express:
//!
//! * **Shared worker pool.** Crowd workers are a finite resource. Each
//!   shard keeps its own RNG-private [`Platform`](crowdlearn_crowd::Platform)
//!   (so its drawn labels and base delays are exactly the single-stream
//!   ones), while the fleet tracks how many workers *other* shards have
//!   busy and defers every posted HIT by a queue wait that grows with that
//!   cross-stream utilization ([`PendingHit::defer_by`]
//!   (crowdlearn_crowd::PendingHit::defer_by)). A 1-shard fleet sees zero
//!   contention and is byte-identical to the bare pipelined run — pinned by
//!   `tests/determinism.rs`.
//! * **Shared budget ledger.** The fleet's crowd budget is split into
//!   per-shard quotas by an [`ArbitrationPolicy`] (fair-share or priority
//!   weights) at boot; each shard's incentive bandit plans against its
//!   quota, and the [`FleetLedger`] audits per-shard spend against it.
//!
//! Global determinism: each shard's `ExecState` keeps its own event queue;
//! the orchestrator always steps the shard whose next event is due
//! earliest, breaking virtual-time ties by shard index. That merge
//! preserves every shard's internal event order (so per-shard behavior
//! matches the standalone runtime wherever contention is zero) and is a
//! pure function of the shard set — same seeds, same shards, byte-identical
//! fleet report.
//!
//! The whole fleet checkpoints into a [`FleetSnapshot`] (own magic,
//! version, FNV-1a-64 checksum) embedding one framed
//! [`RuntimeSnapshot`] per shard plus the pool and ledger state; resume is
//! byte-identical at any global event boundary.

use crate::snapshot::fnv1a64;
use crate::{
    MetricsTap, MetricsTapConfig, PipelinedSystem, RunBound, RuntimeConfig, RuntimeReport,
    RuntimeSnapshot, SnapshotError,
};
use crowdlearn::{CrowdLearnConfig, PostedQuery};
use crowdlearn_crowd::{SubmitterId, SubmitterUsage};
use crowdlearn_dataset::{Dataset, SensingCycleStream};
use crowdlearn_metrics::{QuantileSketch, SketchGridMismatch};
use serde::binary::{Decode, DecodeError, Encode, Reader};

// ---------------------------------------------------------------------------
// Configuration

/// How the fleet budget is split into per-shard quotas at boot.
#[derive(Debug, Clone, PartialEq)]
pub enum ArbitrationPolicy {
    /// Every shard gets an equal share of the fleet budget.
    FairShare,
    /// Shard `i` gets `weights[i] / Σweights` of the fleet budget — e.g. a
    /// just-struck disaster outranks a week-old one. Weights must be
    /// positive and finite, one per shard.
    Priority(Vec<f64>),
}

impl ArbitrationPolicy {
    /// The per-shard budget quotas, in cents.
    fn quotas_cents(&self, fleet_budget_cents: f64, shards: usize) -> Vec<f64> {
        match self {
            ArbitrationPolicy::FairShare => {
                // `budget × (1/N)` so the 1-shard quota is the budget to
                // the last bit (`× 1.0` is exact) — the parity test relies
                // on the shard's bandit seeing the untouched budget.
                let share = 1.0 / shards as f64;
                (0..shards).map(|_| fleet_budget_cents * share).collect()
            }
            ArbitrationPolicy::Priority(weights) => {
                assert_eq!(
                    weights.len(),
                    shards,
                    "one priority weight per shard required"
                );
                let total: f64 = weights.iter().sum();
                weights
                    .iter()
                    .map(|w| fleet_budget_cents * (w / total))
                    .collect()
            }
        }
    }

    fn validate(&self) {
        if let ArbitrationPolicy::Priority(weights) = self {
            assert!(
                !weights.is_empty() && weights.iter().all(|w| w.is_finite() && *w > 0.0),
                "priority weights must be positive and finite"
            );
        }
    }
}

/// Fleet-level configuration: the shared pool's capacity, the contention
/// response, and the budget arbitration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Workers the shared pool holds. Contention kicks in as other shards'
    /// busy workers approach this capacity.
    pub pool_capacity: usize,
    /// Contention strength α: a posted HIT whose competitors have
    /// utilization `u` of the pool waits `α · base_completion · u/(1−u)`
    /// extra seconds (u clamped at 0.95). Zero disables contention.
    pub contention_alpha: f64,
    /// Total crowd budget across the fleet, in cents.
    pub fleet_budget_cents: f64,
    /// How the budget splits into per-shard quotas.
    pub arbitration: ArbitrationPolicy,
}

impl FleetConfig {
    /// A fleet sharing the paper platform's 80-worker pool at unit
    /// contention strength, fair-share budget split.
    pub fn new(fleet_budget_cents: f64) -> Self {
        Self {
            pool_capacity: 80,
            contention_alpha: 1.0,
            fleet_budget_cents,
            arbitration: ArbitrationPolicy::FairShare,
        }
    }

    /// Sets the shared pool capacity.
    pub fn with_pool_capacity(mut self, workers: usize) -> Self {
        self.pool_capacity = workers;
        self
    }

    /// Sets the contention strength α (zero disables contention).
    pub fn with_contention_alpha(mut self, alpha: f64) -> Self {
        self.contention_alpha = alpha;
        self
    }

    /// Sets the budget arbitration policy.
    pub fn with_arbitration(mut self, arbitration: ArbitrationPolicy) -> Self {
        self.arbitration = arbitration;
        self
    }

    fn validate(&self) {
        assert!(self.pool_capacity > 0, "pool capacity must be positive");
        assert!(
            self.contention_alpha.is_finite() && self.contention_alpha >= 0.0,
            "contention alpha must be finite and non-negative"
        );
        assert!(
            self.fleet_budget_cents.is_finite() && self.fleet_budget_cents >= 0.0,
            "fleet budget must be finite and non-negative"
        );
        self.arbitration.validate();
    }

    fn is_valid(&self) -> bool {
        self.pool_capacity > 0
            && self.contention_alpha.is_finite()
            && self.contention_alpha >= 0.0
            && self.fleet_budget_cents.is_finite()
            && self.fleet_budget_cents >= 0.0
            && match &self.arbitration {
                ArbitrationPolicy::FairShare => true,
                ArbitrationPolicy::Priority(w) => {
                    !w.is_empty() && w.iter().all(|x| x.is_finite() && *x > 0.0)
                }
            }
    }
}

/// One shard's own configuration: the CrowdLearn system settings (its
/// `budget_cents` is *overridden* by the shard's fleet quota at boot) and
/// the runtime scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// The shard's CrowdLearn configuration (seeds, queries per cycle, …).
    pub config: CrowdLearnConfig,
    /// The shard's event-loop scheduling (window, timeout, cadence).
    pub runtime: RuntimeConfig,
}

impl ShardSpec {
    /// Bundles a shard's system and runtime configuration.
    pub fn new(config: CrowdLearnConfig, runtime: RuntimeConfig) -> Self {
        Self { config, runtime }
    }
}

// ---------------------------------------------------------------------------
// Shared worker pool

/// One shard's claim on pool workers until a virtual instant.
#[derive(Debug, Clone, PartialEq)]
struct BusyInterval {
    shard: usize,
    workers: usize,
    until_secs: f64,
}

/// The fleet's capacity model of the crowd: who has how many workers busy
/// until when, and how much queue wait that inflicted on whom.
///
/// Contention is *cross-stream only*: a shard's wait is driven by the
/// workers **other** shards have busy — within-stream load is already part
/// of each platform's pilot-calibrated delay model, and counting it here
/// would double-book it (and break 1-shard parity with the standalone
/// runtime).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SharedWorkerPool {
    capacity: usize,
    alpha: f64,
    busy: Vec<BusyInterval>,
    total_wait_secs: f64,
    waits_applied: u64,
    posts: u64,
    peak_busy_workers: usize,
}

impl SharedWorkerPool {
    fn new(capacity: usize, alpha: f64) -> Self {
        Self {
            capacity,
            alpha,
            busy: Vec::new(),
            total_wait_secs: 0.0,
            waits_applied: 0,
            posts: 0,
            peak_busy_workers: 0,
        }
    }

    /// Drops claims that have expired by `now`. Retention preserves
    /// insertion order, so the surviving list is deterministic.
    fn expire(&mut self, now_secs: f64) {
        self.busy.retain(|b| b.until_secs > now_secs);
    }

    /// The queue wait a HIT posted by `shard` at `now` suffers before any
    /// worker picks it up: `α · base · u/(1−u)` where `u` is the *other*
    /// shards' busy share of capacity, clamped at 0.95 so a saturated pool
    /// yields a large-but-finite (19α·base) multiplier.
    fn queue_wait_secs(&mut self, shard: usize, base_completion_secs: f64, now_secs: f64) -> f64 {
        self.expire(now_secs);
        self.posts += 1;
        let others: usize = self
            .busy
            .iter()
            .filter(|b| b.shard != shard)
            .map(|b| b.workers)
            .sum();
        let u = (others as f64 / self.capacity as f64).min(0.95);
        let wait = self.alpha * base_completion_secs * (u / (1.0 - u));
        if wait > 0.0 {
            self.total_wait_secs += wait;
            self.waits_applied += 1;
        }
        wait
    }

    /// Claims `workers` for `shard` until `until_secs` (the HIT's deferred
    /// completion instant).
    fn occupy(&mut self, shard: usize, workers: usize, until_secs: f64) {
        assert!(
            until_secs.is_finite() && until_secs >= 0.0,
            "busy-until must be finite and non-negative"
        );
        self.busy.push(BusyInterval {
            shard,
            workers,
            until_secs,
        });
        let busy_now: usize = self.busy.iter().map(|b| b.workers).sum();
        self.peak_busy_workers = self.peak_busy_workers.max(busy_now);
    }

    fn contention(&self) -> ContentionStats {
        ContentionStats {
            posts: self.posts,
            waits_applied: self.waits_applied,
            total_wait_secs: self.total_wait_secs,
            peak_busy_workers: self.peak_busy_workers,
        }
    }
}

/// Fleet-level contention telemetry, exposed on [`FleetReport`] and via
/// [`FleetOrchestrator::contention`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ContentionStats {
    /// HITs posted across the fleet (every attempt, reposts included).
    pub posts: u64,
    /// Posts that suffered a non-zero queue wait.
    pub waits_applied: u64,
    /// Total queue-wait seconds inflicted by cross-stream contention.
    pub total_wait_secs: f64,
    /// Most pool workers ever simultaneously busy (all shards).
    pub peak_busy_workers: usize,
}

impl ContentionStats {
    /// Mean queue wait per posted HIT, in seconds (zero before any post).
    pub fn mean_wait_secs(&self) -> f64 {
        if self.posts == 0 {
            return 0.0;
        }
        self.total_wait_secs / self.posts as f64
    }
}

// ---------------------------------------------------------------------------
// Budget ledger

/// The fleet's budget book: per-shard quotas (set once, by the arbitration
/// policy) and per-shard spend (booked on every posted attempt).
///
/// Enforcement is delegated: each shard's incentive bandit is booted with
/// its quota as its whole budget, so a shard can never outspend its share —
/// the ledger is the audit trail that proves it.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetLedger {
    fleet_budget_cents: f64,
    quotas_cents: Vec<f64>,
    spent_cents: Vec<u64>,
}

impl FleetLedger {
    fn new(fleet_budget_cents: f64, arbitration: &ArbitrationPolicy, shards: usize) -> Self {
        Self {
            fleet_budget_cents,
            quotas_cents: arbitration.quotas_cents(fleet_budget_cents, shards),
            spent_cents: vec![0; shards],
        }
    }

    fn charge(&mut self, shard: usize, cents: u64) {
        self.spent_cents[shard] += cents;
        debug_assert!(
            (self.spent_cents[shard] as f64) <= self.quotas_cents[shard] + 1e-9,
            "shard {shard} outspent its quota"
        );
    }

    /// Number of shards the ledger books.
    pub fn shards(&self) -> usize {
        self.quotas_cents.len()
    }

    /// The whole fleet's budget, in cents.
    pub fn fleet_budget_cents(&self) -> f64 {
        self.fleet_budget_cents
    }

    /// Shard `i`'s budget quota, in cents.
    pub fn quota_cents(&self, shard: usize) -> f64 {
        self.quotas_cents[shard]
    }

    /// Cents shard `i` has spent on evaluation posts so far.
    pub fn spent_cents(&self, shard: usize) -> u64 {
        self.spent_cents[shard]
    }

    /// Cents shard `i` still has under its quota.
    pub fn remaining_cents(&self, shard: usize) -> f64 {
        (self.quotas_cents[shard] - self.spent_cents[shard] as f64).max(0.0)
    }

    /// Total evaluation cents spent across the fleet.
    pub fn total_spent_cents(&self) -> u64 {
        self.spent_cents.iter().sum()
    }
}

// ---------------------------------------------------------------------------
// The per-step hook the pipeline driver calls

/// The fleet context a shard's driver sees while handling one event:
/// contention deferral and ledger booking for every HIT it posts.
pub(crate) struct FleetHook<'a> {
    pub(crate) shard: usize,
    pub(crate) pool: &'a mut SharedWorkerPool,
    pub(crate) ledger: &'a mut FleetLedger,
}

impl FleetHook<'_> {
    /// Applies the shared pool to a freshly posted HIT: compute the queue
    /// wait from *other* shards' busy workers, defer the HIT's worker
    /// responses by it, claim this HIT's workers until its (deferred)
    /// completion, and book the spend against the shard.
    pub(crate) fn absorb_post(&mut self, now_secs: f64, posted: &mut PostedQuery) {
        let base = posted.pending.completion_delay_secs();
        let wait = self.pool.queue_wait_secs(self.shard, base, now_secs);
        posted.pending.defer_by(wait);
        let workers = posted.pending.response().responses.len();
        self.pool.occupy(
            self.shard,
            workers,
            now_secs + posted.pending.completion_delay_secs(),
        );
        self.ledger
            .charge(self.shard, u64::from(posted.incentive.cents()));
    }
}

// ---------------------------------------------------------------------------
// The orchestrator

/// What a fleet run produced: per-shard reports plus the fleet-level view.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Each shard's full [`RuntimeReport`], in shard order.
    pub shards: Vec<RuntimeReport>,
    /// Virtual time at which the *last* shard finished.
    pub makespan_secs: f64,
    /// Events processed across all shards.
    pub events_processed: u64,
    /// The final budget book: quotas and per-shard spend.
    pub ledger: FleetLedger,
    /// Cross-stream contention telemetry.
    pub contention: ContentionStats,
    /// Fleet-level crowd-delay rollup: the per-shard [`MetricsTap`] delay
    /// sketches merged into one, when taps were attached fleet-wide
    /// ([`FleetOrchestrator::attach_metrics_taps`]).
    pub rollup_crowd_delay: Option<QuantileSketch>,
}

/// N concurrent [`PipelinedSystem`] shards over one shared worker pool and
/// one budget ledger, stepped as a single deterministic event loop.
///
/// ```text
/// let mut fleet = FleetOrchestrator::new(specs, config, &datasets);
/// let report = fleet.run(&datasets, &streams);
/// ```
///
/// Like its single-stream counterpart, execution is reentrant
/// ([`FleetOrchestrator::step`] / [`FleetOrchestrator::run_until`]) and
/// checkpointable between any two events
/// ([`FleetOrchestrator::snapshot`] / [`FleetOrchestrator::resume`]).
pub struct FleetOrchestrator {
    config: FleetConfig,
    shards: Vec<PipelinedSystem>,
    pool: SharedWorkerPool,
    ledger: FleetLedger,
}

impl FleetOrchestrator {
    /// Boots one [`PipelinedSystem`] per spec (committee training, CQC fit,
    /// bandit warm-up — each on its shard's private platform), overriding
    /// each spec's `budget_cents` with the shard's fleet quota and tagging
    /// each platform with its shard id for attribution.
    ///
    /// # Panics
    ///
    /// Panics when `specs` is empty, `specs`/`datasets` lengths differ, the
    /// fleet config is inconsistent, or a priority arbitration has the
    /// wrong number of weights.
    pub fn new(specs: Vec<ShardSpec>, config: FleetConfig, datasets: &[Dataset]) -> Self {
        config.validate();
        assert!(!specs.is_empty(), "a fleet needs at least one shard");
        assert_eq!(
            specs.len(),
            datasets.len(),
            "one dataset per shard required"
        );
        let ledger = FleetLedger::new(config.fleet_budget_cents, &config.arbitration, specs.len());
        let shards: Vec<PipelinedSystem> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let shard_config = spec.config.with_budget_cents(ledger.quota_cents(i));
                let mut shard = PipelinedSystem::new(&datasets[i], shard_config, spec.runtime);
                // Shard ids start at 1: boot-time characterization (the
                // committee/CQC/bandit warm-up `new` just ran) is already
                // booked under `SubmitterId::DEFAULT`, so offsetting keeps
                // shard 0's cycle-time attribution separate from its boot.
                shard.set_platform_submitter(Self::submitter_for(i));
                shard
            })
            .collect();
        let pool = SharedWorkerPool::new(config.pool_capacity, config.contention_alpha);
        Self {
            config,
            shards,
            pool,
            ledger,
        }
    }

    /// Number of shards in the fleet.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Borrows shard `i`'s pipelined system (its learned modules, its tap).
    pub fn shard(&self, i: usize) -> &PipelinedSystem {
        &self.shards[i]
    }

    /// The submitter id shard `i` posts under.
    pub fn submitter_for(i: usize) -> SubmitterId {
        SubmitterId(i as u32 + 1)
    }

    /// Shard `i`'s platform-side resource attribution — queries, reposts,
    /// worker-seconds, spend — booked under its fleet submitter id during
    /// sensing cycles. Boot-time characterization stays under
    /// `SubmitterId::DEFAULT`, so this is cycle-time work only.
    pub fn shard_usage(&self, i: usize) -> SubmitterUsage {
        self.shards[i]
            .system()
            .platform_stats()
            .usage(Self::submitter_for(i))
    }

    /// The fleet configuration.
    pub fn fleet_config(&self) -> &FleetConfig {
        &self.config
    }

    /// The budget book so far.
    pub fn ledger(&self) -> &FleetLedger {
        &self.ledger
    }

    /// Contention telemetry so far.
    pub fn contention(&self) -> ContentionStats {
        self.pool.contention()
    }

    /// Events processed across all shards so far.
    pub fn events_processed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.events_processed().unwrap_or(0))
            .sum()
    }

    /// The fleet's virtual "now": the latest shard clock, or `None` before
    /// the first step.
    pub fn virtual_now_secs(&self) -> Option<f64> {
        self.shards
            .iter()
            .filter_map(|s| s.virtual_now_secs())
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// Attaches a fresh [`MetricsTap`] to every shard, enabling the
    /// fleet-level rollup sketch on [`FleetReport::rollup_crowd_delay`].
    /// Attach before the first step to observe whole runs.
    pub fn attach_metrics_taps(&mut self) {
        for shard in &mut self.shards {
            shard.attach_metrics_tap(MetricsTap::new());
        }
    }

    /// [`FleetOrchestrator::attach_metrics_taps`] with one explicit tap
    /// configuration per shard. The per-shard delay grids must all match —
    /// the fleet rollup merges the shards' sketches, and mismatched grids
    /// have no meaningful merge — so a heterogeneous configuration is
    /// rejected here, up front, with a typed error naming the offending
    /// shard, rather than aborting a long run at report time. On `Err`, no
    /// tap is attached or replaced.
    ///
    /// # Panics
    ///
    /// Panics if `configs` does not hold exactly one configuration per
    /// shard, or a configuration is invalid.
    pub fn attach_metrics_tap_configs(
        &mut self,
        configs: &[MetricsTapConfig],
    ) -> Result<(), TapGridMismatch> {
        assert_eq!(
            configs.len(),
            self.shards.len(),
            "one tap configuration per shard required"
        );
        let taps: Vec<MetricsTap> = configs
            .iter()
            .map(|&c| MetricsTap::with_config(c))
            .collect();
        for (shard, tap) in taps.iter().enumerate().skip(1) {
            if !taps[0].crowd_delay().same_grid(tap.crowd_delay()) {
                return Err(TapGridMismatch {
                    shard,
                    mismatch: SketchGridMismatch {
                        expected: taps[0].crowd_delay().grid(),
                        found: tap.crowd_delay().grid(),
                    },
                });
            }
        }
        for (shard, tap) in self.shards.iter_mut().zip(taps) {
            shard.attach_metrics_tap(tap);
        }
        Ok(())
    }

    /// Begins every shard's execution if not already begun.
    pub fn start(&mut self, streams: &[SensingCycleStream]) {
        assert_eq!(
            streams.len(),
            self.shards.len(),
            "one stream per shard required"
        );
        for (shard, stream) in self.shards.iter_mut().zip(streams) {
            shard.start(stream);
        }
    }

    /// The shard holding the globally next-due event: earliest virtual due
    /// time, ties broken by shard index. `None` when every queue has
    /// drained.
    fn next_shard(&self) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let Some(due) = shard.next_event_due_secs() else {
                continue;
            };
            // Strict `<` keeps the lowest index on equal due times.
            if best.is_none_or(|(t, _)| due < t) {
                best = Some((due, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Processes the globally next event (the earliest-due shard steps
    /// once, under the fleet hook). Returns `false` when every shard's
    /// queue has drained — the next [`FleetOrchestrator::run_until`] (or
    /// [`FleetOrchestrator::run`]) call produces the report.
    pub fn step(&mut self, datasets: &[Dataset], streams: &[SensingCycleStream]) -> bool {
        self.start(streams);
        let Some(i) = self.next_shard() else {
            return false;
        };
        let stepped = self.shards[i].step_with(
            &datasets[i],
            &streams[i],
            Some(FleetHook {
                shard: i,
                pool: &mut self.pool,
                ledger: &mut self.ledger,
            }),
        );
        debug_assert!(stepped, "peeked shard must pop an event");
        true
    }

    /// Drives the global event loop until `bound` is exhausted or every
    /// shard drains. Returns the report on completion, `None` on a pause —
    /// ready for more `run_until` calls or a
    /// [`FleetOrchestrator::snapshot`]. Bounds are global: `Events(n)`
    /// processes at most `n` events fleet-wide, `VirtualTime(t)` processes
    /// every event due at or before `t` on the merged timeline.
    pub fn run_until(
        &mut self,
        datasets: &[Dataset],
        streams: &[SensingCycleStream],
        bound: RunBound,
    ) -> Option<FleetReport> {
        self.start(streams);
        let mut remaining = match bound {
            RunBound::Events(n) => n,
            RunBound::VirtualTime(_) => u64::MAX,
        };
        while let Some(i) = self.next_shard() {
            if remaining == 0 {
                return None;
            }
            if let RunBound::VirtualTime(t) = bound {
                let due = self.shards[i]
                    .next_event_due_secs()
                    .expect("invariant: next_shard() only returns shards with pending events");
                if due > t {
                    return None;
                }
            }
            let stepped = self.step(datasets, streams);
            debug_assert!(stepped, "a pending event must step");
            remaining -= 1;
        }
        Some(self.finish())
    }

    /// Runs every shard to completion and reports.
    pub fn run(&mut self, datasets: &[Dataset], streams: &[SensingCycleStream]) -> FleetReport {
        self.run_until(datasets, streams, RunBound::Events(u64::MAX))
            .expect("invariant: an unbounded run drains every shard queue")
    }

    /// Closes out all (drained) shard executions into the fleet report.
    fn finish(&mut self) -> FleetReport {
        let reports: Vec<RuntimeReport> = self.shards.iter_mut().map(|s| s.finish()).collect();
        let makespan_secs = reports.iter().map(|r| r.makespan_secs).fold(0.0, f64::max);
        let events_processed = reports.iter().map(|r| r.events_processed).sum();
        // Grids were validated when the taps were attached (or resumed),
        // so the merges succeed; `try_merge` keeps even a violated
        // invariant from aborting the run at report time — the rollup is
        // dropped instead.
        let rollup_crowd_delay = reports
            .iter()
            .map(|r| r.metrics.as_ref())
            .collect::<Option<Vec<&MetricsTap>>>()
            .and_then(|taps| {
                let mut rollup = taps[0].crowd_delay().clone();
                for tap in &taps[1..] {
                    rollup.try_merge(tap.crowd_delay()).ok()?;
                }
                Some(rollup)
            });
        FleetReport {
            shards: reports,
            makespan_secs,
            events_processed,
            ledger: self.ledger.clone(),
            contention: self.pool.contention(),
            rollup_crowd_delay,
        }
    }

    /// Serializes the whole fleet — every shard's system and execution
    /// state, the shared pool, the ledger — at the current global event
    /// boundary.
    pub fn snapshot(&self) -> Result<FleetSnapshot, FleetSnapshotError> {
        let mut payload = Vec::new();
        self.config.encode(&mut payload);
        self.ledger.encode(&mut payload);
        self.pool.encode(&mut payload);
        let frames: Vec<Vec<u8>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(shard, s)| {
                s.snapshot()
                    .map(|snap| snap.to_bytes())
                    .map_err(|error| FleetSnapshotError::Shard { shard, error })
            })
            .collect::<Result<_, _>>()?;
        frames.encode(&mut payload);
        Ok(FleetSnapshot::seal(payload))
    }

    /// Rebuilds a fleet from a snapshot, against the same per-shard streams
    /// the snapshotted fleet was processing (streams regenerate
    /// deterministically from dataset + seed; resume cross-checks shard and
    /// cycle counts).
    pub fn resume(
        snapshot: &FleetSnapshot,
        streams: &[SensingCycleStream],
    ) -> Result<Self, FleetSnapshotError> {
        let mut r = Reader::new(snapshot.payload());
        let config = FleetConfig::decode(&mut r).map_err(FleetSnapshotError::Corrupt)?;
        let ledger = FleetLedger::decode(&mut r).map_err(FleetSnapshotError::Corrupt)?;
        let pool = SharedWorkerPool::decode(&mut r).map_err(FleetSnapshotError::Corrupt)?;
        let frames = Vec::<Vec<u8>>::decode(&mut r).map_err(FleetSnapshotError::Corrupt)?;
        if !r.is_empty() {
            return Err(FleetSnapshotError::Corrupt(DecodeError::Invalid));
        }
        if frames.len() != ledger.shards() || frames.is_empty() {
            return Err(FleetSnapshotError::Corrupt(DecodeError::Invalid));
        }
        if streams.len() != frames.len() {
            return Err(FleetSnapshotError::ShardCountMismatch {
                expected: frames.len(),
                found: streams.len(),
            });
        }
        let shards: Vec<PipelinedSystem> = frames
            .iter()
            .enumerate()
            .map(|(shard, bytes)| {
                let snap = RuntimeSnapshot::from_bytes(bytes)
                    .map_err(|error| FleetSnapshotError::Shard { shard, error })?;
                PipelinedSystem::resume(&snap, &streams[shard])
                    .map_err(|error| FleetSnapshotError::Shard { shard, error })
            })
            .collect::<Result<_, _>>()?;
        // Cross-shard tap grids must be mergeable for the report rollup;
        // reject a heterogeneous (e.g. version-skewed or hand-assembled)
        // snapshot here rather than letting it abort at report time.
        let mut reference: Option<&QuantileSketch> = None;
        for (shard, s) in shards.iter().enumerate() {
            let Some(tap) = s.metrics_tap() else {
                continue;
            };
            match reference {
                None => reference = Some(tap.crowd_delay()),
                Some(first) if !first.same_grid(tap.crowd_delay()) => {
                    return Err(FleetSnapshotError::TapGridMismatch { shard });
                }
                Some(_) => {}
            }
        }
        Ok(Self {
            config,
            shards,
            pool,
            ledger,
        })
    }
}

/// A heterogeneous per-shard tap configuration, rejected by
/// [`FleetOrchestrator::attach_metrics_tap_configs`] before any tap is
/// attached: the fleet's crowd-delay rollup merges per-shard sketches, and
/// sketches over different grids have no meaningful merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapGridMismatch {
    /// The first shard whose tap grid disagrees with shard 0's.
    pub shard: usize,
    /// The underlying sketch-grid mismatch.
    pub mismatch: SketchGridMismatch,
}

impl std::fmt::Display for TapGridMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {}: {}", self.shard, self.mismatch)
    }
}

impl std::error::Error for TapGridMismatch {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.mismatch)
    }
}

// ---------------------------------------------------------------------------
// Fleet snapshot framing

/// Leading bytes of every fleet snapshot.
const FLEET_MAGIC: [u8; 8] = *b"CLFLEET\x00";

/// Current fleet snapshot format version. Bump on any payload layout
/// change (per-shard payloads are additionally versioned by
/// [`crate::SNAPSHOT_FORMAT_VERSION`] inside their embedded frames).
pub const FLEET_SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Why a fleet snapshot could not be produced or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetSnapshotError {
    /// The bytes do not start with the fleet snapshot magic.
    BadMagic,
    /// The snapshot was written by a different fleet format version.
    VersionMismatch {
        /// The version recorded in the snapshot.
        found: u32,
    },
    /// The payload checksum does not match — the bytes were corrupted.
    ChecksumMismatch,
    /// The fleet-level payload failed to decode or failed an invariant.
    Corrupt(DecodeError),
    /// The stream set handed to resume has a different shard count than the
    /// fleet the snapshot was taken of.
    ShardCountMismatch {
        /// Shards the snapshot expects.
        expected: usize,
        /// Streams provided.
        found: usize,
    },
    /// One shard's embedded snapshot failed to validate or restore.
    Shard {
        /// The failing shard's index.
        shard: usize,
        /// The underlying per-shard snapshot error.
        error: SnapshotError,
    },
    /// A resumed shard carries a metrics tap whose delay grid differs from
    /// the other shards' — the fleet rollup could never merge it.
    TapGridMismatch {
        /// The first shard whose tap grid disagrees.
        shard: usize,
    },
}

impl std::fmt::Display for FleetSnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetSnapshotError::BadMagic => write!(f, "not a fleet snapshot (bad magic)"),
            FleetSnapshotError::VersionMismatch { found } => write!(
                f,
                "fleet snapshot format version {found} != supported {FLEET_SNAPSHOT_FORMAT_VERSION}"
            ),
            FleetSnapshotError::ChecksumMismatch => {
                write!(f, "fleet snapshot payload checksum mismatch")
            }
            FleetSnapshotError::Corrupt(e) => write!(f, "fleet snapshot payload corrupt: {e}"),
            FleetSnapshotError::ShardCountMismatch { expected, found } => write!(
                f,
                "fleet snapshot expects {expected} shard streams, got {found}"
            ),
            FleetSnapshotError::Shard { shard, error } => {
                write!(f, "shard {shard} snapshot: {error}")
            }
            FleetSnapshotError::TapGridMismatch { shard } => {
                write!(
                    f,
                    "shard {shard}'s metrics-tap delay grid differs from the fleet's"
                )
            }
        }
    }
}

impl std::error::Error for FleetSnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetSnapshotError::Corrupt(e) => Some(e),
            FleetSnapshotError::Shard { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// A sealed fleet snapshot: framing mirrors [`RuntimeSnapshot`] (own magic,
/// version, payload length, FNV-1a-64 checksum) so a later process can
/// validate the bytes before trusting them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSnapshot {
    payload: Vec<u8>,
}

impl FleetSnapshot {
    fn seal(payload: Vec<u8>) -> Self {
        Self { payload }
    }

    fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The snapshot's serialized size in bytes, framing included.
    pub fn serialized_len(&self) -> usize {
        FLEET_MAGIC.len() + 4 + 8 + 8 + self.payload.len()
    }

    /// Serializes the snapshot with its magic/version/length/checksum
    /// frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        out.extend_from_slice(&FLEET_MAGIC);
        out.extend_from_slice(&FLEET_SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Validates the frame (magic, version, length, checksum) and returns
    /// the snapshot; payload *contents* are validated by
    /// [`FleetOrchestrator::resume`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FleetSnapshotError> {
        let header = FLEET_MAGIC.len() + 4 + 8 + 8;
        if bytes.len() < FLEET_MAGIC.len() || bytes[..FLEET_MAGIC.len()] != FLEET_MAGIC {
            return Err(FleetSnapshotError::BadMagic);
        }
        if bytes.len() < header {
            return Err(FleetSnapshotError::Corrupt(DecodeError::Truncated));
        }
        let version = u32::from_le_bytes(
            bytes[8..12]
                .try_into()
                .expect("invariant: slice is 4 bytes"),
        );
        if version != FLEET_SNAPSHOT_FORMAT_VERSION {
            return Err(FleetSnapshotError::VersionMismatch { found: version });
        }
        let len = u64::from_le_bytes(
            bytes[12..20]
                .try_into()
                .expect("invariant: slice is 8 bytes"),
        );
        let checksum = u64::from_le_bytes(
            bytes[20..28]
                .try_into()
                .expect("invariant: slice is 8 bytes"),
        );
        let payload = &bytes[header..];
        if payload.len() as u64 != len {
            return Err(FleetSnapshotError::Corrupt(
                if (payload.len() as u64) < len {
                    DecodeError::Truncated
                } else {
                    DecodeError::Invalid
                },
            ));
        }
        if fnv1a64(payload) != checksum {
            return Err(FleetSnapshotError::ChecksumMismatch);
        }
        Ok(Self {
            payload: payload.to_vec(),
        })
    }
}

// ---------------------------------------------------------------------------
// Codecs

impl Encode for ArbitrationPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ArbitrationPolicy::FairShare => 0u8.encode(out),
            ArbitrationPolicy::Priority(weights) => {
                1u8.encode(out);
                weights.encode(out);
            }
        }
    }
}

impl Decode for ArbitrationPolicy {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(ArbitrationPolicy::FairShare),
            1 => {
                let weights = Vec::<f64>::decode(r)?;
                if weights.is_empty() || weights.iter().any(|w| !w.is_finite() || *w <= 0.0) {
                    return Err(DecodeError::Invalid);
                }
                Ok(ArbitrationPolicy::Priority(weights))
            }
            _ => Err(DecodeError::Invalid),
        }
    }
}

impl Encode for FleetConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pool_capacity.encode(out);
        self.contention_alpha.encode(out);
        self.fleet_budget_cents.encode(out);
        self.arbitration.encode(out);
    }
}

impl Decode for FleetConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let config = Self {
            pool_capacity: usize::decode(r)?,
            contention_alpha: f64::decode(r)?,
            fleet_budget_cents: f64::decode(r)?,
            arbitration: ArbitrationPolicy::decode(r)?,
        };
        if !config.is_valid() {
            return Err(DecodeError::Invalid);
        }
        Ok(config)
    }
}

impl Encode for FleetLedger {
    fn encode(&self, out: &mut Vec<u8>) {
        self.fleet_budget_cents.encode(out);
        self.quotas_cents.encode(out);
        self.spent_cents.encode(out);
    }
}

impl Decode for FleetLedger {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let ledger = Self {
            fleet_budget_cents: f64::decode(r)?,
            quotas_cents: Vec::<f64>::decode(r)?,
            spent_cents: Vec::<u64>::decode(r)?,
        };
        let valid = ledger.fleet_budget_cents.is_finite()
            && ledger.fleet_budget_cents >= 0.0
            && ledger.quotas_cents.len() == ledger.spent_cents.len()
            && !ledger.quotas_cents.is_empty()
            && ledger
                .quotas_cents
                .iter()
                .all(|q| q.is_finite() && *q >= 0.0);
        if !valid {
            return Err(DecodeError::Invalid);
        }
        Ok(ledger)
    }
}

impl Encode for BusyInterval {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shard.encode(out);
        self.workers.encode(out);
        self.until_secs.encode(out);
    }
}

impl Decode for BusyInterval {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let interval = Self {
            shard: usize::decode(r)?,
            workers: usize::decode(r)?,
            until_secs: f64::decode(r)?,
        };
        if !interval.until_secs.is_finite() || interval.until_secs < 0.0 {
            return Err(DecodeError::Invalid);
        }
        Ok(interval)
    }
}

impl Encode for SharedWorkerPool {
    fn encode(&self, out: &mut Vec<u8>) {
        self.capacity.encode(out);
        self.alpha.encode(out);
        self.busy.encode(out);
        self.total_wait_secs.encode(out);
        self.waits_applied.encode(out);
        self.posts.encode(out);
        self.peak_busy_workers.encode(out);
    }
}

impl Decode for SharedWorkerPool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let pool = Self {
            capacity: usize::decode(r)?,
            alpha: f64::decode(r)?,
            busy: Vec::<BusyInterval>::decode(r)?,
            total_wait_secs: f64::decode(r)?,
            waits_applied: u64::decode(r)?,
            posts: u64::decode(r)?,
            peak_busy_workers: usize::decode(r)?,
        };
        let valid = pool.capacity > 0
            && pool.alpha.is_finite()
            && pool.alpha >= 0.0
            && pool.total_wait_secs.is_finite()
            && pool.total_wait_secs >= 0.0
            && pool.waits_applied <= pool.posts;
        if !valid {
            return Err(DecodeError::Invalid);
        }
        Ok(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_shard_never_waits() {
        let mut pool = SharedWorkerPool::new(80, 1.0);
        let w1 = pool.queue_wait_secs(0, 100.0, 0.0);
        pool.occupy(0, 5, 100.0);
        // Own busy workers never count against the same shard.
        let w2 = pool.queue_wait_secs(0, 100.0, 10.0);
        assert_eq!((w1, w2), (0.0, 0.0));
        assert_eq!(pool.contention().waits_applied, 0);
        assert_eq!(pool.contention().posts, 2);
    }

    #[test]
    fn waits_grow_with_other_shards_utilization() {
        let mut pool = SharedWorkerPool::new(80, 1.0);
        pool.occupy(1, 20, 1_000.0);
        let light = pool.queue_wait_secs(0, 100.0, 0.0);
        pool.occupy(2, 40, 1_000.0);
        let heavy = pool.queue_wait_secs(0, 100.0, 0.0);
        // u = 20/80 → wait = 100·(0.25/0.75); u = 60/80 → 100·(0.75/0.25).
        assert!((light - 100.0 / 3.0).abs() < 1e-9, "light wait {light}");
        assert!((heavy - 300.0).abs() < 1e-9, "heavy wait {heavy}");
        assert!(heavy > light);
    }

    #[test]
    fn saturated_pool_clamps_at_the_utilization_cap() {
        let mut pool = SharedWorkerPool::new(10, 1.0);
        pool.occupy(1, 500, 1_000.0);
        let wait = pool.queue_wait_secs(0, 100.0, 0.0);
        // Clamped at u = 0.95 → ×19 multiplier.
        assert!((wait - 1_900.0).abs() < 1e-9, "clamped wait {wait}");
    }

    #[test]
    fn expired_claims_release_their_workers() {
        let mut pool = SharedWorkerPool::new(80, 1.0);
        pool.occupy(1, 40, 50.0);
        assert!(pool.queue_wait_secs(0, 100.0, 0.0) > 0.0);
        // At t=50 the claim has lapsed (strict `until > now`).
        assert_eq!(pool.queue_wait_secs(0, 100.0, 50.0), 0.0);
    }

    #[test]
    fn zero_alpha_disables_contention() {
        let mut pool = SharedWorkerPool::new(10, 0.0);
        pool.occupy(1, 9, 1_000.0);
        assert_eq!(pool.queue_wait_secs(0, 100.0, 0.0), 0.0);
    }

    #[test]
    fn fair_share_splits_evenly_and_priority_by_weight() {
        let fair = FleetLedger::new(1_200.0, &ArbitrationPolicy::FairShare, 3);
        for i in 0..3 {
            assert!((fair.quota_cents(i) - 400.0).abs() < 1e-9);
        }
        let prio = FleetLedger::new(
            1_200.0,
            &ArbitrationPolicy::Priority(vec![3.0, 2.0, 1.0]),
            3,
        );
        assert!((prio.quota_cents(0) - 600.0).abs() < 1e-9);
        assert!((prio.quota_cents(1) - 400.0).abs() < 1e-9);
        assert!((prio.quota_cents(2) - 200.0).abs() < 1e-9);
        assert!((prio.fleet_budget_cents() - 1_200.0).abs() < 1e-9);
    }

    #[test]
    fn single_shard_fair_share_quota_is_bitwise_exact() {
        // The 1-shard parity chain needs the quota to equal the budget to
        // the last bit, or the shard's bandit would plan differently.
        let ledger = FleetLedger::new(1_000.0, &ArbitrationPolicy::FairShare, 1);
        assert_eq!(ledger.quota_cents(0).to_bits(), 1_000.0f64.to_bits());
    }

    #[test]
    fn ledger_books_spend_per_shard() {
        let mut ledger = FleetLedger::new(100.0, &ArbitrationPolicy::FairShare, 2);
        ledger.charge(0, 6);
        ledger.charge(0, 4);
        ledger.charge(1, 20);
        assert_eq!(ledger.spent_cents(0), 10);
        assert_eq!(ledger.spent_cents(1), 20);
        assert_eq!(ledger.total_spent_cents(), 30);
        assert!((ledger.remaining_cents(0) - 40.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one priority weight per shard")]
    fn priority_weight_count_must_match_shards() {
        FleetLedger::new(100.0, &ArbitrationPolicy::Priority(vec![1.0, 2.0]), 3);
    }

    #[test]
    fn pool_and_ledger_codecs_round_trip() {
        let mut pool = SharedWorkerPool::new(80, 0.5);
        pool.occupy(1, 20, 700.0);
        let _ = pool.queue_wait_secs(0, 100.0, 10.0);
        let decoded =
            SharedWorkerPool::from_bytes(&pool.to_bytes()).expect("pool codec round trips");
        assert_eq!(pool, decoded);

        let mut ledger = FleetLedger::new(900.0, &ArbitrationPolicy::Priority(vec![2.0, 1.0]), 2);
        ledger.charge(0, 12);
        let decoded = FleetLedger::from_bytes(&ledger.to_bytes()).expect("ledger codec");
        assert_eq!(ledger, decoded);

        let config = FleetConfig::new(900.0)
            .with_pool_capacity(40)
            .with_contention_alpha(0.25)
            .with_arbitration(ArbitrationPolicy::Priority(vec![2.0, 1.0]));
        let decoded = FleetConfig::from_bytes(&config.to_bytes()).expect("config codec");
        assert_eq!(config, decoded);
    }

    #[test]
    fn fleet_frame_round_trips_and_rejects_tampering() {
        let snap = FleetSnapshot::seal(vec![7; 24]);
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), snap.serialized_len());
        assert_eq!(FleetSnapshot::from_bytes(&bytes), Ok(snap));

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(
            FleetSnapshot::from_bytes(&bad_magic),
            Err(FleetSnapshotError::BadMagic)
        );

        let mut wrong_version = bytes.clone();
        wrong_version[8] ^= 0x40;
        assert!(matches!(
            FleetSnapshot::from_bytes(&wrong_version),
            Err(FleetSnapshotError::VersionMismatch { .. })
        ));

        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert_eq!(
            FleetSnapshot::from_bytes(&corrupt),
            Err(FleetSnapshotError::ChecksumMismatch)
        );

        assert_eq!(
            FleetSnapshot::from_bytes(&bytes[..bytes.len() - 3]),
            Err(FleetSnapshotError::Corrupt(DecodeError::Truncated))
        );
    }

    #[test]
    fn fleet_errors_format_and_chain() {
        use std::error::Error;
        let e = FleetSnapshotError::Shard {
            shard: 2,
            error: SnapshotError::ChecksumMismatch,
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(e.source().is_some(), "shard errors expose their source");
        let boxed: Box<dyn Error> = Box::new(e);
        assert!(boxed.to_string().contains("checksum"));

        let e = FleetSnapshotError::TapGridMismatch { shard: 1 };
        assert!(e.to_string().contains("shard 1"));
        assert!(e.to_string().contains("delay grid"));
    }

    #[test]
    fn tap_grid_mismatch_formats_and_chains_to_the_sketch_error() {
        use std::error::Error;
        let e = TapGridMismatch {
            shard: 3,
            mismatch: SketchGridMismatch {
                expected: (0.0, 7200.0, 1024),
                found: (0.0, 3600.0, 512),
            },
        };
        assert!(e.to_string().contains("shard 3"));
        assert!(e.to_string().contains("grid mismatch"));
        let source = e.source().expect("wraps the sketch-level mismatch");
        assert!(source.to_string().contains("7200"));
    }
}
