//! Deterministic fault injection: seeded, virtual-time schedules of crowd
//! failures, and the typed circuit-breaker states the driver answers them
//! with.
//!
//! A [`FaultPlan`] is a list of typed [`FaultEpisode`]s pinned to virtual
//! time. The driver turns the plan into [`crate::EventKind::FaultStart`] /
//! [`crate::EventKind::FaultEnd`] events at boot, and consults a
//! [`FaultInjector`] at event boundaries. Every injector answer is a pure
//! function of virtual time plus a dedicated SplitMix64 stream seeded from
//! the plan — no wall clock, no shared RNG — so a faulted run is exactly as
//! replayable as a clean one, and an **empty plan draws nothing at all**:
//! the run is byte-identical to one that never heard of faults.
//!
//! The episode taxonomy mirrors how a real crowd platform fails under a
//! live deployment (DESIGN.md "Fault model & degradation ladder"):
//!
//! * [`FaultEpisode::PlatformOutage`] — HIT posts are rejected outright.
//! * [`FaultEpisode::WorkerAttrition`] — the worker pool shrinks; answer
//!   delays inflate by `1 / (1 - fraction)`.
//! * [`FaultEpisode::AnswerLoss`] — a posted attempt never answers, forcing
//!   the timeout path.
//! * [`FaultEpisode::BudgetShock`] — an instantaneous ledger clawback.
//!
//! Episode windows are half-open `[from, until)`: at the `until` instant
//! the fault is already over, regardless of how simultaneous events happen
//! to tie-break.

use serde::binary::{Decode, DecodeError, Encode, Reader};

/// One typed fault episode pinned to virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEpisode {
    /// The crowd platform rejects every HIT post in `[from, until)`.
    PlatformOutage {
        /// Virtual second the outage begins.
        from_secs: f64,
        /// Virtual second the platform accepts posts again (exclusive).
        until_secs: f64,
    },
    /// A `fraction` of the worker pool walks away in `[from, until)`;
    /// answers posted during the window take `1 / (1 - fraction)` times as
    /// long to complete.
    WorkerAttrition {
        /// Fraction of the pool lost, in `[0, 1)`.
        fraction: f64,
        /// Virtual second the attrition begins.
        from_secs: f64,
        /// Virtual second the pool is back at strength (exclusive).
        until_secs: f64,
    },
    /// Each attempt posted in `[from, until)` is lost with probability
    /// `prob` — the workers never answer, and only the timeout path can
    /// retire the HIT. Requires a configured HIT timeout.
    AnswerLoss {
        /// Per-attempt loss probability, in `[0, 1]`.
        prob: f64,
        /// Virtual second losses begin.
        from_secs: f64,
        /// Virtual second losses stop (exclusive).
        until_secs: f64,
    },
    /// `cents` are clawed back from the incentive bandit's ledger at
    /// `at_secs` (a sponsor pulling funds, a platform reversing a refund).
    /// Instantaneous: it emits only a `FaultStarted` metric, no end.
    BudgetShock {
        /// Virtual second the clawback lands.
        at_secs: f64,
        /// Amount removed (the ledger clamps at zero).
        cents: f64,
    },
}

impl FaultEpisode {
    /// Virtual second the episode takes effect.
    pub fn start_secs(&self) -> f64 {
        match *self {
            FaultEpisode::PlatformOutage { from_secs, .. }
            | FaultEpisode::WorkerAttrition { from_secs, .. }
            | FaultEpisode::AnswerLoss { from_secs, .. } => from_secs,
            FaultEpisode::BudgetShock { at_secs, .. } => at_secs,
        }
    }

    /// Virtual second a windowed episode ends (exclusive), or `None` for
    /// the instantaneous [`FaultEpisode::BudgetShock`].
    pub fn end_secs(&self) -> Option<f64> {
        match *self {
            FaultEpisode::PlatformOutage { until_secs, .. }
            | FaultEpisode::WorkerAttrition { until_secs, .. }
            | FaultEpisode::AnswerLoss { until_secs, .. } => Some(until_secs),
            FaultEpisode::BudgetShock { .. } => None,
        }
    }

    /// Whether a windowed episode covers the instant `now` (`[from, until)`;
    /// always `false` for [`FaultEpisode::BudgetShock`]).
    pub fn active_at(&self, now_secs: f64) -> bool {
        match self.end_secs() {
            Some(until) => self.start_secs() <= now_secs && now_secs < until,
            None => false,
        }
    }

    fn is_valid(&self) -> bool {
        let window_ok = |from: f64, until: f64| {
            from.is_finite() && from >= 0.0 && until.is_finite() && until > from
        };
        match *self {
            FaultEpisode::PlatformOutage {
                from_secs,
                until_secs,
            } => window_ok(from_secs, until_secs),
            FaultEpisode::WorkerAttrition {
                fraction,
                from_secs,
                until_secs,
            } => window_ok(from_secs, until_secs) && (0.0..1.0).contains(&fraction),
            FaultEpisode::AnswerLoss {
                prob,
                from_secs,
                until_secs,
            } => window_ok(from_secs, until_secs) && (0.0..=1.0).contains(&prob),
            FaultEpisode::BudgetShock { at_secs, cents } => {
                at_secs.is_finite() && at_secs >= 0.0 && cents.is_finite() && cents >= 0.0
            }
        }
    }
}

// Snapshot codec: a stable u8 tag per episode kind, fields in declaration
// order. Decode re-checks the `FaultPlan::new` invariants and reports
// `Invalid` instead of panicking.
impl Encode for FaultEpisode {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            FaultEpisode::PlatformOutage {
                from_secs,
                until_secs,
            } => {
                0u8.encode(out);
                from_secs.encode(out);
                until_secs.encode(out);
            }
            FaultEpisode::WorkerAttrition {
                fraction,
                from_secs,
                until_secs,
            } => {
                1u8.encode(out);
                fraction.encode(out);
                from_secs.encode(out);
                until_secs.encode(out);
            }
            FaultEpisode::AnswerLoss {
                prob,
                from_secs,
                until_secs,
            } => {
                2u8.encode(out);
                prob.encode(out);
                from_secs.encode(out);
                until_secs.encode(out);
            }
            FaultEpisode::BudgetShock { at_secs, cents } => {
                3u8.encode(out);
                at_secs.encode(out);
                cents.encode(out);
            }
        }
    }
}

impl Decode for FaultEpisode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => validated(FaultEpisode::PlatformOutage {
                from_secs: f64::decode(r)?,
                until_secs: f64::decode(r)?,
            }),
            1 => validated(FaultEpisode::WorkerAttrition {
                fraction: f64::decode(r)?,
                from_secs: f64::decode(r)?,
                until_secs: f64::decode(r)?,
            }),
            2 => validated(FaultEpisode::AnswerLoss {
                prob: f64::decode(r)?,
                from_secs: f64::decode(r)?,
                until_secs: f64::decode(r)?,
            }),
            3 => validated(FaultEpisode::BudgetShock {
                at_secs: f64::decode(r)?,
                cents: f64::decode(r)?,
            }),
            _ => Err(DecodeError::Invalid),
        }
    }
}

/// Maps a wire-read episode to `Invalid` when it breaks the `FaultPlan::new`
/// invariants — the decode-side twin of the constructor's validation.
fn validated(episode: FaultEpisode) -> Result<FaultEpisode, DecodeError> {
    if episode.is_valid() {
        Ok(episode)
    } else {
        Err(DecodeError::Invalid)
    }
}

/// A seeded, virtual-time schedule of [`FaultEpisode`]s — the whole fault
/// scenario of a run, carried by [`crate::RuntimeConfig`] and therefore by
/// the snapshot and each fleet shard's spec.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    episodes: Vec<FaultEpisode>,
}

impl FaultPlan {
    /// The empty plan: no episodes, no RNG draws, byte-identical runs.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with `episodes` drawing loss decisions from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any episode is malformed (non-finite or negative times,
    /// inverted windows, `fraction` outside `[0, 1)`, `prob` outside
    /// `[0, 1]`, negative `cents`).
    pub fn new(seed: u64, episodes: Vec<FaultEpisode>) -> Self {
        let plan = Self { seed, episodes };
        plan.validate();
        plan
    }

    /// The seed of the plan's dedicated RNG stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled episodes, in plan order.
    pub fn episodes(&self) -> &[FaultEpisode] {
        &self.episodes
    }

    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Whether any episode can lose answers (such plans require a
    /// configured HIT timeout — a lost answer can only be retired by it).
    pub fn has_answer_loss(&self) -> bool {
        self.episodes
            .iter()
            .any(|e| matches!(e, FaultEpisode::AnswerLoss { .. }))
    }

    pub(crate) fn validate(&self) {
        for (i, episode) in self.episodes.iter().enumerate() {
            assert!(
                episode.is_valid(),
                "fault episode {i} is malformed: {episode:?}"
            );
        }
    }

    pub(crate) fn is_valid(&self) -> bool {
        self.episodes.iter().all(FaultEpisode::is_valid)
    }
}

impl Encode for FaultPlan {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seed.encode(out);
        self.episodes.encode(out);
    }
}

impl Decode for FaultPlan {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // Per-episode validity is re-checked by `FaultEpisode::decode`.
        Ok(Self {
            seed: u64::decode(r)?,
            episodes: Vec::<FaultEpisode>::decode(r)?,
        })
    }
}

/// SplitMix64 step: the same generator the simulated experts use for
/// hashing, here run as a stream (the state advances per draw).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The injector the driver consults at event boundaries: the plan plus the
/// live state of its dedicated RNG stream. Every query is a pure function
/// of virtual time (and, for loss draws, the stream position), so the
/// injector snapshots as two words beyond the plan itself.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: u64,
}

impl FaultInjector {
    /// Builds an injector; the loss stream starts at the plan's seed.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = plan.seed();
        Self { plan, rng }
    }

    /// The plan being injected.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether a [`FaultEpisode::PlatformOutage`] covers `now`: HIT posts
    /// must be rejected.
    pub fn outage_active(&self, now_secs: f64) -> bool {
        self.plan
            .episodes
            .iter()
            .any(|e| matches!(e, FaultEpisode::PlatformOutage { .. }) && e.active_at(now_secs))
    }

    /// Delay inflation factor from every [`FaultEpisode::WorkerAttrition`]
    /// active at `now`: `1.0` at full strength, the product of
    /// `1 / (1 - fraction)` over active episodes otherwise.
    pub fn attrition_factor(&self, now_secs: f64) -> f64 {
        self.plan
            .episodes
            .iter()
            .filter_map(|e| match e {
                FaultEpisode::WorkerAttrition { fraction, .. } if e.active_at(now_secs) => {
                    Some(1.0 / (1.0 - fraction))
                }
                _ => None,
            })
            .product()
    }

    /// Whether an attempt posted at `now` is lost. Draws from the loss
    /// stream **only** when at least one [`FaultEpisode::AnswerLoss`] is
    /// active — a plan without loss episodes never advances the stream, so
    /// it cannot perturb anything.
    pub fn answer_lost(&mut self, now_secs: f64) -> bool {
        let survive: f64 = self
            .plan
            .episodes
            .iter()
            .filter_map(|e| match e {
                FaultEpisode::AnswerLoss { prob, .. } if e.active_at(now_secs) => Some(1.0 - prob),
                _ => None,
            })
            .product();
        if survive >= 1.0 {
            return false;
        }
        // 53 uniform bits in [0, 1).
        let unit = (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
        unit >= survive
    }
}

// Snapshot codec: the plan plus the live stream position.
impl Encode for FaultInjector {
    fn encode(&self, out: &mut Vec<u8>) {
        self.plan.encode(out);
        self.rng.encode(out);
    }
}

impl Decode for FaultInjector {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            plan: FaultPlan::decode(r)?,
            rng: u64::decode(r)?,
        })
    }
}

/// Circuit-breaker tuning for the crowd path: how long (in sensing cycles)
/// the driver backs off after tripping before probing the platform again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Backoff before the first probe, in cycle periods. At least 1.
    pub base_backoff_cycles: u32,
    /// Backoff ceiling: the doubling stops here. At least
    /// `base_backoff_cycles`.
    pub max_backoff_cycles: u32,
}

impl BreakerConfig {
    /// Probe after one cycle, doubling up to eight.
    pub fn paper() -> Self {
        Self {
            base_backoff_cycles: 1,
            max_backoff_cycles: 8,
        }
    }

    pub(crate) fn validate(&self) {
        assert!(
            self.base_backoff_cycles >= 1,
            "breaker backoff must be at least one cycle"
        );
        assert!(
            self.max_backoff_cycles >= self.base_backoff_cycles,
            "breaker backoff ceiling must be at least the base"
        );
    }

    pub(crate) fn is_valid(&self) -> bool {
        self.base_backoff_cycles >= 1 && self.max_backoff_cycles >= self.base_backoff_cycles
    }
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl Encode for BreakerConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.base_backoff_cycles.encode(out);
        self.max_backoff_cycles.encode(out);
    }
}

impl Decode for BreakerConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let config = Self {
            base_backoff_cycles: u32::decode(r)?,
            max_backoff_cycles: u32::decode(r)?,
        };
        if !config.is_valid() {
            return Err(DecodeError::Invalid);
        }
        Ok(config)
    }
}

/// The crowd-path circuit breaker's state (DESIGN.md "Fault model &
/// degradation ladder"). `Closed` posts normally; a rejected post trips to
/// `Open`, where cycles degrade to AI-only labeling and mid-flight cycles
/// park; after the backoff a scheduled probe passes through `HalfProbe`,
/// either closing (recovery: parked cycles resume posting) or re-opening
/// with doubled backoff. `HalfProbe` never persists across events — it is
/// the transient the probe transitions through, made visible to the
/// metrics tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Crowd path healthy: posts go to the platform.
    Closed,
    /// Crowd path down: no posts; cycles degrade or park.
    Open,
    /// A probe is testing the platform right now.
    HalfProbe,
}

// Snapshot codec: a stable u8 tag per state.
impl Encode for BreakerState {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BreakerState::Closed => 0u8.encode(out),
            BreakerState::Open => 1u8.encode(out),
            BreakerState::HalfProbe => 2u8.encode(out),
        }
    }
}

impl Decode for BreakerState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(BreakerState::Closed),
            1 => Ok(BreakerState::Open),
            2 => Ok(BreakerState::HalfProbe),
            _ => Err(DecodeError::Invalid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outage(from: f64, until: f64) -> FaultEpisode {
        FaultEpisode::PlatformOutage {
            from_secs: from,
            until_secs: until,
        }
    }

    #[test]
    fn empty_plan_answers_nothing_and_never_draws() {
        let mut injector = FaultInjector::new(FaultPlan::none());
        let before = injector.clone();
        for t in [0.0, 1e3, 1e6] {
            assert!(!injector.outage_active(t));
            assert_eq!(injector.attrition_factor(t), 1.0);
            assert!(!injector.answer_lost(t));
        }
        // No draw happened: the stream position is untouched.
        assert_eq!(injector, before);
    }

    #[test]
    fn outage_windows_are_half_open() {
        let plan = FaultPlan::new(1, vec![outage(100.0, 200.0)]);
        let injector = FaultInjector::new(plan);
        assert!(!injector.outage_active(99.9));
        assert!(injector.outage_active(100.0));
        assert!(injector.outage_active(199.9));
        assert!(!injector.outage_active(200.0));
    }

    #[test]
    fn attrition_factors_compound() {
        let plan = FaultPlan::new(
            2,
            vec![
                FaultEpisode::WorkerAttrition {
                    fraction: 0.5,
                    from_secs: 0.0,
                    until_secs: 100.0,
                },
                FaultEpisode::WorkerAttrition {
                    fraction: 0.5,
                    from_secs: 50.0,
                    until_secs: 150.0,
                },
            ],
        );
        let injector = FaultInjector::new(plan);
        assert_eq!(injector.attrition_factor(10.0), 2.0);
        assert_eq!(injector.attrition_factor(75.0), 4.0);
        assert_eq!(injector.attrition_factor(120.0), 2.0);
        assert_eq!(injector.attrition_factor(150.0), 1.0);
    }

    #[test]
    fn answer_loss_draws_only_inside_the_window() {
        let plan = FaultPlan::new(
            3,
            vec![FaultEpisode::AnswerLoss {
                prob: 1.0,
                from_secs: 100.0,
                until_secs: 200.0,
            }],
        );
        let mut injector = FaultInjector::new(plan);
        let before = injector.clone();
        assert!(!injector.answer_lost(50.0));
        assert_eq!(injector, before, "no draw outside the window");
        assert!(injector.answer_lost(150.0), "prob 1.0 always loses");
        assert_ne!(injector, before, "the draw advanced the stream");
    }

    #[test]
    fn answer_loss_rate_tracks_probability() {
        let plan = FaultPlan::new(
            0xfa117,
            vec![FaultEpisode::AnswerLoss {
                prob: 0.3,
                from_secs: 0.0,
                until_secs: 1e9,
            }],
        );
        let mut injector = FaultInjector::new(plan);
        let lost = (0..10_000).filter(|_| injector.answer_lost(1.0)).count();
        assert!(
            (2_700..3_300).contains(&lost),
            "loss rate {lost}/10000 should be near 3000"
        );
    }

    #[test]
    fn same_seed_same_loss_sequence() {
        let plan = FaultPlan::new(
            9,
            vec![FaultEpisode::AnswerLoss {
                prob: 0.5,
                from_secs: 0.0,
                until_secs: 1e6,
            }],
        );
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        let seq_a: Vec<bool> = (0..64).map(|_| a.answer_lost(10.0)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.answer_lost(10.0)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn budget_shock_is_instantaneous() {
        let shock = FaultEpisode::BudgetShock {
            at_secs: 300.0,
            cents: 150.0,
        };
        assert_eq!(shock.start_secs(), 300.0);
        assert_eq!(shock.end_secs(), None);
        assert!(!shock.active_at(300.0));
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn inverted_window_rejected() {
        FaultPlan::new(0, vec![outage(200.0, 100.0)]);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn full_attrition_rejected() {
        // fraction 1.0 would make the inflation factor infinite.
        FaultPlan::new(
            0,
            vec![FaultEpisode::WorkerAttrition {
                fraction: 1.0,
                from_secs: 0.0,
                until_secs: 10.0,
            }],
        );
    }

    #[test]
    fn codec_round_trips_and_rejects_invalid() {
        let plan = FaultPlan::new(
            42,
            vec![
                outage(100.0, 200.0),
                FaultEpisode::WorkerAttrition {
                    fraction: 0.25,
                    from_secs: 0.0,
                    until_secs: 50.0,
                },
                FaultEpisode::AnswerLoss {
                    prob: 0.1,
                    from_secs: 10.0,
                    until_secs: 20.0,
                },
                FaultEpisode::BudgetShock {
                    at_secs: 30.0,
                    cents: 200.0,
                },
            ],
        );
        assert_eq!(FaultPlan::from_bytes(&plan.to_bytes()), Ok(plan.clone()));

        let mut injector = FaultInjector::new(plan);
        injector.answer_lost(15.0);
        assert_eq!(
            FaultInjector::from_bytes(&injector.to_bytes()),
            Ok(injector)
        );

        // An inverted window on the wire decodes to a typed error.
        let mut evil = FaultPlan::none();
        evil.episodes.push(outage(5.0, 1.0));
        assert_eq!(
            FaultPlan::from_bytes(&evil.to_bytes()),
            Err(DecodeError::Invalid)
        );

        // Unknown episode and breaker tags are typed errors too.
        assert_eq!(FaultEpisode::from_bytes(&[9u8]), Err(DecodeError::Invalid));
        assert_eq!(BreakerState::from_bytes(&[3u8]), Err(DecodeError::Invalid));

        for state in [
            BreakerState::Closed,
            BreakerState::Open,
            BreakerState::HalfProbe,
        ] {
            assert_eq!(BreakerState::from_bytes(&state.to_bytes()), Ok(state));
        }
        let config = BreakerConfig::paper();
        assert_eq!(BreakerConfig::from_bytes(&config.to_bytes()), Ok(config));
        let inverted = BreakerConfig {
            base_backoff_cycles: 4,
            max_backoff_cycles: 2,
        };
        assert_eq!(
            BreakerConfig::from_bytes(&inverted.to_bytes()),
            Err(DecodeError::Invalid)
        );
    }

    #[test]
    fn snapshotted_injector_resumes_the_stream_exactly() {
        let plan = FaultPlan::new(
            7,
            vec![FaultEpisode::AnswerLoss {
                prob: 0.5,
                from_secs: 0.0,
                until_secs: 1e6,
            }],
        );
        let mut live = FaultInjector::new(plan);
        for _ in 0..10 {
            live.answer_lost(1.0);
        }
        let mut resumed = FaultInjector::from_bytes(&live.to_bytes()).expect("round trip");
        let rest_live: Vec<bool> = (0..32).map(|_| live.answer_lost(2.0)).collect();
        let rest_resumed: Vec<bool> = (0..32).map(|_| resumed.answer_lost(2.0)).collect();
        assert_eq!(rest_live, rest_resumed);
    }
}
