//! Virtual time.

use serde::binary::{Decode, DecodeError, Encode, Reader};

/// A monotone virtual clock, in seconds since the start of the run.
///
/// The runtime is a discrete-event simulation: time only moves when the
/// [`crate::EventQueue`] hands the loop its next event, and it never moves
/// backwards. Wall-clock time plays no role anywhere — two runs with the
/// same seeds and configuration see the exact same sequence of instants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualClock {
    now_secs: f64,
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        Self { now_secs: 0.0 }
    }

    /// The current virtual time, in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_secs
    }

    /// Advances to `at_secs`, returning the elapsed interval.
    ///
    /// # Panics
    ///
    /// Panics if `at_secs` is NaN or earlier than the current time —
    /// monotonicity is the invariant every event-ordering proof leans on,
    /// so violating it is a bug, not a recoverable condition.
    pub fn advance_to(&mut self, at_secs: f64) -> f64 {
        assert!(!at_secs.is_nan(), "virtual time must not be NaN");
        assert!(
            at_secs >= self.now_secs,
            "virtual clock must be monotone: {at_secs} < {}",
            self.now_secs
        );
        let elapsed = at_secs - self.now_secs;
        self.now_secs = at_secs;
        elapsed
    }
}

impl Encode for VirtualClock {
    fn encode(&self, out: &mut Vec<u8>) {
        self.now_secs.encode(out);
    }
}

impl Decode for VirtualClock {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let now_secs = f64::decode(r)?;
        if now_secs.is_nan() || now_secs < 0.0 {
            return Err(DecodeError::Invalid);
        }
        Ok(Self { now_secs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now_secs(), 0.0);
        assert_eq!(clock.advance_to(12.5), 12.5);
        assert_eq!(clock.advance_to(12.5), 0.0);
        assert_eq!(clock.now_secs(), 12.5);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn rejects_backwards_time() {
        let mut clock = VirtualClock::new();
        clock.advance_to(10.0);
        clock.advance_to(9.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        VirtualClock::new().advance_to(f64::NAN);
    }

    #[test]
    fn codec_round_trips_and_rejects_negative_time() {
        let mut clock = VirtualClock::new();
        clock.advance_to(4321.25);
        assert_eq!(VirtualClock::from_bytes(&clock.to_bytes()), Ok(clock));
        assert_eq!(
            VirtualClock::from_bytes(&(-1.0f64).to_bytes()),
            Err(DecodeError::Invalid)
        );
    }
}
