//! In-flight HIT tracking.

use crowdlearn_crowd::{IncentiveLevel, PendingHit};
use std::collections::BTreeMap;

/// Identifier of a posted HIT, unique within one runtime run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HitId(pub u64);

/// A HIT the runtime has posted and not yet resolved (answered, expired, or
/// abandoned).
#[derive(Debug, Clone)]
pub struct InFlightHit {
    /// The HIT's id.
    pub id: HitId,
    /// Sensing cycle the query belongs to.
    pub cycle: usize,
    /// Index of the queried image within its cycle.
    pub image_index: usize,
    /// Incentive paid for this attempt.
    pub incentive: IncentiveLevel,
    /// Virtual time the HIT was posted.
    pub posted_at_secs: f64,
    /// 1 for the original post, +1 per repost.
    pub attempt: u32,
    /// The platform's pending answer.
    pub pending: PendingHit,
}

/// The board of in-flight HITs.
///
/// Backed by a `BTreeMap` so iteration order (and therefore anything
/// derived from it) is deterministic. The board also tracks its own
/// high-water mark, which the bounded-window property tests assert against.
#[derive(Debug, Default)]
pub struct HitBoard {
    inflight: BTreeMap<HitId, InFlightHit>,
    next_id: u64,
    peak: usize,
}

impl HitBoard {
    /// An empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a newly posted HIT and returns its id.
    pub fn post(
        &mut self,
        cycle: usize,
        image_index: usize,
        incentive: IncentiveLevel,
        posted_at_secs: f64,
        attempt: u32,
        pending: PendingHit,
    ) -> HitId {
        let id = HitId(self.next_id);
        self.next_id += 1;
        self.inflight.insert(
            id,
            InFlightHit {
                id,
                cycle,
                image_index,
                incentive,
                posted_at_secs,
                attempt,
                pending,
            },
        );
        self.peak = self.peak.max(self.inflight.len());
        id
    }

    /// Removes and returns a HIT.
    ///
    /// # Panics
    ///
    /// Panics if the id is not in flight — every scheduled
    /// `HitAnswered`/`HitTimedOut` event must resolve exactly one HIT, so a
    /// miss means an event was duplicated or lost.
    pub fn take(&mut self, id: HitId) -> InFlightHit {
        self.inflight
            .remove(&id)
            .expect("invariant: a HIT is resolved twice or was never posted")
    }

    /// HITs currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// The most HITs ever simultaneously in flight.
    pub fn peak_in_flight(&self) -> usize {
        self.peak
    }

    /// Total HITs ever posted.
    pub fn total_posted(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdlearn_crowd::{Platform, PlatformConfig};
    use crowdlearn_dataset::{Dataset, DatasetConfig, TemporalContext};

    fn pending() -> PendingHit {
        let ds = Dataset::generate(&DatasetConfig::paper().with_seed(1));
        let mut p = Platform::new(PlatformConfig::paper().with_seed(1));
        p.post(&ds.test()[0], IncentiveLevel::C6, TemporalContext::Morning)
    }

    #[test]
    fn ids_are_sequential_and_peak_tracks() {
        let mut board = HitBoard::new();
        let a = board.post(0, 1, IncentiveLevel::C6, 0.0, 1, pending());
        let b = board.post(0, 2, IncentiveLevel::C6, 1.0, 1, pending());
        assert_eq!((a, b), (HitId(0), HitId(1)));
        assert_eq!(board.in_flight(), 2);
        board.take(a);
        assert_eq!(board.in_flight(), 1);
        assert_eq!(board.peak_in_flight(), 2);
        assert_eq!(board.total_posted(), 2);
    }

    #[test]
    #[should_panic(expected = "resolved twice")]
    fn double_take_panics() {
        let mut board = HitBoard::new();
        let id = board.post(0, 0, IncentiveLevel::C1, 0.0, 1, pending());
        board.take(id);
        board.take(id);
    }
}
