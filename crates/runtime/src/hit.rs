//! In-flight HIT tracking.

use crowdlearn_crowd::{IncentiveLevel, PendingHit};
use serde::binary::{Decode, DecodeError, Encode, Reader};
use std::collections::BTreeMap;

/// Identifier of a posted HIT, unique within one runtime run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HitId(pub u64);

/// A HIT the runtime has posted and not yet resolved (answered, expired, or
/// abandoned).
#[derive(Debug, Clone)]
pub struct InFlightHit {
    /// The HIT's id.
    pub id: HitId,
    /// Sensing cycle the query belongs to.
    pub cycle: usize,
    /// Index of the queried image within its cycle.
    pub image_index: usize,
    /// Incentive paid for this attempt.
    pub incentive: IncentiveLevel,
    /// Virtual time the HIT was posted.
    pub posted_at_secs: f64,
    /// 1 for the original post, +1 per repost.
    pub attempt: u32,
    /// Whether fault injection lost this attempt: the workers will never
    /// answer, and only the timeout path can retire the HIT (see
    /// [`crate::FaultEpisode::AnswerLoss`]).
    pub lost: bool,
    /// The platform's pending answer.
    pub pending: PendingHit,
}

/// The board of in-flight HITs.
///
/// Backed by a `BTreeMap` so iteration order (and therefore anything
/// derived from it) is deterministic. The board also tracks its own
/// high-water mark, which the bounded-window property tests assert against.
#[derive(Debug, Default)]
pub struct HitBoard {
    inflight: BTreeMap<HitId, InFlightHit>,
    next_id: u64,
    peak: usize,
}

impl HitBoard {
    /// An empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a newly posted HIT and returns its id.
    // Eight arguments: the full identity of a posted attempt (the `lost`
    // flag pushed it past clippy's limit); a builder would move the same
    // fields one call away without making any of them optional.
    #[allow(clippy::too_many_arguments)]
    pub fn post(
        &mut self,
        cycle: usize,
        image_index: usize,
        incentive: IncentiveLevel,
        posted_at_secs: f64,
        attempt: u32,
        lost: bool,
        pending: PendingHit,
    ) -> HitId {
        let id = HitId(self.next_id);
        self.next_id += 1;
        self.inflight.insert(
            id,
            InFlightHit {
                id,
                cycle,
                image_index,
                incentive,
                posted_at_secs,
                attempt,
                lost,
                pending,
            },
        );
        self.peak = self.peak.max(self.inflight.len());
        id
    }

    /// Removes and returns a HIT.
    ///
    /// # Panics
    ///
    /// Panics if the id is not in flight — every scheduled
    /// `HitAnswered`/`HitTimedOut` event must resolve exactly one HIT, so a
    /// miss means an event was duplicated or lost.
    pub fn take(&mut self, id: HitId) -> InFlightHit {
        self.inflight
            .remove(&id)
            .expect("invariant: a HIT is resolved twice or was never posted")
    }

    /// Puts a previously taken HIT back in flight under its original id —
    /// the waited-out-timeout path, where the expired HIT stays on the board
    /// until its `LateAnswer` event fires.
    ///
    /// # Panics
    ///
    /// Panics if the id is already in flight.
    pub fn reinstate(&mut self, hit: InFlightHit) {
        let prior = self.inflight.insert(hit.id, hit);
        assert!(prior.is_none(), "cannot reinstate a HIT already in flight");
        self.peak = self.peak.max(self.inflight.len());
    }

    /// HITs currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// The most HITs ever simultaneously in flight.
    pub fn peak_in_flight(&self) -> usize {
        self.peak
    }

    /// Total HITs ever posted.
    pub fn total_posted(&self) -> u64 {
        self.next_id
    }
}

impl Encode for HitId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for HitId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self(u64::decode(r)?))
    }
}

impl Encode for InFlightHit {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.cycle.encode(out);
        self.image_index.encode(out);
        self.incentive.encode(out);
        self.posted_at_secs.encode(out);
        self.attempt.encode(out);
        self.lost.encode(out);
        self.pending.encode(out);
    }
}

impl Decode for InFlightHit {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let hit = Self {
            id: HitId::decode(r)?,
            cycle: usize::decode(r)?,
            image_index: usize::decode(r)?,
            incentive: IncentiveLevel::decode(r)?,
            posted_at_secs: f64::decode(r)?,
            attempt: u32::decode(r)?,
            lost: bool::decode(r)?,
            pending: PendingHit::decode(r)?,
        };
        if !hit.posted_at_secs.is_finite() || hit.posted_at_secs < 0.0 || hit.attempt < 1 {
            return Err(DecodeError::Invalid);
        }
        Ok(hit)
    }
}

// The board serializes as its in-flight HITs (already id-sorted by the
// BTreeMap) plus the id counter and high-water mark.
impl Encode for HitBoard {
    fn encode(&self, out: &mut Vec<u8>) {
        self.inflight.len().encode(out);
        for hit in self.inflight.values() {
            hit.encode(out);
        }
        self.next_id.encode(out);
        self.peak.encode(out);
    }
}

impl Decode for HitBoard {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = usize::decode(r)?;
        let mut inflight = BTreeMap::new();
        for _ in 0..n {
            let hit = InFlightHit::decode(r)?;
            if inflight.insert(hit.id, hit).is_some() {
                return Err(DecodeError::Invalid);
            }
        }
        let next_id = u64::decode(r)?;
        let peak = usize::decode(r)?;
        if inflight.keys().any(|id| id.0 >= next_id) || peak < inflight.len() {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            inflight,
            next_id,
            peak,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdlearn_crowd::{Platform, PlatformConfig};
    use crowdlearn_dataset::{Dataset, DatasetConfig, TemporalContext};

    fn pending() -> PendingHit {
        let ds = Dataset::generate(&DatasetConfig::paper().with_seed(1));
        let mut p = Platform::new(PlatformConfig::paper().with_seed(1));
        p.post(&ds.test()[0], IncentiveLevel::C6, TemporalContext::Morning)
    }

    #[test]
    fn ids_are_sequential_and_peak_tracks() {
        let mut board = HitBoard::new();
        let a = board.post(0, 1, IncentiveLevel::C6, 0.0, 1, false, pending());
        let b = board.post(0, 2, IncentiveLevel::C6, 1.0, 1, false, pending());
        assert_eq!((a, b), (HitId(0), HitId(1)));
        assert_eq!(board.in_flight(), 2);
        board.take(a);
        assert_eq!(board.in_flight(), 1);
        assert_eq!(board.peak_in_flight(), 2);
        assert_eq!(board.total_posted(), 2);
    }

    #[test]
    #[should_panic(expected = "resolved twice")]
    fn double_take_panics() {
        let mut board = HitBoard::new();
        let id = board.post(0, 0, IncentiveLevel::C1, 0.0, 1, false, pending());
        board.take(id);
        board.take(id);
    }

    #[test]
    fn reinstate_restores_the_same_id() {
        let mut board = HitBoard::new();
        let id = board.post(2, 5, IncentiveLevel::C8, 30.0, 1, false, pending());
        let hit = board.take(id);
        assert_eq!(board.in_flight(), 0);
        board.reinstate(hit);
        assert_eq!(board.in_flight(), 1);
        let back = board.take(id);
        assert_eq!(back.id, id);
        assert_eq!(back.image_index, 5);
        assert_eq!(board.total_posted(), 1);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn reinstate_of_live_hit_panics() {
        let mut board = HitBoard::new();
        let id = board.post(0, 0, IncentiveLevel::C1, 0.0, 1, false, pending());
        let copy = InFlightHit {
            pending: pending(),
            ..board.take(id)
        };
        board.reinstate(copy);
        let dup = InFlightHit {
            pending: pending(),
            id,
            cycle: 0,
            image_index: 0,
            incentive: IncentiveLevel::C1,
            posted_at_secs: 0.0,
            attempt: 1,
            lost: false,
        };
        board.reinstate(dup);
    }

    #[test]
    fn codec_round_trips_the_board() {
        let mut board = HitBoard::new();
        board.post(0, 1, IncentiveLevel::C6, 0.0, 1, false, pending());
        let gone = board.post(1, 2, IncentiveLevel::C10, 12.5, 2, false, pending());
        board.post(2, 3, IncentiveLevel::C2, 40.0, 1, false, pending());
        board.take(gone);

        let back = HitBoard::from_bytes(&board.to_bytes()).expect("round trip");
        assert_eq!(back.in_flight(), board.in_flight());
        assert_eq!(back.peak_in_flight(), board.peak_in_flight());
        assert_eq!(back.total_posted(), board.total_posted());
        let ids: Vec<HitId> = back.inflight.keys().copied().collect();
        assert_eq!(ids, vec![HitId(0), HitId(2)]);
    }
}
