//! Streaming per-event observability for the pipelined runtime.
//!
//! The paper's evaluation lives on delay and cost measurements (Table III,
//! Figures 5, 8, 11), but an end-of-run [`crate::RuntimeReport`] only shows
//! them post-hoc. This module taps the event loop itself: every state
//! transition the [`crate::PipelinedSystem`] driver makes — HIT posted,
//! answered, timed out, reposted, cycle admitted/closed, budget charged —
//! emits one typed [`MetricRecord`] into a [`MetricsSink`]. The bundled
//! [`MetricsTap`] sink folds those records into rolling crowd-delay
//! quantiles (per context and overall), spend pacing against the budget
//! ledger, window occupancy, and queue depth — all in O(1) memory via
//! [`QuantileSketch`], all deterministically, and all checkpointable: the
//! tap state has `Encode`/`Decode` codecs and rides inside the runtime
//! snapshot, so a resumed run replays the identical metric stream.

use crate::faults::BreakerState;
use crate::HitId;
use crowdlearn_crowd::IncentiveLevel;
use crowdlearn_dataset::TemporalContext;
use crowdlearn_metrics::QuantileSketch;
use serde::binary::{Decode, DecodeError, Encode, Reader};

/// One event-boundary observation from the runtime driver.
///
/// Every record carries the instantaneous gauges (virtual time, event-queue
/// depth, pipeline-window occupancy, HITs in flight) sampled *after* the
/// transition took effect, plus the typed transition itself.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRecord {
    /// Virtual time of the transition, in seconds.
    pub at_secs: f64,
    /// Events still pending in the queue.
    pub queue_depth: usize,
    /// Sensing cycles currently admitted to the pipeline window.
    pub window_occupancy: usize,
    /// HITs currently out on the platform.
    pub hits_in_flight: usize,
    /// What happened.
    pub kind: MetricKind,
}

/// The typed transition behind a [`MetricRecord`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricKind {
    /// A sensing cycle entered the pipeline window.
    CycleAdmitted {
        /// Cycle index.
        cycle: usize,
    },
    /// A sensing cycle finalized (labels assembled, committee retrained).
    CycleClosed {
        /// Cycle index.
        cycle: usize,
        /// Cents the cycle spent on the crowd (reposts included).
        spent_cents: u64,
        /// Crowd answers the cycle absorbed.
        queries: usize,
    },
    /// A fresh HIT went up on the platform.
    HitPosted {
        /// Cycle index.
        cycle: usize,
        /// The HIT.
        hit: HitId,
        /// Incentive paid.
        incentive: IncentiveLevel,
        /// Posting attempt (1 for the first post).
        attempt: u32,
    },
    /// A HIT's workers answered within the timeout.
    HitAnswered {
        /// Cycle index.
        cycle: usize,
        /// The HIT.
        hit: HitId,
        /// Temporal context of the cycle.
        context: TemporalContext,
        /// Observed completion delay, in seconds.
        delay_secs: f64,
        /// Whether the answer beat the offload deadline.
        timely: bool,
    },
    /// A HIT reached its timeout; all the runtime learned at this instant
    /// is the censored "delay ≥ timeout".
    HitTimedOut {
        /// Cycle index.
        cycle: usize,
        /// The HIT.
        hit: HitId,
        /// Incentive of the expired attempt.
        incentive: IncentiveLevel,
        /// The censored delay observation (the timeout itself), in seconds.
        censored_delay_secs: f64,
    },
    /// A timed-out HIT was reposted (typically at an escalated incentive).
    HitReposted {
        /// Cycle index.
        cycle: usize,
        /// The *new* HIT.
        hit: HitId,
        /// Incentive of the new attempt.
        incentive: IncentiveLevel,
        /// Posting attempt of the new HIT (2 for the first repost).
        attempt: u32,
    },
    /// A waited-out HIT's answer was finally absorbed at its true
    /// completion time.
    LateAnswerAbsorbed {
        /// Cycle index.
        cycle: usize,
        /// The HIT.
        hit: HitId,
        /// Temporal context of the cycle.
        context: TemporalContext,
        /// True completion delay, in seconds.
        delay_secs: f64,
    },
    /// The budget ledger was charged for a post or repost.
    SpendCharged {
        /// Cycle index.
        cycle: usize,
        /// Cents charged.
        cents: u32,
        /// Evaluation budget remaining after the charge, in cents.
        remaining_budget_cents: f64,
    },
    /// A query's crowd resolution was given up: the HIT ran out of posting
    /// attempts (or its answer was lost to fault injection) and no further
    /// repost will be tried. Degraded runs audit these to account for every
    /// posted attempt.
    HitAbandoned {
        /// Cycle index.
        cycle: usize,
        /// The abandoned HIT.
        hit: HitId,
        /// Posting attempts consumed, counting the original post.
        attempts: u32,
    },
    /// A scheduled fault episode began (see [`crate::FaultPlan`]).
    FaultStarted {
        /// Index of the episode in the plan.
        episode: usize,
    },
    /// A scheduled fault episode ended.
    FaultEnded {
        /// Index of the episode in the plan.
        episode: usize,
    },
    /// The crowd-path circuit breaker moved between typed states.
    BreakerTransition {
        /// State before the transition.
        from: BreakerState,
        /// State after the transition.
        to: BreakerState,
    },
    /// A cycle fell back to AI-only labeling (committee vote, no HIT spend)
    /// because the breaker was open when its crowd phase would have begun.
    DegradedCycle {
        /// Cycle index.
        cycle: usize,
    },
}

/// A consumer of runtime metric records.
///
/// Implementations must be deterministic for the runtime's determinism
/// guarantee to extend to them: the record stream itself is a pure function
/// of the seeded simulation.
pub trait MetricsSink {
    /// Absorbs one record.
    fn record(&mut self, record: &MetricRecord);
}

/// The simplest sink: keep every record (tests, offline analysis).
impl MetricsSink for Vec<MetricRecord> {
    fn record(&mut self, record: &MetricRecord) {
        self.push(record.clone());
    }
}

/// Grid configuration for the tap's delay sketches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsTapConfig {
    /// Upper edge of the delay grid, in seconds. The paper's delay surface
    /// tops out around 1400 s mean × worker-speed × log-normal noise, so
    /// the default 7200 s ceiling leaves generous headroom before any
    /// sample clamps.
    pub delay_ceiling_secs: f64,
    /// Number of uniform bins — the quantile error is one bin width,
    /// `delay_ceiling_secs / delay_bins`.
    pub delay_bins: usize,
}

impl MetricsTapConfig {
    /// The default grid: `[0, 7200)` seconds over 1024 bins (≈ 7 s quantile
    /// resolution).
    pub fn paper() -> Self {
        Self {
            delay_ceiling_secs: 7200.0,
            delay_bins: 1024,
        }
    }

    fn is_valid(&self) -> bool {
        self.delay_ceiling_secs.is_finite() && self.delay_ceiling_secs > 0.0 && self.delay_bins > 0
    }

    fn validate(&self) {
        assert!(
            self.delay_ceiling_secs > 0.0 && self.delay_ceiling_secs.is_finite(),
            "delay ceiling must be positive and finite"
        );
        assert!(self.delay_bins > 0, "delay sketch needs at least one bin");
    }
}

impl Default for MetricsTapConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl Encode for MetricsTapConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.delay_ceiling_secs.encode(out);
        self.delay_bins.encode(out);
    }
}

impl Decode for MetricsTapConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let config = Self {
            delay_ceiling_secs: f64::decode(r)?,
            delay_bins: usize::decode(r)?,
        };
        if !config.is_valid() {
            return Err(DecodeError::Invalid);
        }
        Ok(config)
    }
}

/// The deterministic streaming-metrics sink the runtime can carry across
/// checkpoints.
///
/// Folds the record stream into:
///
/// * rolling crowd-delay quantiles, overall and per temporal context
///   ([`QuantileSketch`] — O(1) memory, one-bin-width accuracy). Only
///   *absorbed* answers feed the sketches (the same samples a cycle's
///   `query_delay_secs` reports); censored timeout observations do not,
///   since their true delay is unknown at the timeout instant.
/// * spend pacing: cumulative cents, the ledger's remaining budget after
///   the latest charge, and cents per virtual hour.
/// * occupancy gauges with high-water marks: pipeline-window occupancy,
///   HITs in flight, event-queue depth.
/// * per-kind event counters.
///
/// Determinism contract: the tap is a pure fold over the record stream —
/// no wall clock, no RNG, no iteration over unordered containers — so two
/// same-seed runs produce byte-identical tap states, and a checkpointed
/// run resumes to the same final state as an uninterrupted one. The codecs
/// round-trip every field bit-exactly (f64 as IEEE bits).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsTap {
    config: MetricsTapConfig,
    records: u64,
    last_at_secs: f64,
    cycles_admitted: u64,
    cycles_closed: u64,
    hits_posted: u64,
    hits_answered: u64,
    hits_timed_out: u64,
    hits_reposted: u64,
    late_answers: u64,
    timely_answers: u64,
    spend_events: u64,
    spent_cents: u64,
    remaining_budget_cents: Option<f64>,
    queue_depth: usize,
    window_occupancy: usize,
    hits_in_flight: usize,
    peak_queue_depth: usize,
    peak_window_occupancy: usize,
    peak_hits_in_flight: usize,
    delay_all: QuantileSketch,
    delay_by_context: Vec<QuantileSketch>,
    hits_abandoned: u64,
    faults_started: u64,
    faults_ended: u64,
    breaker_transitions: u64,
    degraded_cycles: u64,
}

impl MetricsTap {
    /// An empty tap over the [`MetricsTapConfig::paper`] grid.
    pub fn new() -> Self {
        Self::with_config(MetricsTapConfig::paper())
    }

    /// An empty tap over a custom delay grid.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_config(config: MetricsTapConfig) -> Self {
        config.validate();
        let sketch = || QuantileSketch::new(0.0, config.delay_ceiling_secs, config.delay_bins);
        Self {
            config,
            records: 0,
            last_at_secs: 0.0,
            cycles_admitted: 0,
            cycles_closed: 0,
            hits_posted: 0,
            hits_answered: 0,
            hits_timed_out: 0,
            hits_reposted: 0,
            late_answers: 0,
            timely_answers: 0,
            spend_events: 0,
            spent_cents: 0,
            remaining_budget_cents: None,
            queue_depth: 0,
            window_occupancy: 0,
            hits_in_flight: 0,
            peak_queue_depth: 0,
            peak_window_occupancy: 0,
            peak_hits_in_flight: 0,
            delay_all: sketch(),
            delay_by_context: (0..TemporalContext::COUNT).map(|_| sketch()).collect(),
            hits_abandoned: 0,
            faults_started: 0,
            faults_ended: 0,
            breaker_transitions: 0,
            degraded_cycles: 0,
        }
    }

    /// The grid configuration.
    pub fn config(&self) -> &MetricsTapConfig {
        &self.config
    }

    /// Records absorbed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Virtual time of the latest record, in seconds (0 before any record).
    pub fn last_at_secs(&self) -> f64 {
        self.last_at_secs
    }

    /// Rolling quantile sketch over every absorbed crowd delay.
    pub fn crowd_delay(&self) -> &QuantileSketch {
        &self.delay_all
    }

    /// Rolling quantile sketch over one temporal context's crowd delays
    /// (the Figure 8 series, live).
    pub fn crowd_delay_in(&self, context: TemporalContext) -> &QuantileSketch {
        &self.delay_by_context[context.index()]
    }

    /// Cycles admitted to the pipeline window so far.
    pub fn cycles_admitted(&self) -> u64 {
        self.cycles_admitted
    }

    /// Cycles finalized so far.
    pub fn cycles_closed(&self) -> u64 {
        self.cycles_closed
    }

    /// Fresh HITs posted so far (reposts not included).
    pub fn hits_posted(&self) -> u64 {
        self.hits_posted
    }

    /// Answers absorbed within their timeout so far.
    pub fn hits_answered(&self) -> u64 {
        self.hits_answered
    }

    /// HITs that reached their timeout so far.
    pub fn hits_timed_out(&self) -> u64 {
        self.hits_timed_out
    }

    /// Timed-out HITs reposted so far.
    pub fn hits_reposted(&self) -> u64 {
        self.hits_reposted
    }

    /// Waited-out answers absorbed late so far.
    pub fn late_answers(&self) -> u64 {
        self.late_answers
    }

    /// Absorbed answers that beat the offload deadline so far.
    pub fn timely_answers(&self) -> u64 {
        self.timely_answers
    }

    /// Cumulative cents charged to the budget ledger.
    pub fn spent_cents(&self) -> u64 {
        self.spent_cents
    }

    /// Evaluation budget remaining after the latest charge, in cents;
    /// `None` before any charge.
    pub fn remaining_budget_cents(&self) -> Option<f64> {
        self.remaining_budget_cents
    }

    /// Spend pacing in cents per virtual hour, over the run so far; `None`
    /// before any virtual time has elapsed.
    pub fn spend_rate_cents_per_hour(&self) -> Option<f64> {
        (self.last_at_secs > 0.0).then(|| self.spent_cents as f64 * 3600.0 / self.last_at_secs)
    }

    /// Event-queue depth after the latest record.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Pipeline-window occupancy after the latest record.
    pub fn window_occupancy(&self) -> usize {
        self.window_occupancy
    }

    /// HITs in flight after the latest record.
    pub fn hits_in_flight(&self) -> usize {
        self.hits_in_flight
    }

    /// Deepest the event queue has been at a record boundary.
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_queue_depth
    }

    /// Most cycles ever simultaneously admitted, as seen by the tap.
    pub fn peak_window_occupancy(&self) -> usize {
        self.peak_window_occupancy
    }

    /// Most HITs ever simultaneously in flight, as seen by the tap.
    pub fn peak_hits_in_flight(&self) -> usize {
        self.peak_hits_in_flight
    }

    /// HITs whose crowd resolution was given up (out of attempts, or a
    /// fault-lost answer) so far.
    pub fn hits_abandoned(&self) -> u64 {
        self.hits_abandoned
    }

    /// Fault episodes that have taken effect so far.
    pub fn faults_started(&self) -> u64 {
        self.faults_started
    }

    /// Fault episodes that have ended so far (instantaneous episodes never
    /// emit an end).
    pub fn faults_ended(&self) -> u64 {
        self.faults_ended
    }

    /// Circuit-breaker state transitions so far.
    pub fn breaker_transitions(&self) -> u64 {
        self.breaker_transitions
    }

    /// Cycles that fell back to AI-only labeling so far.
    pub fn degraded_cycles(&self) -> u64 {
        self.degraded_cycles
    }
}

impl Default for MetricsTap {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsSink for MetricsTap {
    fn record(&mut self, record: &MetricRecord) {
        self.records += 1;
        self.last_at_secs = record.at_secs;
        self.queue_depth = record.queue_depth;
        self.window_occupancy = record.window_occupancy;
        self.hits_in_flight = record.hits_in_flight;
        self.peak_queue_depth = self.peak_queue_depth.max(record.queue_depth);
        self.peak_window_occupancy = self.peak_window_occupancy.max(record.window_occupancy);
        self.peak_hits_in_flight = self.peak_hits_in_flight.max(record.hits_in_flight);
        match record.kind {
            MetricKind::CycleAdmitted { .. } => self.cycles_admitted += 1,
            MetricKind::CycleClosed { .. } => self.cycles_closed += 1,
            MetricKind::HitPosted { .. } => self.hits_posted += 1,
            MetricKind::HitAnswered {
                context,
                delay_secs,
                timely,
                ..
            } => {
                self.hits_answered += 1;
                self.timely_answers += u64::from(timely);
                self.delay_all.push(delay_secs);
                self.delay_by_context[context.index()].push(delay_secs);
            }
            MetricKind::HitTimedOut { .. } => self.hits_timed_out += 1,
            MetricKind::HitReposted { .. } => self.hits_reposted += 1,
            MetricKind::LateAnswerAbsorbed {
                context,
                delay_secs,
                ..
            } => {
                self.late_answers += 1;
                self.delay_all.push(delay_secs);
                self.delay_by_context[context.index()].push(delay_secs);
            }
            MetricKind::SpendCharged {
                cents,
                remaining_budget_cents,
                ..
            } => {
                self.spend_events += 1;
                self.spent_cents += u64::from(cents);
                self.remaining_budget_cents = Some(remaining_budget_cents);
            }
            MetricKind::HitAbandoned { .. } => self.hits_abandoned += 1,
            MetricKind::FaultStarted { .. } => self.faults_started += 1,
            MetricKind::FaultEnded { .. } => self.faults_ended += 1,
            MetricKind::BreakerTransition { .. } => self.breaker_transitions += 1,
            MetricKind::DegradedCycle { .. } => self.degraded_cycles += 1,
        }
    }
}

// Snapshot codec: the tap rides inside the runtime snapshot so that a
// checkpointed run resumes its metric stream byte-identically.
impl Encode for MetricsTap {
    fn encode(&self, out: &mut Vec<u8>) {
        self.config.encode(out);
        self.records.encode(out);
        self.last_at_secs.encode(out);
        self.cycles_admitted.encode(out);
        self.cycles_closed.encode(out);
        self.hits_posted.encode(out);
        self.hits_answered.encode(out);
        self.hits_timed_out.encode(out);
        self.hits_reposted.encode(out);
        self.late_answers.encode(out);
        self.timely_answers.encode(out);
        self.spend_events.encode(out);
        self.spent_cents.encode(out);
        self.remaining_budget_cents.encode(out);
        self.queue_depth.encode(out);
        self.window_occupancy.encode(out);
        self.hits_in_flight.encode(out);
        self.peak_queue_depth.encode(out);
        self.peak_window_occupancy.encode(out);
        self.peak_hits_in_flight.encode(out);
        self.delay_all.encode(out);
        self.delay_by_context.encode(out);
        self.hits_abandoned.encode(out);
        self.faults_started.encode(out);
        self.faults_ended.encode(out);
        self.breaker_transitions.encode(out);
        self.degraded_cycles.encode(out);
    }
}

impl Decode for MetricsTap {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tap = Self {
            config: MetricsTapConfig::decode(r)?,
            records: u64::decode(r)?,
            last_at_secs: f64::decode(r)?,
            cycles_admitted: u64::decode(r)?,
            cycles_closed: u64::decode(r)?,
            hits_posted: u64::decode(r)?,
            hits_answered: u64::decode(r)?,
            hits_timed_out: u64::decode(r)?,
            hits_reposted: u64::decode(r)?,
            late_answers: u64::decode(r)?,
            timely_answers: u64::decode(r)?,
            spend_events: u64::decode(r)?,
            spent_cents: u64::decode(r)?,
            remaining_budget_cents: Option::<f64>::decode(r)?,
            queue_depth: usize::decode(r)?,
            window_occupancy: usize::decode(r)?,
            hits_in_flight: usize::decode(r)?,
            peak_queue_depth: usize::decode(r)?,
            peak_window_occupancy: usize::decode(r)?,
            peak_hits_in_flight: usize::decode(r)?,
            delay_all: QuantileSketch::decode(r)?,
            delay_by_context: Vec::<QuantileSketch>::decode(r)?,
            hits_abandoned: u64::decode(r)?,
            faults_started: u64::decode(r)?,
            faults_ended: u64::decode(r)?,
            breaker_transitions: u64::decode(r)?,
            degraded_cycles: u64::decode(r)?,
        };
        let gauges_ok = tap.last_at_secs.is_finite()
            && tap.last_at_secs >= 0.0
            && tap.queue_depth <= tap.peak_queue_depth
            && tap.window_occupancy <= tap.peak_window_occupancy
            && tap.hits_in_flight <= tap.peak_hits_in_flight
            && tap
                .remaining_budget_cents
                .is_none_or(|b| b.is_finite() && b >= 0.0);
        let sketches_ok = tap.delay_by_context.len() == TemporalContext::COUNT
            && tap.delay_all.len() == tap.hits_answered + tap.late_answers
            && tap
                .delay_by_context
                .iter()
                .map(QuantileSketch::len)
                .sum::<u64>()
                == tap.delay_all.len();
        let counters_ok = tap.timely_answers <= tap.hits_answered
            && tap.hits_reposted <= tap.hits_timed_out
            && tap.cycles_closed <= tap.cycles_admitted
            && tap.hits_abandoned <= tap.hits_timed_out
            && tap.faults_ended <= tap.faults_started
            && tap.degraded_cycles <= tap.cycles_admitted;
        if !gauges_ok || !sketches_ok || !counters_ok {
            return Err(DecodeError::Invalid);
        }
        Ok(tap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at: f64, kind: MetricKind) -> MetricRecord {
        MetricRecord {
            at_secs: at,
            queue_depth: 3,
            window_occupancy: 2,
            hits_in_flight: 1,
            kind,
        }
    }

    fn answered(at: f64, delay: f64, context: TemporalContext) -> MetricRecord {
        record(
            at,
            MetricKind::HitAnswered {
                cycle: 0,
                hit: HitId(1),
                context,
                delay_secs: delay,
                timely: true,
            },
        )
    }

    #[test]
    fn tap_folds_delays_and_spend() {
        let mut tap = MetricsTap::new();
        tap.record(&answered(100.0, 250.0, TemporalContext::Morning));
        tap.record(&answered(200.0, 350.0, TemporalContext::Evening));
        tap.record(&record(
            250.0,
            MetricKind::SpendCharged {
                cycle: 0,
                cents: 8,
                remaining_budget_cents: 992.0,
            },
        ));
        assert_eq!(tap.records(), 3);
        assert_eq!(tap.hits_answered(), 2);
        assert_eq!(tap.crowd_delay().len(), 2);
        assert_eq!(tap.crowd_delay_in(TemporalContext::Morning).len(), 1);
        assert_eq!(tap.crowd_delay_in(TemporalContext::Afternoon).len(), 0);
        assert_eq!(tap.spent_cents(), 8);
        assert_eq!(tap.remaining_budget_cents(), Some(992.0));
        // 8 cents over 250 virtual seconds.
        let rate = tap.spend_rate_cents_per_hour().unwrap();
        assert!((rate - 8.0 * 3600.0 / 250.0).abs() < 1e-9);
        assert_eq!(tap.peak_queue_depth(), 3);
    }

    #[test]
    fn censored_timeouts_do_not_feed_the_delay_sketch() {
        let mut tap = MetricsTap::new();
        tap.record(&record(
            50.0,
            MetricKind::HitTimedOut {
                cycle: 0,
                hit: HitId(9),
                incentive: IncentiveLevel::C4,
                censored_delay_secs: 150.0,
            },
        ));
        assert_eq!(tap.hits_timed_out(), 1);
        assert!(tap.crowd_delay().is_empty());
    }

    #[test]
    fn empty_tap_matches_the_empty_stats_contract() {
        let tap = MetricsTap::new();
        assert_eq!(tap.crowd_delay().quantile(0.5), None);
        assert_eq!(tap.remaining_budget_cents(), None);
        assert_eq!(tap.spend_rate_cents_per_hour(), None);
    }

    #[test]
    fn codec_round_trips_and_validates() {
        let mut tap = MetricsTap::new();
        tap.record(&answered(10.0, 300.0, TemporalContext::Midnight));
        tap.record(&record(20.0, MetricKind::CycleAdmitted { cycle: 1 }));
        let mut bytes = Vec::new();
        tap.encode(&mut bytes);
        let back = MetricsTap::decode(&mut Reader::new(&bytes)).expect("round trip");
        assert_eq!(back, tap);

        // A delay-count/counter mismatch is rejected.
        let mut tampered = tap.clone();
        tampered.hits_answered += 1;
        let mut bytes = Vec::new();
        tampered.encode(&mut bytes);
        assert_eq!(
            MetricsTap::decode(&mut Reader::new(&bytes)),
            Err(DecodeError::Invalid)
        );
    }

    #[test]
    fn fault_events_fold_into_their_counters() {
        let mut tap = MetricsTap::new();
        // An abandoned HIT follows its own timeout.
        tap.record(&record(
            50.0,
            MetricKind::HitTimedOut {
                cycle: 0,
                hit: HitId(3),
                incentive: IncentiveLevel::C4,
                censored_delay_secs: 150.0,
            },
        ));
        tap.record(&record(
            50.0,
            MetricKind::HitAbandoned {
                cycle: 0,
                hit: HitId(3),
                attempts: 2,
            },
        ));
        tap.record(&record(60.0, MetricKind::FaultStarted { episode: 0 }));
        tap.record(&record(
            60.0,
            MetricKind::BreakerTransition {
                from: BreakerState::Closed,
                to: BreakerState::Open,
            },
        ));
        tap.record(&record(61.0, MetricKind::CycleAdmitted { cycle: 1 }));
        tap.record(&record(61.0, MetricKind::DegradedCycle { cycle: 1 }));
        tap.record(&record(90.0, MetricKind::FaultEnded { episode: 0 }));
        assert_eq!(tap.hits_abandoned(), 1);
        assert_eq!(tap.faults_started(), 1);
        assert_eq!(tap.faults_ended(), 1);
        assert_eq!(tap.breaker_transitions(), 1);
        assert_eq!(tap.degraded_cycles(), 1);

        // The whole state round-trips, and an impossible counter pair
        // (more ends than starts) is rejected on the wire.
        let mut bytes = Vec::new();
        tap.encode(&mut bytes);
        assert_eq!(
            MetricsTap::decode(&mut Reader::new(&bytes)),
            Ok(tap.clone())
        );
        let mut tampered = tap;
        tampered.faults_ended += 1;
        let mut bytes = Vec::new();
        tampered.encode(&mut bytes);
        assert_eq!(
            MetricsTap::decode(&mut Reader::new(&bytes)),
            Err(DecodeError::Invalid)
        );
    }

    #[test]
    fn vec_sink_keeps_the_raw_stream() {
        let mut sink: Vec<MetricRecord> = Vec::new();
        let r = answered(5.0, 100.0, TemporalContext::Morning);
        sink.record(&r);
        assert_eq!(sink, vec![r]);
    }
}
