//! The deterministic event queue.

use crate::{Event, EventKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A priority queue of [`Event`]s ordered by `(due time, scheduling
/// order)`.
///
/// Determinism contract: for a fixed sequence of [`EventQueue::schedule`]
/// calls, [`EventQueue::pop`] yields a fixed sequence of events —
/// simultaneous events break ties by scheduling order, never by heap
/// layout. `pop` also asserts that due times never run backwards, which
/// (together with [`crate::VirtualClock::advance_to`]) pins the simulation
/// to causal order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    scheduled: u64,
    popped: u64,
    last_popped_secs: f64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled: 0,
            popped: 0,
            last_popped_secs: 0.0,
        }
    }

    /// Schedules `kind` at virtual time `at_secs`; returns the event's
    /// sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `at_secs` is NaN or earlier than the last popped event —
    /// scheduling into the past would break causality.
    pub fn schedule(&mut self, at_secs: f64, kind: EventKind) -> u64 {
        assert!(!at_secs.is_nan(), "event time must not be NaN");
        assert!(
            at_secs >= self.last_popped_secs,
            "cannot schedule into the past: {at_secs} < {}",
            self.last_popped_secs
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Event { at_secs, seq, kind }));
        seq
    }

    /// Removes and returns the earliest event, or `None` when the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<Event> {
        let Reverse(event) = self.heap.pop()?;
        debug_assert!(
            event.at_secs >= self.last_popped_secs,
            "event queue emitted time out of order"
        );
        self.last_popped_secs = event.at_secs;
        self.popped += 1;
        Some(event)
    }

    /// Events currently waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events popped over the queue's lifetime. Together with
    /// [`EventQueue::scheduled`] and [`EventQueue::len`] this gives the
    /// conservation invariant `scheduled == popped + len`.
    pub fn popped(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule(5.0, EventKind::CycleArrival { cycle: 0 });
        q.schedule(1.0, EventKind::CycleArrival { cycle: 1 });
        q.schedule(5.0, EventKind::CycleArrival { cycle: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| e.kind.cycle())
            .collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn conserves_events() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(i as f64, EventKind::CycleArrival { cycle: i });
        }
        q.pop();
        q.pop();
        assert_eq!(q.scheduled(), q.popped() + q.len() as u64);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_scheduling_before_popped_time() {
        let mut q = EventQueue::new();
        q.schedule(10.0, EventKind::CycleArrival { cycle: 0 });
        q.pop();
        q.schedule(5.0, EventKind::CycleArrival { cycle: 1 });
    }
}
