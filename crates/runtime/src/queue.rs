//! The deterministic event queue.

use crate::{Event, EventKind};
use serde::binary::{Decode, DecodeError, Encode, Reader};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A priority queue of [`Event`]s ordered by `(due time, scheduling
/// order)`.
///
/// Determinism contract: for a fixed sequence of [`EventQueue::schedule`]
/// calls, [`EventQueue::pop`] yields a fixed sequence of events —
/// simultaneous events break ties by scheduling order, never by heap
/// layout. `pop` also asserts that due times never run backwards, which
/// (together with [`crate::VirtualClock::advance_to`]) pins the simulation
/// to causal order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    scheduled: u64,
    popped: u64,
    last_popped_secs: f64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled: 0,
            popped: 0,
            last_popped_secs: 0.0,
        }
    }

    /// Schedules `kind` at virtual time `at_secs`; returns the event's
    /// sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `at_secs` is NaN or earlier than the last popped event —
    /// scheduling into the past would break causality.
    pub fn schedule(&mut self, at_secs: f64, kind: EventKind) -> u64 {
        assert!(!at_secs.is_nan(), "event time must not be NaN");
        assert!(
            at_secs >= self.last_popped_secs,
            "cannot schedule into the past: {at_secs} < {}",
            self.last_popped_secs
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Event { at_secs, seq, kind }));
        seq
    }

    /// The earliest waiting event without removing it, or `None` when the
    /// queue is empty — how `run_until` decides whether the next event is
    /// within its virtual-time bound before committing to process it.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek().map(|Reverse(event)| event)
    }

    /// Removes and returns the earliest event, or `None` when the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<Event> {
        let Reverse(event) = self.heap.pop()?;
        debug_assert!(
            event.at_secs >= self.last_popped_secs,
            "event queue emitted time out of order"
        );
        self.last_popped_secs = event.at_secs;
        self.popped += 1;
        Some(event)
    }

    /// Events currently waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events popped over the queue's lifetime. Together with
    /// [`EventQueue::scheduled`] and [`EventQueue::len`] this gives the
    /// conservation invariant `scheduled == popped + len`.
    pub fn popped(&self) -> u64 {
        self.popped
    }
}

// Snapshot codec: the heap serializes as its events in sorted pop order —
// a canonical form independent of heap layout — plus the counters. Decode
// re-checks the queue's standing invariants (conservation, causality, seq
// numbers below the counter) so a corrupt snapshot surfaces as `Invalid`
// instead of a mid-run panic.
impl Encode for EventQueue {
    fn encode(&self, out: &mut Vec<u8>) {
        let mut events: Vec<Event> = self.heap.iter().map(|Reverse(e)| *e).collect();
        events.sort_unstable();
        events.encode(out);
        self.next_seq.encode(out);
        self.scheduled.encode(out);
        self.popped.encode(out);
        self.last_popped_secs.encode(out);
    }
}

impl Decode for EventQueue {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let events = Vec::<Event>::decode(r)?;
        let next_seq = u64::decode(r)?;
        let scheduled = u64::decode(r)?;
        let popped = u64::decode(r)?;
        let last_popped_secs = f64::decode(r)?;
        // Checked arithmetic: on a corrupt frame `popped` can sit near
        // u64::MAX, and `popped + len` must surface as `Invalid`, not as a
        // debug-build overflow panic.
        let len = u64::try_from(events.len()).map_err(|_| DecodeError::Invalid)?;
        if last_popped_secs.is_nan()
            || last_popped_secs < 0.0
            || popped.checked_add(len) != Some(scheduled)
            || scheduled > next_seq
        {
            return Err(DecodeError::Invalid);
        }
        let mut seen = std::collections::BTreeSet::new();
        for event in &events {
            if event.at_secs < last_popped_secs || event.seq >= next_seq || !seen.insert(event.seq)
            {
                return Err(DecodeError::Invalid);
            }
        }
        Ok(Self {
            heap: events.into_iter().map(Reverse).collect(),
            next_seq,
            scheduled,
            popped,
            last_popped_secs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule(5.0, EventKind::CycleArrival { cycle: 0 });
        q.schedule(1.0, EventKind::CycleArrival { cycle: 1 });
        q.schedule(5.0, EventKind::CycleArrival { cycle: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .filter_map(|e| e.kind.cycle())
            .collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn conserves_events() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(i as f64, EventKind::CycleArrival { cycle: i });
        }
        q.pop();
        q.pop();
        assert_eq!(q.scheduled(), q.popped() + q.len() as u64);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_scheduling_before_popped_time() {
        let mut q = EventQueue::new();
        q.schedule(10.0, EventKind::CycleArrival { cycle: 0 });
        q.pop();
        q.schedule(5.0, EventKind::CycleArrival { cycle: 1 });
    }

    #[test]
    fn peek_matches_pop_without_consuming() {
        let mut q = EventQueue::new();
        assert!(q.peek().is_none());
        q.schedule(5.0, EventKind::CycleArrival { cycle: 0 });
        q.schedule(1.0, EventKind::CycleArrival { cycle: 1 });
        assert_eq!(q.peek().and_then(|e| e.kind.cycle()), Some(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().and_then(|e| e.kind.cycle()), Some(1));
    }

    #[test]
    fn codec_round_trips_mid_drain_and_preserves_pop_order() {
        let mut q = EventQueue::new();
        for i in 0..8 {
            q.schedule((i % 3) as f64 * 7.0, EventKind::CycleArrival { cycle: i });
        }
        q.pop();
        q.pop();
        let mut back = EventQueue::from_bytes(&q.to_bytes()).expect("round trip");
        assert_eq!(back.scheduled(), q.scheduled());
        assert_eq!(back.popped(), q.popped());
        let expect: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
        let got: Vec<Event> = std::iter::from_fn(|| back.pop()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn codec_rejects_broken_conservation() {
        let mut q = EventQueue::new();
        q.schedule(1.0, EventKind::CycleArrival { cycle: 0 });
        let mut bytes = q.to_bytes();
        // The `scheduled` counter sits right after the events and next_seq;
        // corrupt it by re-encoding with popped bumped.
        let events_and_next_seq = bytes.len() - 24;
        bytes.truncate(events_and_next_seq);
        2u64.encode(&mut bytes); // scheduled
        0u64.encode(&mut bytes); // popped
        0.0f64.encode(&mut bytes); // last_popped_secs
        assert!(matches!(
            EventQueue::from_bytes(&bytes),
            Err(DecodeError::Invalid)
        ));
    }

    #[test]
    fn codec_rejects_counter_overflow_without_panicking() {
        // A corrupt frame whose `popped` sits at u64::MAX must fail the
        // conservation check as `Invalid`; the former `popped + len`
        // arithmetic overflowed (a panic in debug builds) before reaching it.
        let mut q = EventQueue::new();
        q.schedule(1.0, EventKind::CycleArrival { cycle: 0 });
        let mut bytes = q.to_bytes();
        let events_and_next_seq = bytes.len() - 24;
        bytes.truncate(events_and_next_seq);
        u64::MAX.encode(&mut bytes); // scheduled
        u64::MAX.encode(&mut bytes); // popped (+ 1 live event would overflow)
        0.0f64.encode(&mut bytes); // last_popped_secs
        assert!(matches!(
            EventQueue::from_bytes(&bytes),
            Err(DecodeError::Invalid)
        ));
    }
}
