//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (Section V).
//!
//! Each binary prints the paper's reported values side by side with the
//! values measured on this reproduction. Absolute numbers are not expected
//! to match (the substrate is a simulator, not the authors' MTurk testbed);
//! the *shape* — who wins, by roughly what factor, where curves bend — is
//! the reproduction target. `EXPERIMENTS.md` records the comparison.
//!
//! Run everything with:
//!
//! ```text
//! for b in table1_cqc_accuracy table2_classification table3_delay \
//!          fig5_pilot_delay fig6_pilot_quality fig7_roc fig8_context_delay \
//!          fig9_query_size fig10_budget_f1 fig11_budget_delay ablations \
//!          ablation_drift ablation_churn ablation_policies calibrate; do
//!     cargo run --release -p crowdlearn-bench --bin $b
//! done
//! cargo run --release -p crowdlearn-bench --bin all_experiments  # digest
//! ```

//! Determinism: `detlint`-checked (DESIGN.md "Determinism invariants");
//! the one crate exempt from the wall-clock rule D2 — timing harnesses
//! measure real elapsed time by design.
//!
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crowdlearn::baselines::{run_ai_only, HybridAl, HybridConfig, HybridPara};
use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem, SchemeReport};
use crowdlearn_classifiers::{profiles, BoostedEnsemble, Classifier, SimulatedExpert};
use crowdlearn_dataset::{Dataset, DatasetConfig, LabeledImage, SensingCycleStream};

/// The shared experiment fixture: the paper-shaped dataset and stream.
pub struct Fixture {
    /// The generated dataset (960 images, 560/400 split).
    pub dataset: Dataset,
    /// The 40-cycle evaluation stream.
    pub stream: SensingCycleStream,
}

impl Fixture {
    /// Builds the canonical paper fixture (the same seeds the calibration
    /// tests pin, so bench output matches the tested bands).
    pub fn paper_default() -> Self {
        let dataset = Dataset::generate(&DatasetConfig::paper());
        let stream = SensingCycleStream::paper(&dataset);
        Self { dataset, stream }
    }

    /// Builds a re-seeded fixture (for repeated-trial experiments).
    pub fn paper(seed: u64) -> Self {
        let dataset = Dataset::generate(&DatasetConfig::paper().with_seed(seed));
        let stream = SensingCycleStream::paper(&dataset);
        Self { dataset, stream }
    }

    /// Ground-truth-labeled training split (for classifier training).
    pub fn train_labels(&self) -> Vec<LabeledImage> {
        self.dataset
            .train()
            .iter()
            .cloned()
            .map(LabeledImage::ground_truth)
            .collect()
    }

    /// A committee expert trained on the training split.
    pub fn trained_expert(
        &self,
        builder: fn(u64) -> SimulatedExpert,
        seed: u64,
    ) -> SimulatedExpert {
        let mut e = builder(seed);
        e.retrain(&self.train_labels());
        e
    }

    /// The boosted Ensemble baseline, trained on the training split.
    pub fn trained_ensemble(&self, seed: u64) -> BoostedEnsemble {
        let mut e = BoostedEnsemble::new(profiles::paper_committee(seed));
        e.retrain(&self.train_labels());
        e
    }

    /// Runs all seven Table II schemes with the canonical paper
    /// configurations and returns their reports in the table's row order.
    pub fn run_all_schemes(&self) -> Vec<SchemeReport> {
        let seed = 0;
        let mut reports = Vec::with_capacity(7);

        let mut system = CrowdLearnSystem::new(&self.dataset, CrowdLearnConfig::paper());
        reports.push(system.run(&self.dataset, &self.stream));

        let mut vgg = self.trained_expert(profiles::vgg16, seed);
        reports.push(run_ai_only(&mut vgg, &self.dataset, &self.stream));
        let mut bovw = self.trained_expert(profiles::bovw, seed);
        reports.push(run_ai_only(&mut bovw, &self.dataset, &self.stream));
        let mut ddm = self.trained_expert(profiles::ddm, seed);
        reports.push(run_ai_only(&mut ddm, &self.dataset, &self.stream));
        let mut ensemble = self.trained_ensemble(seed);
        reports.push(run_ai_only(&mut ensemble, &self.dataset, &self.stream));

        let mut para =
            HybridPara::new(Box::new(self.trained_ensemble(seed)), HybridConfig::paper());
        reports.push(para.run(&self.dataset, &self.stream));

        let mut al = HybridAl::new(Box::new(self.trained_ensemble(seed)), HybridConfig::paper());
        reports.push(al.run(&self.dataset, &self.stream));

        reports
    }
}

/// Paper-reported reference values for the seven Table II/III schemes, in
/// the same order as [`Fixture::run_all_schemes`].
pub mod paper_reference {
    /// Scheme names in table order.
    pub const SCHEMES: [&str; 7] = [
        "CrowdLearn",
        "VGG16",
        "BoVW",
        "DDM",
        "Ensemble",
        "Hybrid-Para",
        "Hybrid-AL",
    ];
    /// Table II: (accuracy, precision, recall, F1).
    pub const TABLE2: [(f64, f64, f64, f64); 7] = [
        (0.877, 0.904, 0.885, 0.894),
        (0.770, 0.845, 0.744, 0.791),
        (0.670, 0.707, 0.744, 0.725),
        (0.807, 0.891, 0.765, 0.823),
        (0.815, 0.892, 0.778, 0.831),
        (0.797, 0.849, 0.795, 0.821),
        (0.823, 0.883, 0.803, 0.841),
    ];
    /// Table III: (algorithm delay, crowd delay; `None` = N/A).
    pub const TABLE3: [(f64, Option<f64>); 7] = [
        (55.62, Some(342.77)),
        (47.83, None),
        (37.55, None),
        (52.57, None),
        (85.82, None),
        (94.28, Some(588.75)),
        (53.54, Some(527.61)),
    ];
    /// Table I: aggregated label accuracy
    /// (morning, afternoon, evening, midnight, overall) per scheme.
    pub const TABLE1: [(&str, [f64; 5]); 4] = [
        ("CQC", [0.93, 0.92, 0.94, 0.94, 0.9350]),
        ("Voting", [0.82, 0.83, 0.85, 0.87, 0.8425]),
        ("TD-EM", [0.86, 0.85, 0.85, 0.89, 0.8625]),
        ("Filtering", [0.84, 0.86, 0.88, 0.90, 0.8775]),
    ];
}

/// Prints a header banner for an experiment binary.
pub fn banner(title: &str, paper_ref: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("(paper reference: {paper_ref})");
    println!("{}", "=".repeat(78));
}

/// Formats a measured-vs-paper cell as `measured (paper X)`.
pub fn vs(measured: f64, paper: f64) -> String {
    format!("{measured:.3} (paper {paper:.3})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_the_paper_shape() {
        let f = Fixture::paper_default();
        assert_eq!(f.dataset.len(), 960);
        assert_eq!(f.stream.cycles().len(), 40);
        assert_eq!(f.train_labels().len(), 560);
    }

    #[test]
    fn vs_formats_both_numbers() {
        assert_eq!(vs(0.5, 0.75), "0.500 (paper 0.750)");
    }
}
