//! Regenerates **Figure 8**: crowd delay at different temporal contexts for
//! the CCMB incentive policy vs the fixed-maximum and random baselines.

#![forbid(unsafe_code)]

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem, IncentivePolicyKind};
use crowdlearn_bench::{banner, Fixture};
use crowdlearn_dataset::TemporalContext;

fn main() {
    banner(
        "Figure 8: Crowd Delay at Different Temporal Contexts",
        "CCMB (CrowdLearn) lowest with least variation; fixed and random higher everywhere",
    );

    let fixture = Fixture::paper_default();
    let policies = [
        ("CrowdLearn (CCMB)", IncentivePolicyKind::UcbAlp),
        ("Fixed", IncentivePolicyKind::FixedMax),
        ("Random", IncentivePolicyKind::Random),
    ];

    let mut rows = Vec::new();
    for (name, kind) in policies {
        let mut system = CrowdLearnSystem::new(
            &fixture.dataset,
            CrowdLearnConfig::paper().with_policy(kind),
        );
        let report = system.run(&fixture.dataset, &fixture.stream);
        let per_ctx: Vec<f64> = TemporalContext::ALL
            .iter()
            .map(|&c| report.mean_crowd_delay_in(c).unwrap_or(f64::NAN))
            .collect();
        rows.push((
            name,
            per_ctx,
            report.mean_crowd_delay_secs().unwrap_or(f64::NAN),
        ));
    }

    println!(
        "{:<20} {:>9} {:>10} {:>9} {:>9} {:>9}",
        "Policy", "Morning", "Afternoon", "Evening", "Midnight", "Overall"
    );
    for (name, per_ctx, overall) in &rows {
        println!(
            "{:<20} {:>9.0} {:>10.0} {:>9.0} {:>9.0} {:>9.0}",
            name, per_ctx[0], per_ctx[1], per_ctx[2], per_ctx[3], overall
        );
    }

    let ccmb = rows[0].2;
    let fixed = rows[1].2;
    let random = rows[2].2;
    println!();
    println!(
        "Shape check: CCMB {ccmb:.0} s < fixed {fixed:.0} s and random {random:.0} s \
         (paper: 'IPD achieves the lowest delay with the least variations across contexts')"
    );
    assert!(
        ccmb < fixed && ccmb < random,
        "shape violation: CCMB must be fastest"
    );

    // CCMB should also have the least cross-context spread.
    let spread = |per: &Vec<f64>| {
        let max = per.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = per.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    };
    println!(
        "Cross-context spread: CCMB {:.0} s, fixed {:.0} s, random {:.0} s",
        spread(&rows[0].1),
        spread(&rows[1].1),
        spread(&rows[2].1)
    );
}
