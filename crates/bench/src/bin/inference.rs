//! Batch-vs-scalar committee inference: the sensing-cycle hot path
//! (`Committee::votes_batch` over a shared `EvidenceMatrix`) against the
//! per-image loop it replaced, across batch sizes.
//!
//! The batch path's contract is *bit-identity* (DESIGN.md "Batched committee
//! inference"), so the bench asserts equivalence before it times anything —
//! a speedup that changes a single probability bit is a bug, not a win.
//! Wall-clock numbers feed `BENCH_inference.json` so CI tracks the hot-loop
//! throughput run over run; the hard gate is the paper-batch-size speedup.

#![forbid(unsafe_code)]

use crowdlearn::Committee;
use crowdlearn_bench::{banner, Fixture};
use crowdlearn_classifiers::{profiles, ClassDistribution, Classifier};
use crowdlearn_dataset::SyntheticImage;
use std::time::Instant;

/// The paper's sensing-cycle batch size (`SensingCycleStream::paper`: 10
/// images per cycle) — the size the acceptance gate is pinned at.
const PAPER_BATCH_SIZE: usize = 10;

/// Speedup the batch path must deliver at the paper's batch size.
const REQUIRED_SPEEDUP: f64 = 1.5;

/// Images processed per timed measurement, whatever the batch size — keeps
/// every measurement's duration comparable and long enough to be stable.
const IMAGES_PER_MEASUREMENT: usize = 12_000;

fn committee(fixture: &Fixture) -> Committee {
    let members: Vec<Box<dyn Classifier>> = [profiles::vgg16, profiles::bovw, profiles::ddm]
        .into_iter()
        .map(|builder| Box::new(fixture.trained_expert(builder, 0)) as Box<dyn Classifier>)
        .collect();
    Committee::new(members, 0.6)
}

// The bench crate is the detlint D2 exemption: timing harnesses read the
// wall clock by design. clippy.toml mirrors D2 workspace-wide, so the
// exemption is restated here.
#[allow(clippy::disallowed_methods)]
fn best_of<F: FnMut() -> f64>(mut run: F) -> f64 {
    (0..3).map(|_| run()).fold(f64::INFINITY, f64::min)
}

#[allow(clippy::disallowed_methods)]
fn timed<F: FnMut()>(mut body: F) -> f64 {
    let started = Instant::now();
    body();
    started.elapsed().as_secs_f64()
}

struct Measurement {
    batch_size: usize,
    scalar_ms: f64,
    batch_ms: f64,
    speedup: f64,
}

fn main() {
    banner(
        "Committee inference: batched evidence path vs per-image loop",
        "bit-identical votes; wall-clock per full committee over the batch",
    );

    let fixture = Fixture::paper_default();
    let committee = committee(&fixture);
    let test = fixture.dataset.test();

    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>9}",
        "batch size", "reps", "scalar(ms)", "batch(ms)", "speedup"
    );

    let mut measured: Vec<Measurement> = Vec::new();
    for batch_size in [1usize, 5, PAPER_BATCH_SIZE, 25, 50, 100, 200, 400] {
        let batch: Vec<&SyntheticImage> = test[..batch_size].iter().collect();

        // Equivalence gate: the batch path must reproduce the per-image
        // votes bit for bit before its speed means anything.
        let scalar_votes: Vec<Vec<ClassDistribution>> =
            batch.iter().map(|img| committee.votes(img)).collect();
        let batch_votes = committee.votes_batch(&batch);
        assert_eq!(batch_votes.len(), scalar_votes.len());
        for (b, s) in batch_votes.iter().zip(&scalar_votes) {
            assert_eq!(b.len(), s.len());
            for (bv, sv) in b.iter().zip(s) {
                for (pb, ps) in bv.probs().iter().zip(sv.probs()) {
                    assert_eq!(
                        pb.to_bits(),
                        ps.to_bits(),
                        "batch path diverged at batch size {batch_size}"
                    );
                }
            }
        }

        let reps = (IMAGES_PER_MEASUREMENT / batch_size).max(1);
        let scalar_secs = best_of(|| {
            timed(|| {
                for _ in 0..reps {
                    for img in &batch {
                        std::hint::black_box(committee.votes(img));
                    }
                }
            })
        });
        let batch_secs = best_of(|| {
            timed(|| {
                for _ in 0..reps {
                    std::hint::black_box(committee.votes_batch(&batch));
                }
            })
        });
        let speedup = scalar_secs / batch_secs;
        println!(
            "{:<12} {:>6} {:>12.3} {:>12.3} {:>8.2}x",
            batch_size,
            reps,
            scalar_secs * 1e3,
            batch_secs * 1e3,
            speedup
        );
        measured.push(Measurement {
            batch_size,
            scalar_ms: scalar_secs * 1e3,
            batch_ms: batch_secs * 1e3,
            speedup,
        });
    }

    // Machine-readable summary for CI trend tracking.
    let paper = measured
        .iter()
        .find(|m| m.batch_size == PAPER_BATCH_SIZE)
        .expect("paper batch size is in the sweep");
    let mut json = String::from("{\n  \"bench\": \"inference\",\n");
    json.push_str(&format!(
        "  \"paper_batch_size\": {PAPER_BATCH_SIZE},\n  \"paper_speedup\": {:.4},\n  \"sizes\": [\n",
        paper.speedup
    ));
    for (i, m) in measured.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch_size\": {}, \"scalar_ms\": {:.4}, \"batch_ms\": {:.4}, \
             \"speedup\": {:.4}}}{}\n",
            m.batch_size,
            m.scalar_ms,
            m.batch_ms,
            m.speedup,
            if i + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_inference.json", &json).expect("write BENCH_inference.json");
    println!("\nwrote BENCH_inference.json");

    // Acceptance: the batch path must clearly beat the per-image loop at
    // the paper's batch size (ISSUE 8: >= 1.5x at 10 images per cycle).
    assert!(
        paper.speedup >= REQUIRED_SPEEDUP,
        "batch path speedup {:.2}x at batch size {PAPER_BATCH_SIZE} is below the \
         required {REQUIRED_SPEEDUP}x",
        paper.speedup
    );
    println!(
        "Shape check: {:.2}x at the paper's batch size ({PAPER_BATCH_SIZE}) — \
         evidence gathered once per committee, noise chains share hoisted prefixes",
        paper.speedup
    );
}
