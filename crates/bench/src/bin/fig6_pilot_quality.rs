//! Regenerates **Figure 6**: pilot-study label quality vs incentive level,
//! including the paper's Wilcoxon significance analysis between adjacent
//! levels (none of the mid-range steps should be significant).

#![forbid(unsafe_code)]

use crowdlearn_bench::{banner, Fixture};
use crowdlearn_crowd::{IncentiveLevel, PilotConfig, PilotStudy, Platform, PlatformConfig};
use crowdlearn_dataset::SyntheticImage;
use crowdlearn_metrics::wilcoxon_signed_rank;

fn main() {
    banner(
        "Figure 6: Label Quality vs. Incentives on the simulated platform",
        "quality ~0.8, depressed at 1-2c, flat above; Wilcoxon p-values 0.12/0.45/0.77/0.25 (all n.s.)",
    );

    let fixture = Fixture::paper_default();
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(0xf166));
    let images: Vec<&SyntheticImage> = fixture.dataset.train().iter().take(80).collect();
    let report = PilotStudy::new(PilotConfig::paper()).run(&mut platform, &images);

    let quality = report.quality_by_incentive();
    println!("{:<10} {:>10}", "incentive", "accuracy");
    for (level, q) in IncentiveLevel::ALL.iter().zip(&quality) {
        println!("{:<10} {:>10.3}", level.to_string(), q);
    }

    println!();
    println!("Wilcoxon signed-rank tests between adjacent incentive levels:");
    let pairs = [
        (IncentiveLevel::C2, IncentiveLevel::C4, 0.12),
        (IncentiveLevel::C4, IncentiveLevel::C6, 0.45),
        (IncentiveLevel::C6, IncentiveLevel::C8, 0.77),
        (IncentiveLevel::C8, IncentiveLevel::C10, 0.25),
    ];
    let mut significant = 0usize;
    for (a, b, paper_p) in pairs {
        let sa = report.accuracy_samples(a);
        let sb = report.accuracy_samples(b);
        let out = wilcoxon_signed_rank(&sa, &sb);
        significant += usize::from(out.significant(0.05));
        println!(
            "  {a} vs {b}: p = {:.3} (paper p = {paper_p:.2})  {}",
            out.p_value,
            if out.significant(0.05) {
                "SIGNIFICANT"
            } else {
                "not significant"
            }
        );
    }
    println!();
    println!(
        "Shape check: 1c quality {:.3} below plateau; significant mid-range steps: {significant}/4",
        quality[0],
    );
    assert!(quality[0] < quality[2], "1c must depress quality");
    // With 80 paired samples per comparison a ~5% false-positive rate per
    // pair is expected; the paper's claim survives as long as raising pay
    // does not *systematically* raise quality.
    assert!(
        significant <= 1,
        "shape violation: paying more must not systematically improve quality"
    );
}
