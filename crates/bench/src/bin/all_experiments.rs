//! One-shot summary: runs the core evaluation workloads in-process and
//! prints a compact paper-vs-measured digest. For the full per-experiment
//! output (and the shape assertions), run the dedicated binaries listed in
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_bench::{banner, paper_reference, Fixture};
use crowdlearn_crowd::{PilotConfig, PilotStudy, Platform, PlatformConfig};
use crowdlearn_dataset::SyntheticImage;

fn main() {
    banner(
        "CrowdLearn reproduction digest",
        "headline numbers from every evaluation axis; see EXPERIMENTS.md for details",
    );

    let fixture = Fixture::paper_default();

    // Tables II / III.
    println!("Running the seven Table II/III schemes...");
    let reports = fixture.run_all_schemes();
    println!();
    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>12} {:>8}",
        "Scheme", "acc", "F1", "AUC", "alg delay", "crowd"
    );
    for (report, (name, (paper_acc, _, _, _))) in reports.iter().zip(
        paper_reference::SCHEMES
            .iter()
            .zip(paper_reference::TABLE2.iter()),
    ) {
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>10.3} {:>10.1} s {:>8}",
            name,
            report.accuracy(),
            report.macro_f1(),
            report.roc().auc(),
            report.mean_algorithm_delay_secs(),
            report
                .mean_crowd_delay_secs()
                .map(|d| format!("{d:.0} s"))
                .unwrap_or_else(|| "-".into()),
        );
        let _ = paper_acc;
    }

    // Pilot study (Figures 5-6).
    println!();
    println!("Pilot study (Figures 5-6):");
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(0xd16e57));
    let images: Vec<&SyntheticImage> = fixture.dataset.train().iter().take(80).collect();
    let pilot = PilotStudy::new(PilotConfig::paper()).run(&mut platform, &images);
    let quality = pilot.quality_by_incentive();
    println!(
        "  morning delay 1c -> 20c: {:.0} s -> {:.0} s; quality plateau ~{:.2}",
        pilot.delay_table()[0][0],
        pilot.delay_table()[0][6],
        quality[3..].iter().sum::<f64>() / 4.0
    );

    // Budget sweep endpoints (Figures 10-11).
    println!();
    println!("Budget sweep endpoints (Figures 10-11):");
    for usd in [2.0, 10.0, 40.0] {
        let mut system = CrowdLearnSystem::new(
            &fixture.dataset,
            CrowdLearnConfig::paper().with_budget_cents(usd * 100.0),
        );
        let report = system.run(&fixture.dataset, &fixture.stream);
        println!(
            "  ${usd:>4.0}: F1 {:.3}, crowd delay {:>5.0} s",
            report.macro_f1(),
            report.mean_crowd_delay_secs().unwrap_or(f64::NAN)
        );
    }

    // The headline claims.
    let crowdlearn = &reports[0];
    let best_baseline_f1 = reports[1..]
        .iter()
        .map(|r| r.macro_f1())
        .fold(f64::NEG_INFINITY, f64::max);
    let hybrid_delay = 0.5
        * (reports[5].mean_crowd_delay_secs().unwrap_or(f64::NAN)
            + reports[6].mean_crowd_delay_secs().unwrap_or(f64::NAN));
    println!();
    println!("Headline claims:");
    println!(
        "  CrowdLearn leads Table II by {:+.1}% F1 (paper +5.3%)",
        100.0 * (crowdlearn.macro_f1() - best_baseline_f1) / best_baseline_f1
    );
    println!(
        "  adaptive incentives cut crowd delay by {:.0}% vs fixed hybrids (paper ~35%)",
        100.0 * (1.0 - crowdlearn.mean_crowd_delay_secs().unwrap_or(f64::NAN) / hybrid_delay)
    );
}
