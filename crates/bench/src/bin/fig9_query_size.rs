//! Regenerates **Figure 9**: query-set size (0%..100% of each cycle) vs
//! classification F1 for CrowdLearn, Hybrid-AL, Hybrid-Para, and the
//! Ensemble reference line.

#![forbid(unsafe_code)]

use crowdlearn::baselines::{run_ai_only, HybridAl, HybridConfig, HybridPara};
use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_bench::{banner, Fixture};
use crowdlearn_runtime::ParallelSweep;

fn main() {
    banner(
        "Figure 9: Size of Query Set vs. Classification Performance (macro F1)",
        "CrowdLearn grows with query size; Hybrid-AL/Para stay flat; 0% degrades to Ensemble",
    );

    let fixture = Fixture::paper_default();
    let fractions: Vec<usize> = (0..=10).step_by(2).collect(); // images per cycle of 10

    // Ensemble reference (no crowd at all).
    let mut ensemble = fixture.trained_ensemble(0);
    let ensemble_f1 = run_ai_only(&mut ensemble, &fixture.dataset, &fixture.stream).macro_f1();

    // Each sweep point is an independent seeded run over the shared
    // (immutable) fixture, so the parallel sweep reproduces the serial
    // loop's numbers exactly, in input order.
    let rows = ParallelSweep::auto().run(&fractions, |_, &q| {
        let crowdlearn_f1 = if q == 0 {
            let mut system = CrowdLearnSystem::new(
                &fixture.dataset,
                CrowdLearnConfig::paper()
                    .with_queries_per_cycle(0)
                    .with_budget_cents(0.0),
            );
            system.run(&fixture.dataset, &fixture.stream).macro_f1()
        } else {
            let mut system = CrowdLearnSystem::new(
                &fixture.dataset,
                CrowdLearnConfig::paper().with_queries_per_cycle(q),
            );
            system.run(&fixture.dataset, &fixture.stream).macro_f1()
        };

        let hybrid_config = HybridConfig {
            queries_per_cycle: q,
            budget_cents: (200 * q.max(1)) as f64,
            horizon_queries: (40 * q.max(1)) as u64,
            ..HybridConfig::paper()
        };
        let al_f1 = if q == 0 {
            ensemble_f1
        } else {
            let mut al = HybridAl::new(Box::new(fixture.trained_ensemble(0)), hybrid_config);
            al.run(&fixture.dataset, &fixture.stream).macro_f1()
        };
        let para_f1 = if q == 0 {
            ensemble_f1
        } else {
            let mut para = HybridPara::new(Box::new(fixture.trained_ensemble(0)), hybrid_config);
            para.run(&fixture.dataset, &fixture.stream).macro_f1()
        };
        (crowdlearn_f1, al_f1, para_f1)
    });

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "queries", "CrowdLearn", "Hybrid-AL", "Hybrid-Para", "Ensemble"
    );
    let mut crowdlearn_series = Vec::new();
    let mut al_series = Vec::new();
    let mut para_series = Vec::new();
    for (&q, &(crowdlearn_f1, al_f1, para_f1)) in fractions.iter().zip(&rows) {
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            format!("{}0%", q),
            crowdlearn_f1,
            al_f1,
            para_f1,
            ensemble_f1
        );
        crowdlearn_series.push(crowdlearn_f1);
        al_series.push(al_f1);
        para_series.push(para_f1);
    }

    let growth = crowdlearn_series.last().unwrap() - crowdlearn_series.first().unwrap();
    let al_growth = al_series.last().unwrap() - al_series.first().unwrap();
    let para_growth = para_series.last().unwrap() - para_series.first().unwrap();
    println!();
    println!(
        "Shape check: CrowdLearn grows {growth:+.3} from 0% to 100%; \
         Hybrid-AL {al_growth:+.3} and Hybrid-Para {para_growth:+.3} stay comparatively flat"
    );
    assert!(
        growth > 0.04,
        "CrowdLearn must improve substantially with queries"
    );
    assert!(
        growth > al_growth + 0.02 && growth > para_growth + 0.02,
        "shape violation: only CrowdLearn converts crowd labels into large gains"
    );
    assert!(
        (crowdlearn_series[0] - ensemble_f1).abs() < 0.05,
        "0% query set must degrade to Ensemble (paper §V-C3)"
    );
    assert!(
        crowdlearn_series.last().unwrap() > al_series.last().unwrap()
            && crowdlearn_series.last().unwrap() > para_series.last().unwrap(),
        "at 100% CrowdLearn's CQC must beat the baselines' majority voting"
    );
}
