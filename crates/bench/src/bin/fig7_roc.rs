//! Regenerates **Figure 7**: macro-average one-vs-rest ROC curves for all
//! seven schemes, printed as AUC plus a sampled curve.

#![forbid(unsafe_code)]

use crowdlearn_bench::{banner, paper_reference, Fixture};

fn main() {
    banner(
        "Figure 7: Macro-average ROC Curves for All Schemes",
        "CrowdLearn dominates across thresholds; ordering matches Table II",
    );

    let fixture = Fixture::paper_default();
    let reports = fixture.run_all_schemes();

    println!(
        "{:<12} {:>7}   curve (TPR at FPR = 0.05/0.1/0.2/0.4)",
        "Scheme", "AUC"
    );
    let mut aucs = Vec::new();
    for (report, name) in reports.iter().zip(paper_reference::SCHEMES.iter()) {
        let roc = report.roc();
        let samples: Vec<String> = [0.05, 0.1, 0.2, 0.4]
            .iter()
            .map(|&f| format!("{:.2}", roc.tpr_at(f)))
            .collect();
        println!("{:<12} {:>7.3}   {}", name, roc.auc(), samples.join(" / "));
        aucs.push(roc.auc());
    }

    let crowdlearn_auc = aucs[0];
    let best_other = aucs[1..].iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!(
        "Shape check: CrowdLearn AUC {crowdlearn_auc:.3} vs best baseline {best_other:.3} \
         (paper: CrowdLearn 'continues to outperform other baselines when we tune the \
         classification thresholds')"
    );
    assert!(
        crowdlearn_auc > best_other,
        "shape violation: CrowdLearn must have the best ROC"
    );
    // BoVW must be the weakest curve, as in the figure.
    let bovw = aucs[2];
    assert!(
        aucs.iter().all(|&a| a >= bovw),
        "shape violation: BoVW must trail every other scheme"
    );
}
