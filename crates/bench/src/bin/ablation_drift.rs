//! Extension experiment: MIC's dynamic expert weights under domain drift.
//!
//! On the paper's stationary evaluation the Hedge weight update is roughly
//! neutral (see `ablations`): the experts' relative quality never changes,
//! so there is nothing for a *dynamic* weighting to track. This experiment
//! enables the dataset's feature-family drift — the informative visual
//! evidence migrates from the deep-texture family to the handcrafted family
//! as the disaster unfolds — and shows that the paper's design choice pays
//! off exactly when the committee's relative reliability is non-stationary.

#![forbid(unsafe_code)]

use crowdlearn::{CalibratorConfig, CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_bench::banner;
use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream};

fn main() {
    banner(
        "Extension: dynamic expert weights under feature-family drift",
        "paper §IV-D motivates dynamic weights; drift is where they matter",
    );

    let drifted = Dataset::generate(&DatasetConfig::paper().with_family_drift(true));
    let stream = SensingCycleStream::paper(&drifted);

    let run = |update_weights: bool| {
        let config = CrowdLearnConfig::paper().with_calibration(CalibratorConfig {
            update_weights,
            ..CalibratorConfig::paper()
        });
        let mut system = CrowdLearnSystem::new(&drifted, config);
        let report = system.run(&drifted, &stream);
        (report, system.committee_weights().to_vec())
    };

    let (with_hedge, final_weights) = run(true);
    let (without_hedge, static_weights) = run(false);

    println!("{:<28} {:>9} {:>9}", "variant", "accuracy", "F1");
    println!(
        "{:<28} {:>9.3} {:>9.3}",
        "dynamic weights (Hedge)",
        with_hedge.accuracy(),
        with_hedge.macro_f1()
    );
    println!(
        "{:<28} {:>9.3} {:>9.3}",
        "static uniform weights",
        without_hedge.accuracy(),
        without_hedge.macro_f1()
    );
    println!();
    println!(
        "final expert weights (VGG16 / BoVW / DDM): dynamic {:?}, static {:?}",
        round3(&final_weights),
        round3(&static_weights)
    );
    println!();
    println!(
        "Shape check: under drift, Hedge must track the migrating evidence \
         ({:+.3} accuracy)",
        with_hedge.accuracy() - without_hedge.accuracy()
    );
    assert!(
        with_hedge.accuracy() > without_hedge.accuracy(),
        "dynamic weights must win under drift"
    );
    // The deep-texture expert (VGG16) fades as its family does: its final
    // weight must be below uniform.
    assert!(
        final_weights[0] < 1.0 / 3.0,
        "VGG16's weight must have been reduced: {final_weights:?}"
    );
}

fn round3(w: &[f64]) -> Vec<f64> {
    w.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
