//! Regenerates **Table III**: average algorithm delay and crowd delay per
//! sensing cycle for all seven schemes.

#![forbid(unsafe_code)]

use crowdlearn_bench::{banner, paper_reference, Fixture};

fn main() {
    banner(
        "Table III: Average Delay (in seconds) per Sensing Cycle",
        "CrowdLearn crowd delay 342.77 s, ~35% below the fixed-incentive hybrids (527-589 s)",
    );

    let fixture = Fixture::paper_default();
    let reports = fixture.run_all_schemes();

    println!(
        "{:<12} {:>26} {:>26}",
        "Scheme", "Algorithm delay", "Crowd delay"
    );
    for (report, (name, (paper_alg, paper_crowd))) in reports.iter().zip(
        paper_reference::SCHEMES
            .iter()
            .zip(paper_reference::TABLE3.iter()),
    ) {
        let crowd = match (report.mean_crowd_delay_secs(), paper_crowd) {
            (Some(m), Some(p)) => format!("{m:.1} (paper {p:.1})"),
            (None, None) => "N/A (paper N/A)".to_owned(),
            (m, p) => format!("{m:?} (paper {p:?})"),
        };
        println!(
            "{:<12} {:>26} {:>26}",
            name,
            format!(
                "{:.1} (paper {:.1})",
                report.mean_algorithm_delay_secs(),
                paper_alg
            ),
            crowd
        );
    }

    let crowdlearn_delay = reports[0]
        .mean_crowd_delay_secs()
        .expect("CrowdLearn queries");
    let para_delay = reports[5].mean_crowd_delay_secs().expect("Para queries");
    let al_delay = reports[6].mean_crowd_delay_secs().expect("AL queries");
    let fixed_mean = 0.5 * (para_delay + al_delay);
    println!();
    println!(
        "Shape check: CrowdLearn crowd delay {:.1} s vs fixed-incentive hybrids {:.1} s \
         ({:.0}% reduction; paper reports ~35%)",
        crowdlearn_delay,
        fixed_mean,
        100.0 * (1.0 - crowdlearn_delay / fixed_mean)
    );
    assert!(
        crowdlearn_delay < para_delay && crowdlearn_delay < al_delay,
        "shape violation: adaptive incentives must beat fixed incentives on delay"
    );
}
