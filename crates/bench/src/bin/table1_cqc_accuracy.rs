//! Regenerates **Table I**: aggregated label accuracy of CQC vs Voting vs
//! TD-EM vs Filtering, per temporal context and overall.
//!
//! Workload: the same kind of crowd queries the live system issues — test
//! images submitted at mid incentives — grouped by the temporal context they
//! were answered in. CQC is trained on training-split responses exactly as
//! the live system trains it.

#![forbid(unsafe_code)]

use crowdlearn::QualityController;
use crowdlearn_bench::{banner, paper_reference, Fixture};
use crowdlearn_crowd::{IncentiveLevel, Platform, PlatformConfig, QueryResponse};
use crowdlearn_dataset::{DamageLabel, SyntheticImage, TemporalContext};
use crowdlearn_truth::{Aggregator, Annotation, DawidSkeneEm, MajorityVoting, WorkerFiltering};

const QUERIES_PER_CONTEXT: usize = 100;

fn main() {
    banner(
        "Table I: Aggregated Label Accuracy",
        "CQC 0.9350 overall, >= 5.75 points above the best alternative (Filtering 0.8775)",
    );

    let fixture = Fixture::paper_default();
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(0x7ab1e));

    // Train CQC on training-split responses (truth known), as in the system
    // bootstrap.
    let mut cqc = QualityController::paper();
    let train_examples: Vec<(QueryResponse, DamageLabel)> = (0..1120)
        .map(|i| {
            let img = &fixture.dataset.train()[i % fixture.dataset.train().len()];
            let ctx = TemporalContext::from_index(i % TemporalContext::COUNT);
            let level = IncentiveLevel::from_index((i / 3) % IncentiveLevel::COUNT);
            (platform.submit(img, level, ctx), img.truth())
        })
        .collect();
    cqc.train(&train_examples);

    // Evaluation responses per context over test images.
    let mut responses: Vec<Vec<(&SyntheticImage, QueryResponse)>> = Vec::new();
    for ctx in TemporalContext::ALL {
        let mut batch = Vec::with_capacity(QUERIES_PER_CONTEXT);
        for q in 0..QUERIES_PER_CONTEXT {
            let img = &fixture.dataset.test()
                [(q + ctx.index() * QUERIES_PER_CONTEXT) % fixture.dataset.test().len()];
            batch.push((img, platform.submit(img, IncentiveLevel::C6, ctx)));
        }
        responses.push(batch);
    }

    // Aggregation schemes. Filtering and TD-EM consume raw annotations.
    let accuracy_of = |scheme: &str, per_ctx: &dyn Fn(usize) -> f64| {
        let per: Vec<f64> = (0..TemporalContext::COUNT).map(per_ctx).collect();
        let overall = per.iter().sum::<f64>() / per.len() as f64;
        (scheme.to_owned(), per, overall)
    };

    let cqc_rows = accuracy_of("CQC", &|c| {
        let batch = &responses[c];
        batch
            .iter()
            .filter(|(img, resp)| cqc.truthful_label(resp) == img.truth())
            .count() as f64
            / batch.len() as f64
    });

    let aggregate_with = |aggregator: &mut dyn Aggregator, c: usize| -> f64 {
        let batch = &responses[c];
        let annotations: Vec<Annotation> = batch
            .iter()
            .enumerate()
            .flat_map(|(item, (_, resp))| {
                resp.responses
                    .iter()
                    .map(move |r| Annotation::new(r.worker, item, r.label.index()))
            })
            .collect();
        let estimates = aggregator.aggregate(&annotations, batch.len(), DamageLabel::COUNT);
        estimates
            .iter()
            .zip(batch)
            .filter(|(est, (img, _))| est.label() == img.truth().index())
            .count() as f64
            / batch.len() as f64
    };

    let voting_rows = accuracy_of("Voting", &|c| aggregate_with(&mut MajorityVoting, c));
    let tdem_rows = accuracy_of("TD-EM", &|c| {
        aggregate_with(&mut DawidSkeneEm::default(), c)
    });
    // Filtering needs worker history before it can blacklist anyone: give it
    // one ungraded pass over all four context batches (the live system would
    // have accumulated the same history during earlier cycles), then score.
    let mut filtering = WorkerFiltering::paper_default();
    for c in 0..TemporalContext::COUNT {
        let _ = aggregate_with(&mut filtering, c);
    }
    let blacklisted = filtering.blacklisted_count();
    let filtering_rows = accuracy_of("Filtering", &|c| aggregate_with(&mut filtering.clone(), c));

    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9}   (paper overall)",
        "Scheme", "Morning", "Afternoon", "Evening", "Midnight", "Overall"
    );
    let rows = [cqc_rows, voting_rows, tdem_rows, filtering_rows];
    for ((name, per, overall), (paper_name, paper_vals)) in
        rows.iter().zip(paper_reference::TABLE1.iter())
    {
        assert_eq!(name, paper_name);
        println!(
            "{:<10} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}   ({:.4})",
            name, per[0], per[1], per[2], per[3], overall, paper_vals[4]
        );
    }
    println!("(Filtering blacklisted {blacklisted} workers from its history pass)");

    let cqc_overall = rows[0].2;
    let best_other = rows[1..]
        .iter()
        .map(|r| r.2)
        .fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!(
        "Shape check: CQC {:.3} vs best alternative {:.3} ({:+.2} points; paper reports +5.75)",
        cqc_overall,
        best_other,
        100.0 * (cqc_overall - best_other)
    );
    assert!(
        cqc_overall > best_other,
        "shape violation: CQC must lead Table I"
    );
}
