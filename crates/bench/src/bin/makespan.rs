//! Virtual-time makespan of the paper's 40-cycle run: the blocking loop
//! (every crowd answer awaited serially) versus the event-driven pipelined
//! runtime at increasing in-flight windows.
//!
//! All times are *virtual* seconds from the deterministic simulation — the
//! point is how much of the crowd latency the pipeline hides, not how fast
//! the simulator itself runs.

#![forbid(unsafe_code)]

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_bench::{banner, Fixture};
use crowdlearn_runtime::{blocking_makespan_secs, PipelinedSystem, RuntimeConfig};

fn main() {
    banner(
        "Pipelined runtime: virtual-time makespan, sequential vs pipelined",
        "cycle period 600 s; crowd waits overlap later cycles' inference and selection",
    );

    let fixture = Fixture::paper_default();
    let period = RuntimeConfig::paper().cycle_period_secs;

    // The blocking reference: the plain `run_cycle` loop, timed under the
    // same virtual-time rules (a cycle starts at the later of its arrival
    // and its predecessor's completion, then serializes every wait).
    let mut blocking = CrowdLearnSystem::new(&fixture.dataset, CrowdLearnConfig::paper());
    let outcomes: Vec<_> = fixture
        .stream
        .cycles()
        .iter()
        .map(|cycle| blocking.run_cycle(cycle, &fixture.dataset))
        .collect();
    let sequential = blocking_makespan_secs(&outcomes, period);
    println!(
        "sequential (blocking loop): {:>9.0} s  (speedup 1.00x)",
        sequential
    );

    println!(
        "{:<28} {:>11} {:>9} {:>13} {:>8}",
        "runtime", "makespan(s)", "speedup", "peak cycles", "events"
    );
    let mut pipelined_makespans = Vec::new();
    for window in [1usize, 2, 4, 8] {
        let mut system = PipelinedSystem::new(
            &fixture.dataset,
            CrowdLearnConfig::paper(),
            RuntimeConfig::paper().with_inflight_window(window),
        );
        let run = system.run(&fixture.dataset, &fixture.stream);
        println!(
            "{:<28} {:>11.0} {:>8.2}x {:>13} {:>8}",
            format!("pipelined (window {window})"),
            run.makespan_secs,
            sequential / run.makespan_secs,
            run.peak_cycles_in_flight,
            run.events_processed
        );
        pipelined_makespans.push((window, run.makespan_secs));
    }

    println!();
    let window1 = pipelined_makespans[0].1;
    println!(
        "Shape check: window 1 reproduces the blocking makespan ({window1:.0} s), \
         wider windows hide crowd latency behind later cycles"
    );
    // Window 1 *is* the blocking loop under event scheduling.
    assert!(
        (window1 - sequential).abs() < 1e-6 * sequential.max(1.0),
        "window-1 makespan {window1} must equal the blocking loop's {sequential}"
    );
    // Acceptance: the pipeline must beat the sequential system.
    for &(window, makespan) in &pipelined_makespans[1..] {
        assert!(
            makespan < sequential,
            "window-{window} makespan {makespan} must beat sequential {sequential}"
        );
    }
}
