//! Virtual-time makespan of the paper's 40-cycle run: the blocking loop
//! (every crowd answer awaited serially) versus the event-driven pipelined
//! runtime at increasing in-flight windows — plus the wall-clock overhead
//! of the streaming metrics tap.
//!
//! Makespans are *virtual* seconds from the deterministic simulation — the
//! point is how much of the crowd latency the pipeline hides. Wall-clock
//! times are real (this crate is the D2 exemption) and feed
//! `BENCH_runtime.json` so CI tracks simulator throughput and tap overhead
//! run over run.

#![forbid(unsafe_code)]

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_bench::{banner, Fixture};
use crowdlearn_runtime::{
    blocking_makespan_secs, MetricsTap, PipelinedSystem, RuntimeConfig, RuntimeReport,
};
use std::time::Instant;

/// One measured pipelined run: wall clock covers the event loop only (the
/// system boot is identical across windows and not what the bench tracks).
// The bench crate is the detlint D2 exemption: timing harnesses read the
// wall clock by design. clippy.toml mirrors D2 workspace-wide, so the
// exemption is restated here.
#[allow(clippy::disallowed_methods)]
fn timed_run(fixture: &Fixture, window: usize, tap: bool) -> (RuntimeReport, f64) {
    let mut system = PipelinedSystem::new(
        &fixture.dataset,
        CrowdLearnConfig::paper(),
        RuntimeConfig::paper().with_inflight_window(window),
    );
    if tap {
        system.attach_metrics_tap(MetricsTap::new());
    }
    let started = Instant::now();
    let run = system.run(&fixture.dataset, &fixture.stream);
    (run, started.elapsed().as_secs_f64())
}

fn main() {
    banner(
        "Pipelined runtime: virtual-time makespan, sequential vs pipelined",
        "cycle period 600 s; crowd waits overlap later cycles' inference and selection",
    );

    let fixture = Fixture::paper_default();
    let period = RuntimeConfig::paper().cycle_period_secs;

    // The blocking reference: the plain `run_cycle` loop, timed under the
    // same virtual-time rules (a cycle starts at the later of its arrival
    // and its predecessor's completion, then serializes every wait).
    let mut blocking = CrowdLearnSystem::new(&fixture.dataset, CrowdLearnConfig::paper());
    let outcomes: Vec<_> = fixture
        .stream
        .cycles()
        .iter()
        .map(|cycle| blocking.run_cycle(cycle, &fixture.dataset))
        .collect();
    let sequential = blocking_makespan_secs(&outcomes, period);
    println!(
        "sequential (blocking loop): {:>9.0} s  (speedup 1.00x)",
        sequential
    );

    println!(
        "{:<28} {:>11} {:>9} {:>13} {:>8} {:>9}",
        "runtime", "makespan(s)", "speedup", "peak cycles", "events", "wall(ms)"
    );
    let mut measured = Vec::new();
    for window in [1usize, 2, 4, 8] {
        let (run, wall_secs) = timed_run(&fixture, window, false);
        println!(
            "{:<28} {:>11.0} {:>8.2}x {:>13} {:>8} {:>9.1}",
            format!("pipelined (window {window})"),
            run.makespan_secs,
            sequential / run.makespan_secs,
            run.peak_cycles_in_flight,
            run.events_processed,
            wall_secs * 1e3
        );
        measured.push((window, run, wall_secs));
    }

    // Tap overhead: the same window-4 run with a streaming metrics tap
    // attached. The simulation must be bit-identical (the tap observes, it
    // never steers), and the wall-clock cost of feeding it should be noise.
    let (untapped_run, untapped_wall) = timed_run(&fixture, 4, false);
    let (tapped_run, tapped_wall) = timed_run(&fixture, 4, true);
    assert_eq!(
        tapped_run.outcomes, untapped_run.outcomes,
        "attaching a tap must not perturb the simulation"
    );
    let tap = tapped_run
        .metrics
        .as_ref()
        .expect("tapped run returns its tap");
    println!(
        "\ntap overhead (window 4): untapped {:.1} ms, tapped {:.1} ms \
         ({} records, p50 crowd delay {:.0} s)",
        untapped_wall * 1e3,
        tapped_wall * 1e3,
        tap.records(),
        tap.crowd_delay().median().unwrap_or(f64::NAN),
    );

    // Machine-readable summary for CI trend tracking. Wall-clock numbers
    // are recorded, not asserted — they flake with machine load; the
    // virtual-time shape checks below are the hard gates.
    let mut json = String::from("{\n  \"bench\": \"makespan\",\n");
    json.push_str(&format!(
        "  \"sequential_makespan_secs\": {sequential:.3},\n  \"windows\": [\n"
    ));
    for (i, (window, run, wall_secs)) in measured.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"window\": {window}, \"makespan_secs\": {:.3}, \"speedup\": {:.4}, \
             \"events\": {}, \"wall_ms\": {:.3}}}{}\n",
            run.makespan_secs,
            sequential / run.makespan_secs,
            run.events_processed,
            wall_secs * 1e3,
            if i + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"tap_overhead\": {{\"window\": 4, \"untapped_wall_ms\": {:.3}, \
         \"tapped_wall_ms\": {:.3}, \"records\": {}}}\n}}\n",
        untapped_wall * 1e3,
        tapped_wall * 1e3,
        tap.records()
    ));
    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("wrote BENCH_runtime.json");

    println!();
    let window1 = measured[0].1.makespan_secs;
    println!(
        "Shape check: window 1 reproduces the blocking makespan ({window1:.0} s), \
         wider windows hide crowd latency behind later cycles"
    );
    // Window 1 *is* the blocking loop under event scheduling.
    assert!(
        (window1 - sequential).abs() < 1e-6 * sequential.max(1.0),
        "window-1 makespan {window1} must equal the blocking loop's {sequential}"
    );
    // Acceptance: the pipeline must beat the sequential system.
    for (window, run, _) in &measured[1..] {
        assert!(
            run.makespan_secs < sequential,
            "window-{window} makespan {} must beat sequential {sequential}",
            run.makespan_secs
        );
    }
}
