//! Adaptive window controller bench: virtual-time makespan of the
//! event-driven runtime under static windows versus the metrics-driven
//! [`WindowPolicy::Adaptive`] controller, swept across two crowd-delay
//! profiles.
//!
//! * **stable** — every `(context, incentive)` cell answers in ~15 s: the
//!   crowd beats the 600 s sensing cadence everywhere, the pipeline window
//!   never binds, and every policy must land on the identical makespan.
//!   The gate: the adaptive controller is *never worse than the best
//!   static window* here (it opens at its floor and holds, because the
//!   watched delay percentile sits under the low threshold).
//! * **bursty** — morning/afternoon HITs take ~2400 s while
//!   evening/midnight take ~60 s: with contexts rotating per cycle, slow
//!   bursts pile arrivals behind a narrow window, and a static bet is
//!   either flooded (too wide for the fast half) or starved (too narrow
//!   for the slow half). The gate: adaptive beats the *worst* static
//!   window by >= 1.2x makespan.
//!
//! Makespans are virtual seconds from the deterministic simulation, so the
//! gates are exact and machine-independent; wall-clock times are recorded
//! in `BENCH_adaptive.json` for trend tracking only.

#![forbid(unsafe_code)]

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_bench::{banner, Fixture};
use crowdlearn_crowd::{DelayModel, IncentiveLevel, PlatformConfig};
use crowdlearn_dataset::TemporalContext;
use crowdlearn_runtime::{PipelinedSystem, RuntimeConfig, RuntimeReport, WindowPolicy};
use std::time::Instant;

/// Uniform ~15 s crowd: far under the 600 s cadence in every context.
fn stable_profile() -> DelayModel {
    DelayModel::from_table([[15.0; IncentiveLevel::COUNT]; TemporalContext::COUNT], 0.1)
}

/// Bimodal diurnal crowd: day contexts 4x over the cadence, night contexts
/// 10x under it. Contexts rotate round-robin cycle by cycle.
fn bursty_profile() -> DelayModel {
    DelayModel::from_table(
        [
            [2400.0; IncentiveLevel::COUNT],
            [2400.0; IncentiveLevel::COUNT],
            [60.0; IncentiveLevel::COUNT],
            [60.0; IncentiveLevel::COUNT],
        ],
        0.18,
    )
}

/// One measured run of the paper's 40-cycle stream under `policy` over
/// `delays`. Wall clock covers the event loop only — boots are identical
/// across policies and not what this bench tracks.
// The bench crate is the detlint D2 exemption: timing harnesses read the
// wall clock by design. clippy.toml mirrors D2 workspace-wide, so the
// exemption is restated here.
#[allow(clippy::disallowed_methods)]
fn timed_run(fixture: &Fixture, delays: &DelayModel, policy: WindowPolicy) -> (RuntimeReport, f64) {
    let platform = PlatformConfig::paper().with_delay_model(delays.clone());
    let system = CrowdLearnSystem::with_platform_config(
        &fixture.dataset,
        CrowdLearnConfig::paper(),
        platform,
    );
    let mut system =
        PipelinedSystem::from_system(system, RuntimeConfig::paper().with_window_policy(policy));
    let started = Instant::now();
    let run = system.run(&fixture.dataset, &fixture.stream);
    (run, started.elapsed().as_secs_f64())
}

struct Measured {
    label: String,
    makespan_secs: f64,
    peak_window: usize,
    events: u64,
    wall_secs: f64,
}

fn sweep(
    fixture: &Fixture,
    delays: &DelayModel,
    policies: &[(String, WindowPolicy)],
) -> Vec<Measured> {
    println!(
        "{:<22} {:>12} {:>9} {:>11} {:>8} {:>9}",
        "policy", "makespan(s)", "speedup", "peak window", "events", "wall(ms)"
    );
    let mut measured = Vec::new();
    let mut reference = None;
    for (label, policy) in policies {
        let (run, wall_secs) = timed_run(fixture, delays, *policy);
        let reference = *reference.get_or_insert(run.makespan_secs);
        let peak_window = run.window_trajectory.iter().max().copied().unwrap_or(0);
        println!(
            "{:<22} {:>12.0} {:>8.2}x {:>11} {:>8} {:>9.1}",
            label,
            run.makespan_secs,
            reference / run.makespan_secs,
            peak_window,
            run.events_processed,
            wall_secs * 1e3
        );
        measured.push(Measured {
            label: label.clone(),
            makespan_secs: run.makespan_secs,
            peak_window,
            events: run.events_processed,
            wall_secs,
        });
    }
    measured
}

fn json_entries(measured: &[Measured]) -> String {
    measured
        .iter()
        .map(|m| {
            format!(
                "    {{\"policy\": \"{}\", \"makespan_secs\": {:.3}, \"peak_window\": {}, \
                 \"events\": {}, \"wall_ms\": {:.3}}}",
                m.label,
                m.makespan_secs,
                m.peak_window,
                m.events,
                m.wall_secs * 1e3
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    banner(
        "Adaptive window controller: makespan vs static windows, per delay profile",
        "600 s cadence; the controller re-bets the in-flight window from streamed delay quantiles",
    );

    let fixture = Fixture::paper_default();
    let statics = [1usize, 2, 4, 8];
    let mut policies: Vec<(String, WindowPolicy)> = statics
        .iter()
        .map(|&n| (format!("static window {n}"), WindowPolicy::Static(n)))
        .collect();
    policies.push(("adaptive [1, 8]".to_string(), WindowPolicy::adaptive(1, 8)));

    println!("\n-- stable profile: every context ~15 s, window never binds --");
    let stable = sweep(&fixture, &stable_profile(), &policies);
    println!("\n-- bursty profile: day ~2400 s, night ~60 s, contexts rotate per cycle --");
    let bursty = sweep(&fixture, &bursty_profile(), &policies);

    let (stable_static, stable_adaptive) = stable.split_at(statics.len());
    let (bursty_static, bursty_adaptive) = bursty.split_at(statics.len());
    let stable_adaptive = &stable_adaptive[0];
    let bursty_adaptive = &bursty_adaptive[0];
    let best_stable_static = stable_static
        .iter()
        .min_by(|a, b| a.makespan_secs.total_cmp(&b.makespan_secs))
        .expect("non-empty sweep");
    let worst_bursty_static = bursty_static
        .iter()
        .max_by(|a, b| a.makespan_secs.total_cmp(&b.makespan_secs))
        .expect("non-empty sweep");
    let bursty_speedup = worst_bursty_static.makespan_secs / bursty_adaptive.makespan_secs;

    println!(
        "\nstable:  adaptive {:.0} s vs best static ({}) {:.0} s",
        stable_adaptive.makespan_secs, best_stable_static.label, best_stable_static.makespan_secs
    );
    println!(
        "bursty:  adaptive {:.0} s vs worst static ({}) {:.0} s -- {bursty_speedup:.2}x",
        bursty_adaptive.makespan_secs, worst_bursty_static.label, worst_bursty_static.makespan_secs
    );

    let json = format!(
        "{{\n  \"bench\": \"adaptive\",\n  \"stable\": [\n{}\n  ],\n  \"bursty\": [\n{}\n  ],\n  \
         \"gates\": {{\"stable_adaptive_vs_best_static\": {:.6}, \
         \"bursty_adaptive_vs_worst_static\": {:.4}}}\n}}\n",
        json_entries(&stable),
        json_entries(&bursty),
        stable_adaptive.makespan_secs / best_stable_static.makespan_secs,
        bursty_speedup
    );
    std::fs::write("BENCH_adaptive.json", &json).expect("write BENCH_adaptive.json");
    println!("wrote BENCH_adaptive.json");

    // Acceptance gates — virtual-time quantities, so exact and stable.
    //
    // 1. On the stable profile the controller must not lose to any static
    //    window: the crowd beats the cadence, the window never binds, and
    //    the adaptive run holds its floor — same makespan, same bits.
    assert!(
        stable_adaptive.makespan_secs <= best_stable_static.makespan_secs * (1.0 + 1e-9),
        "adaptive ({} s) must never lose to the best static window ({} at {} s) on a stable profile",
        stable_adaptive.makespan_secs,
        best_stable_static.label,
        best_stable_static.makespan_secs
    );
    // 2. On the bursty profile the controller must rescue the worst static
    //    bet by a factor of at least 1.2.
    assert!(
        bursty_speedup >= 1.2,
        "adaptive must beat the worst static window by >= 1.2x on the bursty profile, got {bursty_speedup:.3}x"
    );
    // 3. The controller must have actually moved on the bursty profile —
    //    the speedup has to come from widening, not from luck.
    assert!(
        bursty_adaptive.peak_window > 1,
        "the bursty profile must drive the controller off its floor"
    );
    println!("\nGates: stable no-loss ok, bursty {bursty_speedup:.2}x >= 1.2x ok");
}
