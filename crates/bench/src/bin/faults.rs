//! Fault-injection bench: graceful degradation to AI-only labeling under a
//! mid-run crowd outage.
//!
//! Three measured runs over the paper's 40-cycle stream:
//!
//! * **fault-free hybrid** — the pipelined CrowdLearn runtime, no faults.
//! * **faulted hybrid** — the same runtime with a ten-cycle platform
//!   outage injected mid-run: the circuit breaker opens, arrivals degrade
//!   to AI-only labeling, interrupted cycles park and re-post on recovery.
//! * **AI-only** — the boosted Ensemble baseline (Table II row 5), the
//!   floor the degradation ladder is supposed to hold.
//!
//! The gates are the robustness claims: the faulted hybrid's accuracy must
//! stay at or above the AI-only floor (degrading is never worse than not
//! having a crowd at all), its virtual-time makespan must recover to
//! within the outage length plus a small number of cycle periods of the
//! fault-free run, and a checkpoint taken *while the breaker is open* must
//! resume byte-identically. All three are virtual-time/exact quantities —
//! machine-independent; wall-clock times land in `BENCH_faults.json` for
//! trend tracking only.

#![forbid(unsafe_code)]

use crowdlearn::baselines::run_ai_only;
use crowdlearn::CrowdLearnConfig;
use crowdlearn_bench::{banner, Fixture};
use crowdlearn_runtime::{
    BreakerState, FaultEpisode, FaultPlan, MetricsTap, PipelinedSystem, RunBound, RuntimeConfig,
    RuntimeReport, RuntimeSnapshot,
};
use std::time::Instant;

/// Outage window: the platform goes dark for ten sensing cycles starting
/// one fifth into the 40-cycle stream.
const OUTAGE_FROM_SECS: f64 = 3000.0;
const OUTAGE_UNTIL_SECS: f64 = 9000.0;

fn outage_plan() -> FaultPlan {
    FaultPlan::new(
        0xFA_0175,
        vec![FaultEpisode::PlatformOutage {
            from_secs: OUTAGE_FROM_SECS,
            until_secs: OUTAGE_UNTIL_SECS,
        }],
    )
}

/// One measured hybrid run. Wall clock covers the event loop only.
// The bench crate is the detlint D2 exemption: timing harnesses read the
// wall clock by design. clippy.toml mirrors D2 workspace-wide, so the
// exemption is restated here.
#[allow(clippy::disallowed_methods)]
fn timed_run(fixture: &Fixture, runtime: RuntimeConfig) -> (RuntimeReport, f64) {
    let mut system = PipelinedSystem::new(&fixture.dataset, CrowdLearnConfig::paper(), runtime);
    system.attach_metrics_tap(MetricsTap::new());
    let started = Instant::now();
    let run = system.run(&fixture.dataset, &fixture.stream);
    (run, started.elapsed().as_secs_f64())
}

fn main() {
    banner(
        "Fault injection: accuracy and makespan under a mid-run crowd outage",
        "degradation ladder holds the AI-only floor; breaker recovers the crowd path",
    );

    let fixture = Fixture::paper_default();
    let runtime = RuntimeConfig::paper();
    let cycle_period = runtime.cycle_period_secs;
    let outage_len = OUTAGE_UNTIL_SECS - OUTAGE_FROM_SECS;
    println!(
        "\noutage: platform dark {OUTAGE_FROM_SECS:.0}-{OUTAGE_UNTIL_SECS:.0} s \
         ({:.0} cycles of the {cycle_period:.0} s cadence)\n",
        outage_len / cycle_period
    );

    let (fault_free, free_wall) = timed_run(&fixture, runtime.clone());
    let faulted_runtime = runtime.with_faults(outage_plan());
    let (faulted, faulted_wall) = timed_run(&fixture, faulted_runtime.clone());
    let mut ensemble = fixture.trained_ensemble(0);
    let ai_only = run_ai_only(&mut ensemble, &fixture.dataset, &fixture.stream);

    println!(
        "{:<18} {:>9} {:>13} {:>9} {:>10} {:>9}",
        "run", "accuracy", "makespan(s)", "rejected", "degraded", "wall(ms)"
    );
    println!(
        "{:<18} {:>9.3} {:>13.0} {:>9} {:>10} {:>9.1}",
        "hybrid fault-free",
        fault_free.report.accuracy(),
        fault_free.makespan_secs,
        fault_free.posts_rejected,
        fault_free.degraded_cycles,
        free_wall * 1e3
    );
    println!(
        "{:<18} {:>9.3} {:>13.0} {:>9} {:>10} {:>9.1}",
        "hybrid faulted",
        faulted.report.accuracy(),
        faulted.makespan_secs,
        faulted.posts_rejected,
        faulted.degraded_cycles,
        faulted_wall * 1e3
    );
    println!(
        "{:<18} {:>9.3} {:>13} {:>9} {:>10} {:>9}",
        "AI-only (Ensemble)",
        ai_only.accuracy(),
        "-",
        "-",
        "-",
        "-"
    );

    // Mid-outage checkpoint: pause with the breaker open, serialize,
    // restore from bytes, and finish — the finished report must match the
    // uninterrupted faulted run byte for byte.
    let mid_outage = (OUTAGE_FROM_SECS + OUTAGE_UNTIL_SECS) / 2.0;
    let mut interrupted =
        PipelinedSystem::new(&fixture.dataset, CrowdLearnConfig::paper(), faulted_runtime);
    interrupted.attach_metrics_tap(MetricsTap::new());
    let paused = interrupted.run_until(
        &fixture.dataset,
        &fixture.stream,
        RunBound::VirtualTime(mid_outage),
    );
    assert!(paused.is_none(), "the outage must not drain the run");
    assert_eq!(
        interrupted.breaker_state(),
        Some(BreakerState::Open),
        "mid-outage the breaker must be open"
    );
    let bytes = interrupted
        .snapshot()
        .expect("the paper configuration is checkpointable")
        .to_bytes();
    drop(interrupted);
    let snapshot = RuntimeSnapshot::from_bytes(&bytes).expect("frame validates");
    let mut resumed = PipelinedSystem::resume(&snapshot, &fixture.stream).expect("payload decodes");
    let resumed_report = resumed.run(&fixture.dataset, &fixture.stream);
    let resume_identical = format!("{resumed_report:?}") == format!("{faulted:?}");
    println!(
        "\nmid-outage checkpoint at {mid_outage:.0} s: {} bytes, resume identical: {}",
        bytes.len(),
        resume_identical
    );

    // Makespan recovery: the outage may cost at most its own length plus a
    // short drain tail of parked/re-posted work.
    let recovery_bound = outage_len + 4.0 * cycle_period;
    let makespan_delta = faulted.makespan_secs - fault_free.makespan_secs;
    println!(
        "makespan delta {makespan_delta:.0} s (bound: outage {outage_len:.0} s + 4 cycles = {recovery_bound:.0} s)"
    );

    let json = format!(
        "{{\n  \"bench\": \"faults\",\n  \
         \"outage\": {{\"from_secs\": {OUTAGE_FROM_SECS:.1}, \"until_secs\": {OUTAGE_UNTIL_SECS:.1}}},\n  \
         \"fault_free\": {{\"accuracy\": {:.6}, \"makespan_secs\": {:.3}, \"wall_ms\": {:.3}}},\n  \
         \"faulted\": {{\"accuracy\": {:.6}, \"makespan_secs\": {:.3}, \"posts_rejected\": {}, \
         \"degraded_cycles\": {}, \"wall_ms\": {:.3}}},\n  \
         \"ai_only\": {{\"accuracy\": {:.6}}},\n  \
         \"gates\": {{\"degraded_minus_ai_only\": {:.6}, \"makespan_delta_secs\": {:.3}, \
         \"recovery_bound_secs\": {:.3}, \"mid_outage_resume_identical\": {}}}\n}}\n",
        fault_free.report.accuracy(),
        fault_free.makespan_secs,
        free_wall * 1e3,
        faulted.report.accuracy(),
        faulted.makespan_secs,
        faulted.posts_rejected,
        faulted.degraded_cycles,
        faulted_wall * 1e3,
        ai_only.accuracy(),
        faulted.report.accuracy() - ai_only.accuracy(),
        makespan_delta,
        recovery_bound,
        resume_identical
    );
    std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
    println!("wrote BENCH_faults.json");

    // Acceptance gates — exact virtual-time/accuracy quantities.
    //
    // 1. The ladder actually engaged: the outage rejected posts and some
    //    cycles were labeled AI-only.
    assert!(
        faulted.posts_rejected > 0 && faulted.degraded_cycles > 0,
        "the outage must reject posts and degrade cycles (got {} rejected, {} degraded)",
        faulted.posts_rejected,
        faulted.degraded_cycles
    );
    // 2. Degrading holds the AI-only floor: losing the crowd for a third
    //    of the run must never be worse than never having it.
    assert!(
        faulted.report.accuracy() >= ai_only.accuracy(),
        "faulted hybrid ({:.3}) must hold the AI-only floor ({:.3})",
        faulted.report.accuracy(),
        ai_only.accuracy()
    );
    // 3. Makespan recovers: the outage costs at most its own length plus a
    //    four-cycle drain tail.
    assert!(
        makespan_delta <= recovery_bound,
        "faulted makespan must recover within {recovery_bound:.0} s of fault-free, \
         got +{makespan_delta:.0} s"
    );
    // 4. The mid-outage checkpoint resumes byte-identically.
    assert!(
        resume_identical,
        "mid-outage resume diverged from the uninterrupted faulted run"
    );
    println!(
        "\nGates: ladder engaged ok, AI-only floor held (+{:.3}), \
         recovery {makespan_delta:+.0} s <= {recovery_bound:.0} s ok, resume identical ok",
        faulted.report.accuracy() - ai_only.accuracy()
    );
}
