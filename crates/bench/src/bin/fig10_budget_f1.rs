//! Regenerates **Figure 10**: total crowd budget (2..40 USD) vs CrowdLearn's
//! classification F1 — rising sharply at low budgets, then plateauing.

#![forbid(unsafe_code)]

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_bench::{banner, Fixture};
use crowdlearn_runtime::ParallelSweep;

fn main() {
    banner(
        "Figure 10: Budget vs. F1",
        "F1 poor at 2 USD, stable above ~6-8 USD (paper: +0.018 F1 from 8 to 40 USD)",
    );

    let fixture = Fixture::paper_default();
    let budgets_usd = [2.0, 4.0, 6.0, 8.0, 10.0, 20.0, 40.0];

    // One independent seeded run per budget point, executed across the
    // available cores; results land in input order with the serial numbers.
    let rows = ParallelSweep::auto().run(&budgets_usd, |_, &usd| {
        let mut system = CrowdLearnSystem::new(
            &fixture.dataset,
            CrowdLearnConfig::paper().with_budget_cents(usd * 100.0),
        );
        let report = system.run(&fixture.dataset, &fixture.stream);
        (report.macro_f1(), report.accuracy())
    });

    println!("{:<10} {:>8} {:>10}", "budget", "F1", "accuracy");
    let mut series = Vec::new();
    for (&usd, &(f1, accuracy)) in budgets_usd.iter().zip(&rows) {
        println!(
            "{:<10} {:>8.3} {:>10.3}",
            format!("${usd:.0}"),
            f1,
            accuracy
        );
        series.push(f1);
    }

    let low = series[0];
    let knee = series[3]; // $8
    let high = *series.last().unwrap(); // $40
    println!();
    println!(
        "Shape check: $2 -> {low:.3}, $8 -> {knee:.3}, $40 -> {high:.3}; \
         plateau delta {:+.3} (paper reports +0.018 from $8 to $40)",
        high - knee
    );
    assert!(knee > low, "more budget must help below the knee");
    assert!(
        (high - knee).abs() < 0.03,
        "shape violation: F1 must plateau above a reasonable budget"
    );
}
