//! Regenerates **Figure 11**: total crowd budget (2..40 USD) vs CrowdLearn's
//! crowd response delay — falling sharply, then plateauing.

#![forbid(unsafe_code)]

use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
use crowdlearn_bench::{banner, Fixture};
use crowdlearn_runtime::ParallelSweep;

fn main() {
    banner(
        "Figure 11: Budget vs. Crowd Delay",
        "delay high at 2 USD, falls with budget, plateaus once the bandit can afford fast incentives",
    );

    let fixture = Fixture::paper_default();
    let budgets_usd = [2.0, 4.0, 6.0, 8.0, 10.0, 20.0, 40.0];

    // One independent seeded run per budget point, executed across the
    // available cores; results land in input order with the serial numbers.
    let series = ParallelSweep::auto().run(&budgets_usd, |_, &usd| {
        let mut system = CrowdLearnSystem::new(
            &fixture.dataset,
            CrowdLearnConfig::paper().with_budget_cents(usd * 100.0),
        );
        let report = system.run(&fixture.dataset, &fixture.stream);
        report.mean_crowd_delay_secs().unwrap_or(f64::NAN)
    });

    println!("{:<10} {:>14}", "budget", "crowd delay(s)");
    for (&usd, &delay) in budgets_usd.iter().zip(&series) {
        println!("{:<10} {:>14.0}", format!("${usd:.0}"), delay);
    }

    let low_budget = series[0];
    let knee = series[4]; // $10
    let high_budget = *series.last().unwrap();
    println!();
    println!(
        "Shape check: $2 -> {low_budget:.0} s, $10 -> {knee:.0} s, $40 -> {high_budget:.0} s \
         (paper: delay falls then stabilizes above ~$6-8)"
    );
    assert!(
        low_budget > knee,
        "shape violation: delay must fall as the budget grows"
    );
    assert!(
        high_budget <= knee * 1.05,
        "shape violation: delay must not rise again at high budgets"
    );
}
