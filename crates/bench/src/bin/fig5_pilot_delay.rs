//! Regenerates **Figure 5**: pilot-study crowd response time vs incentive
//! level, one series per temporal context (7 incentives × 4 contexts ×
//! 100 HITs).

#![forbid(unsafe_code)]

use crowdlearn_bench::{banner, Fixture};
use crowdlearn_crowd::{IncentiveLevel, PilotConfig, PilotStudy, Platform, PlatformConfig};
use crowdlearn_dataset::{SyntheticImage, TemporalContext};

fn main() {
    banner(
        "Figure 5: Crowd Response Time vs. Incentives on the simulated platform",
        "delay falls steeply with incentive in morning/afternoon; flat mid-range in evening/midnight",
    );

    let fixture = Fixture::paper_default();
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(0xf165));
    let images: Vec<&SyntheticImage> = fixture.dataset.train().iter().take(80).collect();
    let report = PilotStudy::new(PilotConfig::paper()).run(&mut platform, &images);

    print!("{:<10}", "context");
    for level in IncentiveLevel::ALL {
        print!("{:>9}", level.to_string());
    }
    println!("   (mean per-HIT delay, seconds)");
    for ctx in TemporalContext::ALL {
        print!("{:<10}", ctx.to_string());
        for level in IncentiveLevel::ALL {
            print!("{:>9.0}", report.cell(ctx, level).mean_delay_secs());
        }
        println!();
    }

    // Shape checks mirroring the paper's observations.
    let morning_1c = report
        .cell(TemporalContext::Morning, IncentiveLevel::C1)
        .mean_delay_secs();
    let morning_20c = report
        .cell(TemporalContext::Morning, IncentiveLevel::C20)
        .mean_delay_secs();
    let evening_mid: Vec<f64> = IncentiveLevel::ALL[1..6]
        .iter()
        .map(|&l| report.cell(TemporalContext::Evening, l).mean_delay_secs())
        .collect();
    let spread = (evening_mid.iter().copied().fold(0.0, f64::max)
        - evening_mid.iter().copied().fold(f64::INFINITY, f64::min))
        / evening_mid.iter().copied().fold(f64::INFINITY, f64::min);
    println!();
    println!(
        "Shape check: morning 1c/20c ratio {:.1}x (paper: steep decrease); \
         evening 2c-10c spread {:.0}% (paper: 'very similar response time')",
        morning_1c / morning_20c,
        100.0 * spread
    );
    assert!(
        morning_1c > 3.0 * morning_20c,
        "morning must be incentive-sensitive"
    );
    assert!(spread < 0.2, "evening mid-range must be flat");
}
