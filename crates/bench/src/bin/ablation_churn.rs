//! Extension experiment: label-aggregation schemes under worker churn.
//!
//! The paper dismisses worker filtering because it "may fail when the
//! workers are new to the platform and do not have sufficient labeling
//! history" (§IV-C). This experiment makes that concrete: as the per-query
//! churn rate rises, history-based filtering degrades toward plain voting,
//! while CQC — which models the *response*, not the *worker* — is
//! unaffected.

#![forbid(unsafe_code)]

use crowdlearn::QualityController;
use crowdlearn_bench::{banner, Fixture};
use crowdlearn_crowd::{IncentiveLevel, Platform, PlatformConfig, QueryResponse};
use crowdlearn_dataset::{DamageLabel, TemporalContext};
use crowdlearn_truth::{Aggregator, Annotation, MajorityVoting, OneCoinEm, WorkerFiltering};

fn main() {
    banner(
        "Extension: quality control under worker churn",
        "paper §IV-C: filtering fails on fresh workers; CQC models responses, not workers",
    );

    let fixture = Fixture::paper_default();
    println!(
        "{:<8} {:>9} {:>9} {:>11} {:>9} {:>13}",
        "churn", "Voting", "OneCoin", "Filtering", "CQC", "blacklisted"
    );

    let mut filtering_series = Vec::new();
    let mut cqc_series = Vec::new();
    for &churn in &[0.0, 0.2, 0.5, 1.0] {
        let mut platform = Platform::new(
            PlatformConfig::paper()
                .with_seed(0xc4u64)
                .with_churn_rate(churn),
        );

        // Train CQC on training-split responses under the same churn.
        let mut cqc = QualityController::paper();
        let train: Vec<(QueryResponse, DamageLabel)> = (0..1120)
            .map(|i| {
                let img = &fixture.dataset.train()[i % fixture.dataset.train().len()];
                let ctx = TemporalContext::from_index(i % TemporalContext::COUNT);
                (platform.submit(img, IncentiveLevel::C6, ctx), img.truth())
            })
            .collect();
        cqc.train(&train);

        // History pass for filtering, then a scored evaluation pass.
        let gather = |platform: &mut Platform| -> Vec<(usize, QueryResponse)> {
            fixture
                .dataset
                .test()
                .iter()
                .take(200)
                .enumerate()
                .map(|(i, img)| {
                    let ctx = TemporalContext::from_index(i % TemporalContext::COUNT);
                    (i, platform.submit(img, IncentiveLevel::C6, ctx))
                })
                .collect()
        };
        let history_pass = gather(&mut platform);
        let eval_pass = gather(&mut platform);
        let to_annotations = |responses: &[(usize, QueryResponse)]| -> Vec<Annotation> {
            responses
                .iter()
                .flat_map(|(item, resp)| {
                    resp.responses
                        .iter()
                        .map(move |r| Annotation::new(r.worker, *item, r.label.index()))
                        .collect::<Vec<_>>()
                })
                .collect()
        };

        let truths: Vec<usize> = fixture
            .dataset
            .test()
            .iter()
            .take(200)
            .map(|img| img.truth().index())
            .collect();
        let score = |estimates: &[crowdlearn_truth::LabelEstimate]| {
            estimates
                .iter()
                .zip(&truths)
                .filter(|(e, &t)| e.label() == t)
                .count() as f64
                / truths.len() as f64
        };

        let eval_annotations = to_annotations(&eval_pass);
        let voting = score(&MajorityVoting.aggregate(&eval_annotations, 200, 3));
        let one_coin = score(&OneCoinEm::default().aggregate(&eval_annotations, 200, 3));

        let mut filtering = WorkerFiltering::paper_default();
        let _ = filtering.aggregate(&to_annotations(&history_pass), 200, 3);
        let blacklisted = filtering.blacklisted_count();
        let filtering_acc = score(&filtering.aggregate(&eval_annotations, 200, 3));

        let cqc_acc = eval_pass
            .iter()
            .zip(&truths)
            .filter(|((_, resp), &t)| cqc.truthful_label(resp).index() == t)
            .count() as f64
            / truths.len() as f64;

        println!(
            "{:<8} {:>9.3} {:>9.3} {:>11.3} {:>9.3} {:>13}",
            format!("{churn:.1}"),
            voting,
            one_coin,
            filtering_acc,
            cqc_acc,
            blacklisted
        );
        filtering_series.push((filtering_acc, blacklisted));
        cqc_series.push(cqc_acc);
    }

    println!();
    let stable_blacklist = filtering_series[0].1;
    let churned_blacklist = filtering_series.last().unwrap().1;
    println!(
        "Shape check: filtering's blacklist shrinks under churn ({stable_blacklist} -> \
         {churned_blacklist} workers); CQC accuracy is churn-insensitive"
    );
    assert!(
        churned_blacklist <= stable_blacklist,
        "churn must erode the blacklist"
    );
    // CQC models responses rather than worker identities, so full churn must
    // not cost it more than per-run sampling noise (200-item batches move a
    // few points between draws regardless of churn).
    assert!(
        cqc_series.last().unwrap() >= &(cqc_series[0] - 0.05),
        "CQC must be churn-insensitive: {cqc_series:?}"
    );
}
