//! Multi-seed calibration sweep: reports mean ± std of every Table II
//! metric across dataset/scheme seeds, so simulator constants can be tuned
//! against means instead of single-run noise.

#![forbid(unsafe_code)]

use crowdlearn_bench::Fixture;
use crowdlearn_metrics::SummaryStats;

fn main() {
    let seeds: Vec<u64> = (0..4).collect();
    let names = crowdlearn_bench::paper_reference::SCHEMES;
    let mut acc: Vec<SummaryStats> = (0..7).map(|_| SummaryStats::new()).collect();
    for &s in &seeds {
        let fixture = if s == 0 {
            Fixture::paper_default()
        } else {
            Fixture::paper(s)
        };
        let reports = fixture.run_all_schemes();
        for (stats, r) in acc.iter_mut().zip(&reports) {
            stats.push(r.accuracy());
        }
    }
    println!("{:<12} {:>8} {:>8}", "scheme", "mean", "std");
    for (name, stats) in names.iter().zip(&acc) {
        println!(
            "{:<12} {:>8.3} {:>8.3}",
            name,
            stats.mean(),
            stats.std_dev()
        );
    }
}
