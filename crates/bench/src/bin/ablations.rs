//! Design-choice ablations (DESIGN.md §7): quantify what each CrowdLearn
//! mechanism contributes by switching it off.
//!
//! * **ε = 0** (pure entropy ranking) — misses confidently-wrong deceptive
//!   images (paper §IV-A's motivation for ε-greedy).
//! * **No offloading** — crowd labels only retrain/reweight; the innate AI
//!   failures stay in the output.
//! * **No Hedge weight updates** — committee weights stay uniform.
//! * **No retraining** — models never see crowd labels.
//! * **ε-greedy incentive policy** instead of UCB-ALP.
//! * **Context-blind bandit** — one policy for all temporal contexts.
//! * **Labels-only CQC** — the questionnaire features are dropped, leaving
//!   the boosting model only the vote histogram (CQC degrades toward
//!   majority voting, §IV-C).

#![forbid(unsafe_code)]

use crowdlearn::{
    CalibratorConfig, CrowdLearnConfig, CrowdLearnSystem, IncentivePolicyKind, QueryFeatures,
};
use crowdlearn_bench::{banner, Fixture};
use crowdlearn_crowd::{IncentiveLevel, Platform, PlatformConfig, QueryResponse};
use crowdlearn_dataset::{DamageLabel, TemporalContext};
use crowdlearn_gbdt::{GbdtClassifier, GbdtConfig};

fn main() {
    banner(
        "Ablations: what each CrowdLearn mechanism buys",
        "DESIGN.md §7 — not a paper table; quantifies the design choices the paper argues for",
    );

    let fixture = Fixture::paper_default();
    let run = |config: CrowdLearnConfig| {
        let mut system = CrowdLearnSystem::new(&fixture.dataset, config);
        system.run(&fixture.dataset, &fixture.stream)
    };

    let full = run(CrowdLearnConfig::paper());
    println!(
        "{:<34} {:>9} {:>9} {:>12}",
        "variant", "accuracy", "F1", "crowd delay"
    );
    let fmt = |name: &str, r: &crowdlearn::SchemeReport| {
        println!(
            "{:<34} {:>9.3} {:>9.3} {:>12}",
            name,
            r.accuracy(),
            r.macro_f1(),
            r.mean_crowd_delay_secs()
                .map(|d| format!("{d:.0} s"))
                .unwrap_or_else(|| "n/a".into())
        );
    };
    fmt("full CrowdLearn", &full);

    let no_epsilon = run(CrowdLearnConfig::paper().with_epsilon(0.0));
    fmt("epsilon = 0 (pure entropy QSS)", &no_epsilon);

    let no_offload = run(
        CrowdLearnConfig::paper().with_calibration(CalibratorConfig {
            offload: false,
            ..CalibratorConfig::paper()
        }),
    );
    fmt("no crowd offloading", &no_offload);

    let no_hedge = run(
        CrowdLearnConfig::paper().with_calibration(CalibratorConfig {
            update_weights: false,
            ..CalibratorConfig::paper()
        }),
    );
    fmt("no Hedge weight updates", &no_hedge);

    let no_retrain = run(
        CrowdLearnConfig::paper().with_calibration(CalibratorConfig {
            retrain: false,
            ..CalibratorConfig::paper()
        }),
    );
    fmt("no model retraining", &no_retrain);

    let eps_policy = run(CrowdLearnConfig::paper().with_policy(IncentivePolicyKind::EpsilonGreedy));
    fmt("epsilon-greedy incentive policy", &eps_policy);

    println!();
    println!("CQC feature ablation (labels-only vs labels+questionnaire):");
    cqc_feature_ablation(&fixture);

    println!();
    println!("Shape checks:");
    println!(
        "  offloading is the dominant accuracy mechanism: full {:.3} vs no-offload {:.3}",
        full.accuracy(),
        no_offload.accuracy()
    );
    assert!(
        full.accuracy() > no_offload.accuracy() + 0.01,
        "offloading must carry a large share of the gain"
    );
}

/// Trains two boosting models on the same responses — one on the full CQC
/// features, one on the vote histogram alone — and compares accuracy.
fn cqc_feature_ablation(fixture: &Fixture) {
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(0xab1a));
    let gather = |platform: &mut Platform, images: &[crowdlearn_dataset::SyntheticImage]| {
        images
            .iter()
            .enumerate()
            .map(|(i, img)| {
                let ctx = TemporalContext::from_index(i % TemporalContext::COUNT);
                (platform.submit(img, IncentiveLevel::C6, ctx), img.truth())
            })
            .collect::<Vec<(QueryResponse, DamageLabel)>>()
    };
    let train = gather(&mut platform, fixture.dataset.train());
    let test = gather(&mut platform, fixture.dataset.test());

    let full_rows: Vec<Vec<f64>> = train
        .iter()
        .map(|(r, _)| QueryFeatures::extract(r))
        .collect();
    let labels: Vec<usize> = train.iter().map(|(_, l)| l.index()).collect();
    // Labels-only: keep the vote fractions + entropy + top share, drop the
    // five questionnaire means.
    let strip = |f: &[f64]| {
        let mut v = f[..DamageLabel::COUNT].to_vec();
        v.extend_from_slice(&f[f.len() - 3..]);
        v
    };
    let stripped_rows: Vec<Vec<f64>> = full_rows.iter().map(|f| strip(f)).collect();

    let config = GbdtConfig {
        rounds: 150,
        max_depth: 5,
        learning_rate: 0.12,
        ..GbdtConfig::small()
    };
    let full_model = GbdtClassifier::fit(&full_rows, &labels, DamageLabel::COUNT, &config);
    let stripped_model = GbdtClassifier::fit(&stripped_rows, &labels, DamageLabel::COUNT, &config);

    let mut full_ok = 0usize;
    let mut stripped_ok = 0usize;
    for (resp, truth) in &test {
        let f = QueryFeatures::extract(resp);
        full_ok += usize::from(full_model.predict(&f) == truth.index());
        stripped_ok += usize::from(stripped_model.predict(&strip(&f)) == truth.index());
    }
    let n = test.len() as f64;
    let acc_full = full_ok as f64 / n;
    let acc_stripped = stripped_ok as f64 / n;
    println!("  labels + questionnaire: {acc_full:.3}");
    println!("  labels only:            {acc_stripped:.3}");
    assert!(
        acc_full > acc_stripped + 0.02,
        "the questionnaire evidence must carry real signal"
    );
}
