//! Extension experiment: regret comparison of every incentive policy.
//!
//! The paper only compares CCMB against fixed and random incentives
//! (Figure 8). This experiment adds ε-greedy, Thompson sampling and EXP3,
//! and scores everything by *pseudo-regret* against the oracle that knows
//! each cell's true expected payoff — separating "learned the surface" from
//! "got lucky with the budget".

#![forbid(unsafe_code)]

use crowdlearn_bandit::{
    BanditConfig, CostedBandit, EpsilonGreedy, Exp3, FixedPolicy, RandomPolicy, RegretTracker,
    ThompsonSampling, UcbAlp,
};
use crowdlearn_bench::{banner, Fixture};
use crowdlearn_crowd::{IncentiveLevel, Platform, PlatformConfig};
use crowdlearn_dataset::{SyntheticImage, TemporalContext};

const BUDGET: f64 = 1000.0;
const ROUNDS: u64 = 200;
const PAYOFF_CEILING: f64 = 1800.0;

fn payoff(delay: f64) -> f64 {
    (1.0 - delay / PAYOFF_CEILING).clamp(0.0, 1.0)
}

fn main() {
    banner(
        "Extension: incentive-policy regret comparison",
        "Figure 8 compares CCMB/fixed/random; this adds the other learners and an oracle",
    );

    let fixture = Fixture::paper_default();
    let images: Vec<&SyntheticImage> = fixture.dataset.train().iter().take(60).collect();

    // Estimate the true expected payoff of every (context, incentive) cell
    // from a large sample — the oracle the regret is measured against.
    let mut probe = Platform::new(PlatformConfig::paper().with_seed(0xacade));
    let mut expected = vec![vec![0.0f64; IncentiveLevel::COUNT]; TemporalContext::COUNT];
    for (z, &ctx) in TemporalContext::ALL.iter().enumerate() {
        for (a, &level) in IncentiveLevel::ALL.iter().enumerate() {
            let mut sum = 0.0;
            const PROBES: usize = 150;
            for i in 0..PROBES {
                let r = probe.submit(images[i % images.len()], level, ctx);
                sum += payoff(r.completion_delay_secs);
            }
            expected[z][a] = sum / PROBES as f64;
        }
    }

    let config = || {
        BanditConfig::new(
            TemporalContext::COUNT,
            IncentiveLevel::costs(),
            BUDGET,
            ROUNDS,
        )
        .with_context_distribution(vec![0.25; TemporalContext::COUNT])
    };
    let policies: Vec<Box<dyn CostedBandit>> = vec![
        Box::new(UcbAlp::new(config(), 21)),
        Box::new(ThompsonSampling::new(config(), 22)),
        Box::new(Exp3::new(config(), 0.1, 23)),
        Box::new(EpsilonGreedy::new(config(), 0.1, 24)),
        Box::new(FixedPolicy::max_affordable(config())),
        Box::new(RandomPolicy::new(config(), 25)),
    ];

    println!(
        "{:<16} {:>14} {:>14} {:>12}",
        "policy", "total regret", "mean delay", "spent"
    );
    let mut results = Vec::new();
    for mut policy in policies {
        let mut platform = Platform::new(PlatformConfig::paper().with_seed(0xbea7));
        // Pilot-style warm-up observations (free, as in the system).
        for pass in 0..8usize {
            for ctx in TemporalContext::ALL {
                for level in IncentiveLevel::ALL {
                    let img = images[(pass + level.index()) % images.len()];
                    let r = platform.submit(img, level, ctx);
                    policy.observe(ctx.index(), level.index(), payoff(r.completion_delay_secs));
                }
            }
        }

        let mut tracker = RegretTracker::new(expected.clone());
        let mut delay_sum = 0.0;
        let mut answered = 0u64;
        let mut spent = 0.0;
        for round in 0..ROUNDS {
            let ctx = TemporalContext::from_index((round % 4) as usize);
            let Some(a) = policy.select(ctx.index()) else {
                continue;
            };
            tracker.record(ctx.index(), a);
            let level = IncentiveLevel::from_index(a);
            let r = platform.submit(images[round as usize % images.len()], level, ctx);
            policy.observe(ctx.index(), a, payoff(r.completion_delay_secs));
            delay_sum += r.completion_delay_secs;
            answered += 1;
            spent += f64::from(level.cents());
        }
        let mean_delay = delay_sum / answered.max(1) as f64;
        println!(
            "{:<16} {:>14.2} {:>12.0} s {:>10.0} c",
            policy.name(),
            tracker.cumulative_regret(),
            mean_delay,
            spent
        );
        results.push((
            policy.name().to_owned(),
            tracker.cumulative_regret(),
            mean_delay,
        ));
    }

    println!();
    println!(
        "(Note: the oracle ignores the budget, so even a perfect constrained policy \
         carries irreducible 'regret' from playing affordable arms. The comparison is \
         relative.)"
    );
    let ucb = results
        .iter()
        .find(|(n, _, _)| n == "UCB-ALP")
        .expect("present");
    let fixed = results
        .iter()
        .find(|(n, _, _)| n == "fixed")
        .expect("present");
    let random = results
        .iter()
        .find(|(n, _, _)| n == "random")
        .expect("present");
    println!(
        "Shape check: UCB-ALP delay {:.0} s beats fixed {:.0} s and random {:.0} s",
        ucb.2, fixed.2, random.2
    );
    assert!(ucb.2 < fixed.2 && ucb.2 < random.2);
}
