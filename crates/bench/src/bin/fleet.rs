//! Fleet orchestrator bench: cross-stream contention versus shard count,
//! and a window × budget-split sweep over a 3-disaster fleet.
//!
//! The contention claim this bench gates: with the pool capacity fixed,
//! adding concurrent disaster streams must raise the queue wait every
//! posted HIT suffers — monotonically in the shard count, and exactly zero
//! for a lone shard. Every shard runs the *same* seed, so the base delay
//! draws are symmetric across fleet sizes and the per-query crowd delay
//! isolates the contention term. Results land in `BENCH_fleet.json` for CI
//! trend tracking.

#![forbid(unsafe_code)]

use crowdlearn::CrowdLearnConfig;
use crowdlearn_bench::banner;
use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream};
use crowdlearn_runtime::{
    ArbitrationPolicy, FleetConfig, FleetOrchestrator, FleetReport, ParallelSweep, RuntimeConfig,
    ShardSpec,
};
use std::time::Instant;

/// Cycles per shard stream — short enough that a 6-shard fleet boots and
/// drains in seconds, long enough that every context recurs.
const CYCLES: usize = 8;
const IMAGES_PER_CYCLE: usize = 5;
const SEED: u64 = 7;

/// Builds and runs an `n`-shard fleet of identically seeded disasters. The
/// fleet budget scales with `n` so every shard keeps the paper quota and
/// budget exhaustion never masks the contention signal.
// The bench crate is the detlint D2 exemption: timing harnesses read the
// wall clock by design. clippy.toml mirrors D2 workspace-wide, so the
// exemption is restated here.
#[allow(clippy::disallowed_methods)]
fn contended_run(n: usize, arbitration: ArbitrationPolicy, window: usize) -> (FleetReport, f64) {
    let datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::generate(&DatasetConfig::paper().with_seed(SEED)))
        .collect();
    let streams: Vec<SensingCycleStream> = datasets
        .iter()
        .map(|d| SensingCycleStream::new(d, CYCLES, IMAGES_PER_CYCLE))
        .collect();
    let specs: Vec<ShardSpec> = (0..n)
        .map(|_| {
            ShardSpec::new(
                CrowdLearnConfig::paper(),
                RuntimeConfig::paper().with_inflight_window(window),
            )
        })
        .collect();
    let config = FleetConfig::new(CrowdLearnConfig::paper().budget_cents * n as f64)
        .with_arbitration(arbitration);
    let mut fleet = FleetOrchestrator::new(specs, config, &datasets);
    fleet.attach_metrics_taps();
    let started = Instant::now();
    let report = fleet.run(&datasets, &streams);
    (report, started.elapsed().as_secs_f64())
}

fn main() {
    banner(
        "Fleet orchestrator: contention vs shard count, window x budget-split sweep",
        "identical seeds per shard; the pool capacity stays fixed while shards multiply",
    );

    // --- Section 1: shard-count scaling at a fixed pool ------------------
    println!(
        "{:<8} {:>10} {:>12} {:>14} {:>12} {:>10} {:>9}",
        "shards", "posts", "mean wait(s)", "mean delay(s)", "makespan(s)", "peak busy", "wall(ms)"
    );
    let mut scaling = Vec::new();
    for n in [1usize, 2, 4, 6] {
        let (report, wall_secs) = contended_run(n, ArbitrationPolicy::FairShare, 4);
        let mean_delay = report
            .rollup_crowd_delay
            .as_ref()
            .expect("taps attached fleet-wide")
            .mean();
        println!(
            "{:<8} {:>10} {:>12.1} {:>14.1} {:>12.0} {:>10} {:>9.1}",
            n,
            report.contention.posts,
            report.contention.mean_wait_secs(),
            mean_delay,
            report.makespan_secs,
            report.contention.peak_busy_workers,
            wall_secs * 1e3
        );
        scaling.push((n, report, mean_delay, wall_secs));
    }

    // --- Section 2: window x budget-split sweep on a 3-shard fleet -------
    let points: Vec<(usize, &str)> =
        vec![(2, "fair"), (2, "priority"), (4, "fair"), (4, "priority")];
    let sweep = ParallelSweep::new(2).run(&points, |_, &(window, split)| {
        let arbitration = match split {
            "fair" => ArbitrationPolicy::FairShare,
            _ => ArbitrationPolicy::Priority(vec![3.0, 2.0, 1.0]),
        };
        let (report, wall_secs) = contended_run(3, arbitration, window);
        (window, split, report, wall_secs)
    });
    println!("\n3-shard sweep: in-flight window x budget arbitration");
    println!(
        "{:<8} {:<9} {:>12} {:>14} {:>22}",
        "window", "split", "makespan(s)", "mean wait(s)", "spend by shard (cents)"
    );
    for (window, split, report, _) in &sweep {
        let spends: Vec<u64> = (0..report.ledger.shards())
            .map(|i| report.ledger.spent_cents(i))
            .collect();
        println!(
            "{:<8} {:<9} {:>12.0} {:>14.1} {:>22}",
            window,
            split,
            report.makespan_secs,
            report.contention.mean_wait_secs(),
            format!("{spends:?}"),
        );
    }

    // --- Machine-readable summary ----------------------------------------
    let mut json = String::from("{\n  \"bench\": \"fleet\",\n  \"scaling\": [\n");
    for (i, (n, report, mean_delay, wall_secs)) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {n}, \"posts\": {}, \"mean_wait_secs\": {:.3}, \
             \"mean_crowd_delay_secs\": {:.3}, \"makespan_secs\": {:.3}, \
             \"peak_busy_workers\": {}, \"wall_ms\": {:.3}}}{}\n",
            report.contention.posts,
            report.contention.mean_wait_secs(),
            mean_delay,
            report.makespan_secs,
            report.contention.peak_busy_workers,
            wall_secs * 1e3,
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"sweep\": [\n");
    for (i, (window, split, report, wall_secs)) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"window\": {window}, \"split\": \"{split}\", \"makespan_secs\": {:.3}, \
             \"mean_wait_secs\": {:.3}, \"total_spent_cents\": {}, \"wall_ms\": {:.3}}}{}\n",
            report.makespan_secs,
            report.contention.mean_wait_secs(),
            report.ledger.total_spent_cents(),
            wall_secs * 1e3,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("\nwrote BENCH_fleet.json");

    // --- Shape checks (the hard gates; wall clock is recorded, never
    // asserted) -----------------------------------------------------------
    let lone = &scaling[0];
    assert_eq!(lone.0, 1);
    assert_eq!(
        lone.1.contention.mean_wait_secs(),
        0.0,
        "a lone shard must suffer zero cross-stream queue wait"
    );
    for pair in scaling.windows(2) {
        let (n_lo, lo, delay_lo, _) = &pair[0];
        let (n_hi, hi, delay_hi, _) = &pair[1];
        assert!(
            hi.contention.mean_wait_secs() > lo.contention.mean_wait_secs(),
            "mean queue wait must grow with shard count: {n_lo} shards {:.1} s vs {n_hi} shards {:.1} s",
            lo.contention.mean_wait_secs(),
            hi.contention.mean_wait_secs()
        );
        assert!(
            delay_hi > delay_lo,
            "per-query crowd delay must grow with shard count: {n_lo} shards {delay_lo:.1} s \
             vs {n_hi} shards {delay_hi:.1} s"
        );
    }
    println!(
        "Shape check: zero wait alone, queue wait and per-query delay grow \
         monotonically with shard count ✓"
    );
}
