//! Regenerates **Table II**: classification Accuracy / Precision / Recall /
//! F1 for all seven schemes over the 40-cycle evaluation stream.

#![forbid(unsafe_code)]

use crowdlearn_bench::{banner, paper_reference, Fixture};
use crowdlearn_metrics::mcnemar_test;

fn main() {
    banner(
        "Table II: Classification Accuracy for All Schemes",
        "CrowdLearn 0.877 acc / 0.894 F1; +5.3% F1 over best baseline (Hybrid-AL)",
    );

    let fixture = Fixture::paper_default();
    let reports = fixture.run_all_schemes();

    println!(
        "{:<12} {:>22} {:>22} {:>22} {:>22}",
        "Scheme", "Accuracy", "Precision", "Recall", "F1"
    );
    for (report, (name, (acc, prec, rec, f1))) in reports.iter().zip(
        paper_reference::SCHEMES
            .iter()
            .zip(paper_reference::TABLE2.iter()),
    ) {
        println!(
            "{:<12} {:>22} {:>22} {:>22} {:>22}",
            name,
            format!("{:.3} (paper {:.3})", report.accuracy(), acc),
            format!(
                "{:.3} (paper {:.3})",
                report.confusion.macro_precision(),
                prec
            ),
            format!("{:.3} (paper {:.3})", report.confusion.macro_recall(), rec),
            format!("{:.3} (paper {:.3})", report.macro_f1(), f1),
        );
    }

    // Paired significance of CrowdLearn's lead over every baseline
    // (McNemar over the shared 400-image stream).
    println!();
    println!("McNemar vs CrowdLearn (same 400 test images):");
    let crowdlearn_correct = reports[0].correctness();
    for (report, name) in reports[1..].iter().zip(&paper_reference::SCHEMES[1..]) {
        let out = mcnemar_test(&crowdlearn_correct, &report.correctness());
        println!(
            "  vs {:<12} CrowdLearn-only wins {:>3}, {}-only wins {:>3}, p = {:.4} {}",
            name,
            out.a_only,
            name,
            out.b_only,
            out.p_value,
            if out.significant(0.05) {
                "(significant)"
            } else {
                ""
            }
        );
    }

    let crowdlearn_f1 = reports[0].macro_f1();
    let best_baseline_f1 = reports[1..]
        .iter()
        .map(|r| r.macro_f1())
        .fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!(
        "Shape check: CrowdLearn F1 {:.3} vs best baseline F1 {:.3} ({:+.1}%; paper reports +5.3%)",
        crowdlearn_f1,
        best_baseline_f1,
        100.0 * (crowdlearn_f1 - best_baseline_f1) / best_baseline_f1
    );
    assert!(
        crowdlearn_f1 > best_baseline_f1,
        "shape violation: CrowdLearn must lead Table II"
    );
}
