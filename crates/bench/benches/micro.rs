//! Criterion micro-benchmarks for the hot paths of every substrate:
//! committee voting + entropy, GBDT training/inference, Dawid-Skene EM,
//! UCB-ALP steps, platform query simulation, and one full sensing cycle.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use crowdlearn::{Committee, CrowdLearnConfig, CrowdLearnSystem, QualityController};
use crowdlearn_bandit::{BanditConfig, CostedBandit, UcbAlp};
use crowdlearn_classifiers::{profiles, Classifier};
use crowdlearn_crowd::{IncentiveLevel, Platform, PlatformConfig};
use crowdlearn_dataset::{
    Dataset, DatasetConfig, LabeledImage, SensingCycleStream, TemporalContext,
};
use crowdlearn_gbdt::{GbdtClassifier, GbdtConfig};
use crowdlearn_truth::{Aggregator, Annotation, DawidSkeneEm, WorkerId};
use std::hint::black_box;

fn dataset() -> Dataset {
    Dataset::generate(&DatasetConfig::paper())
}

fn trained_committee(ds: &Dataset) -> Committee {
    let train: Vec<_> = ds
        .train()
        .iter()
        .cloned()
        .map(LabeledImage::ground_truth)
        .collect();
    let members: Vec<Box<dyn Classifier>> = profiles::paper_committee(0)
        .into_iter()
        .map(|mut e| {
            e.retrain(&train);
            Box::new(e) as Box<dyn Classifier>
        })
        .collect();
    Committee::new(members, 0.1)
}

fn bench_committee(c: &mut Criterion) {
    let ds = dataset();
    let committee = trained_committee(&ds);
    let image = &ds.test()[0];
    c.bench_function("committee_vote_and_entropy", |b| {
        b.iter(|| {
            let vote = committee.committee_vote(black_box(image));
            black_box(vote.entropy())
        })
    });
}

fn bench_dataset_generation(c: &mut Criterion) {
    c.bench_function("dataset_generate_960", |b| {
        b.iter(|| black_box(Dataset::generate(&DatasetConfig::paper().with_seed(1))))
    });
}

fn bench_gbdt(c: &mut Criterion) {
    // CQC-shaped training problem: 400 rows x 11 features, 3 classes.
    let rows: Vec<Vec<f64>> = (0..400)
        .map(|i| {
            (0..11)
                .map(|j| ((i * 31 + j * 7) % 100) as f64 / 100.0)
                .collect()
        })
        .collect();
    let labels: Vec<usize> = (0..400).map(|i| i % 3).collect();
    let config = GbdtConfig::small();
    c.bench_function("gbdt_fit_400x11", |b| {
        b.iter(|| black_box(GbdtClassifier::fit(&rows, &labels, 3, &config)))
    });
    let model = GbdtClassifier::fit(&rows, &labels, 3, &config);
    c.bench_function("gbdt_predict", |b| {
        b.iter(|| black_box(model.predict_proba(&rows[7])))
    });
}

fn bench_dawid_skene(c: &mut Criterion) {
    let mut annotations = Vec::new();
    for item in 0..100usize {
        for w in 0..5u32 {
            annotations.push(Annotation::new(
                WorkerId(w * 13 % 40),
                item,
                (item + usize::from(w % 3 == 0)) % 3,
            ));
        }
    }
    c.bench_function("dawid_skene_em_100x5", |b| {
        b.iter_batched(
            DawidSkeneEm::default,
            |mut em| black_box(em.aggregate(&annotations, 100, 3)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_bandit(c: &mut Criterion) {
    c.bench_function("ucb_alp_select_observe", |b| {
        b.iter_batched(
            || {
                let config = BanditConfig::new(4, IncentiveLevel::costs(), 1000.0, 200)
                    .with_context_distribution(vec![0.25; 4]);
                let mut bandit = UcbAlp::new(config, 3);
                for z in 0..4 {
                    for a in 0..IncentiveLevel::COUNT {
                        bandit.observe(z, a, 0.5);
                    }
                }
                bandit
            },
            |mut bandit| {
                for r in 0..50u64 {
                    if let Some(a) = bandit.select((r % 4) as usize) {
                        bandit.observe((r % 4) as usize, a, 0.6);
                    }
                }
                black_box(bandit.remaining_budget())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_platform(c: &mut Criterion) {
    let ds = dataset();
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(2));
    let image = ds.test()[0].clone();
    c.bench_function("platform_submit_query", |b| {
        b.iter(|| {
            black_box(platform.submit(
                black_box(&image),
                IncentiveLevel::C6,
                TemporalContext::Evening,
            ))
        })
    });
}

fn bench_cqc(c: &mut Criterion) {
    let ds = dataset();
    let mut platform = Platform::new(PlatformConfig::paper().with_seed(3));
    let examples: Vec<_> = ds
        .train()
        .iter()
        .take(200)
        .enumerate()
        .map(|(i, img)| {
            let ctx = TemporalContext::from_index(i % 4);
            (platform.submit(img, IncentiveLevel::C6, ctx), img.truth())
        })
        .collect();
    let mut cqc = QualityController::paper();
    cqc.train(&examples);
    let response = platform.submit(&ds.test()[0], IncentiveLevel::C6, TemporalContext::Morning);
    c.bench_function("cqc_infer", |b| {
        b.iter(|| black_box(cqc.infer(black_box(&response))))
    });
}

fn bench_full_cycle(c: &mut Criterion) {
    let ds = dataset();
    let stream = SensingCycleStream::paper(&ds);
    c.bench_function("crowdlearn_full_cycle", |b| {
        b.iter_batched(
            || CrowdLearnSystem::new(&ds, CrowdLearnConfig::paper()),
            |mut system| black_box(system.run_cycle(&stream.cycles()[0], &ds)),
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_committee, bench_dataset_generation, bench_gbdt, bench_dawid_skene,
              bench_bandit, bench_platform, bench_cqc, bench_full_cycle
}
criterion_main!(benches);
