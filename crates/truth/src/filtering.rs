//! Worker-history filtering — the `Filtering` baseline of Table I
//! (blacklists workers with a record of poor labeling quality, after Laws
//! et al. 2011).

use crate::{
    validate_annotations, Aggregator, Annotation, LabelEstimate, MajorityVoting, WorkerId,
};
use std::collections::BTreeMap;

/// Majority voting over non-blacklisted workers, with worker quality learned
/// from agreement history across successive `aggregate` calls.
///
/// After each aggregation the scheme scores every contributing worker against
/// the aggregated labels; workers whose running agreement rate drops below
/// `threshold` after at least `min_history` annotations are excluded from
/// future rounds. As the paper notes, the approach is blind to *new* workers
/// — they are always admitted until history accumulates — which is exactly
/// the weakness the Table I comparison shows.
#[derive(Debug, Clone)]
pub struct WorkerFiltering {
    threshold: f64,
    min_history: usize,
    /// Worker → (agreements, total).
    history: BTreeMap<WorkerId, (usize, usize)>,
}

impl WorkerFiltering {
    /// Creates a filter: workers below `threshold` agreement after
    /// `min_history` annotations are blacklisted.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]` or `min_history == 0`.
    pub fn new(threshold: f64, min_history: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        assert!(min_history > 0, "min_history must be positive");
        Self {
            threshold,
            min_history,
            history: BTreeMap::new(),
        }
    }

    /// The paper-calibrated default: 60% agreement over at least 10 labels.
    pub fn paper_default() -> Self {
        Self::new(0.6, 10)
    }

    /// Whether a worker is currently blacklisted.
    pub fn is_blacklisted(&self, worker: WorkerId) -> bool {
        match self.history.get(&worker) {
            Some(&(agree, total)) if total >= self.min_history => {
                (agree as f64 / total as f64) < self.threshold
            }
            _ => false,
        }
    }

    /// Number of workers currently blacklisted.
    pub fn blacklisted_count(&self) -> usize {
        self.history
            .keys()
            .filter(|&&w| self.is_blacklisted(w))
            .count()
    }
}

impl Default for WorkerFiltering {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl Aggregator for WorkerFiltering {
    fn name(&self) -> &str {
        "Filtering"
    }

    fn aggregate(
        &mut self,
        annotations: &[Annotation],
        items: usize,
        classes: usize,
    ) -> Vec<LabelEstimate> {
        validate_annotations(annotations, items, classes);

        // Drop blacklisted workers, falling back to the full set if the
        // filter would silence an item entirely.
        let kept: Vec<Annotation> = annotations
            .iter()
            .copied()
            .filter(|a| !self.is_blacklisted(a.worker))
            .collect();
        let mut covered = vec![false; items];
        for a in &kept {
            covered[a.item] = true;
        }
        let mut has_votes = vec![false; items];
        for a in annotations {
            has_votes[a.item] = true;
        }
        let effective: Vec<Annotation> = if covered.iter().zip(&has_votes).all(|(&c, &h)| c || !h) {
            kept
        } else {
            annotations.to_vec()
        };

        let estimates = MajorityVoting.aggregate(&effective, items, classes);

        // Update worker history against the aggregated labels.
        for a in annotations {
            let agreed = estimates[a.item].label() == a.label;
            let entry = self.history.entry(a.worker).or_insert((0, 0));
            entry.0 += usize::from(agreed);
            entry.1 += 1;
        }

        estimates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(w: u32, item: usize, label: usize) -> Annotation {
        Annotation::new(WorkerId(w), item, label)
    }

    /// Rounds of 10 items where workers 0-2 are correct and worker 3 always
    /// reports class 1 regardless of truth (truth = item % 2 per round).
    fn round(offset_bias: usize) -> Vec<Annotation> {
        let mut anns = Vec::new();
        for item in 0..10 {
            let truth = (item + offset_bias) % 2;
            for w in 0..3 {
                anns.push(ann(w, item, truth));
            }
            anns.push(ann(3, item, 1));
        }
        anns
    }

    #[test]
    fn blacklists_persistently_bad_worker() {
        let mut filter = WorkerFiltering::new(0.6, 10);
        filter.aggregate(&round(0), 10, 2);
        assert!(
            filter.is_blacklisted(WorkerId(3)),
            "worker 3 agrees only 50% of the time"
        );
        assert!(!filter.is_blacklisted(WorkerId(0)));
    }

    #[test]
    fn new_workers_are_admitted_without_history() {
        let filter = WorkerFiltering::paper_default();
        assert!(!filter.is_blacklisted(WorkerId(99)));
    }

    #[test]
    fn filtered_rounds_ignore_blacklisted_votes() {
        let mut filter = WorkerFiltering::new(0.6, 10);
        filter.aggregate(&round(0), 10, 2);
        // New round where worker 3's vote would flip a 1-1 tie: items get one
        // good vote (truth) and worker 3's constant 1.
        let mut anns = Vec::new();
        for item in 0..10 {
            anns.push(ann(0, item, 0));
            anns.push(ann(3, item, 1));
        }
        let estimates = filter.aggregate(&anns, 10, 2);
        assert!(
            estimates.iter().all(|e| e.label() == 0),
            "blacklisted worker must not break ties"
        );
    }

    #[test]
    fn falls_back_to_all_votes_if_filter_silences_an_item() {
        let mut filter = WorkerFiltering::new(0.99, 1);
        // Worker 0 disagrees with consensus once -> blacklisted under the
        // brutal threshold.
        filter.aggregate(&[ann(0, 0, 1), ann(1, 0, 0), ann(2, 0, 0)], 1, 2);
        assert!(filter.is_blacklisted(WorkerId(0)));
        // Now worker 0 is the only voter; the fallback must keep the item
        // labeled rather than returning uniform.
        let estimates = filter.aggregate(&[ann(0, 0, 1)], 1, 2);
        assert_eq!(estimates[0].label(), 1);
    }

    #[test]
    fn blacklisted_count_tracks_state() {
        let mut filter = WorkerFiltering::new(0.6, 10);
        assert_eq!(filter.blacklisted_count(), 0);
        filter.aggregate(&round(0), 10, 2);
        assert_eq!(filter.blacklisted_count(), 1);
    }

    #[test]
    #[should_panic(expected = "threshold must be in [0, 1]")]
    fn rejects_bad_threshold() {
        WorkerFiltering::new(1.5, 1);
    }
}
