//! Majority voting — the `Voting` baseline of Table I.

use crate::{validate_annotations, Aggregator, Annotation, LabelEstimate};

/// Aggregates by plain vote counting: the estimate distribution is the
/// normalized per-class vote histogram (uniform when an item has no votes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MajorityVoting;

impl Aggregator for MajorityVoting {
    fn name(&self) -> &str {
        "Voting"
    }

    fn aggregate(
        &mut self,
        annotations: &[Annotation],
        items: usize,
        classes: usize,
    ) -> Vec<LabelEstimate> {
        validate_annotations(annotations, items, classes);
        let mut counts = vec![vec![0usize; classes]; items];
        for a in annotations {
            counts[a.item][a.label] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(item, votes)| {
                let total: usize = votes.iter().sum();
                let distribution = if total == 0 {
                    vec![1.0 / classes as f64; classes]
                } else {
                    votes.iter().map(|&v| v as f64 / total as f64).collect()
                };
                LabelEstimate { item, distribution }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkerId;

    fn ann(w: u32, item: usize, label: usize) -> Annotation {
        Annotation::new(WorkerId(w), item, label)
    }

    #[test]
    fn majority_wins() {
        let annotations = [ann(0, 0, 1), ann(1, 0, 1), ann(2, 0, 2)];
        let estimates = MajorityVoting.aggregate(&annotations, 1, 3);
        assert_eq!(estimates[0].label(), 1);
        assert!((estimates[0].confidence() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unannotated_items_are_uniform() {
        let estimates = MajorityVoting.aggregate(&[ann(0, 0, 0)], 2, 3);
        assert_eq!(estimates.len(), 2);
        for &p in &estimates[1].distribution {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ties_break_to_lower_class() {
        let annotations = [ann(0, 0, 2), ann(1, 0, 0)];
        let estimates = MajorityVoting.aggregate(&annotations, 1, 3);
        assert_eq!(estimates[0].label(), 0);
    }

    #[test]
    fn is_insensitive_to_worker_identity() {
        // The same worker voting twice counts twice — voting has no notion
        // of reliability, which is exactly its weakness.
        let annotations = [ann(0, 0, 1), ann(0, 0, 1), ann(1, 0, 0)];
        let estimates = MajorityVoting.aggregate(&annotations, 1, 2);
        assert_eq!(estimates[0].label(), 1);
    }

    #[test]
    fn empty_input_yields_all_uniform() {
        let estimates = MajorityVoting.aggregate(&[], 3, 2);
        assert_eq!(estimates.len(), 3);
        assert!(estimates
            .iter()
            .all(|e| (e.confidence() - 0.5).abs() < 1e-12));
    }
}
