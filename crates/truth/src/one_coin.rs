//! One-coin EM ("weighted voting"): a lighter truth-discovery model than
//! full Dawid-Skene, estimating a single accuracy parameter per worker.
//!
//! With only a handful of annotations per worker (the regime of a large
//! anonymous platform), the full `K x K` confusion matrix of Dawid-Skene is
//! badly under-determined; the one-coin model — worker `w` is correct with
//! probability `p_w` and errs uniformly otherwise — needs `K^2 - K` fewer
//! parameters per worker and degrades far more gracefully.

use crate::{validate_annotations, Aggregator, Annotation, LabelEstimate, WorkerId};
use std::collections::BTreeMap;

/// One-coin EM truth discovery.
///
/// # Example
///
/// ```
/// use crowdlearn_truth::{Aggregator, Annotation, OneCoinEm, WorkerId};
///
/// let mut annotations = Vec::new();
/// for item in 0..30 {
///     let truth = item % 3;
///     for w in 0..3 {
///         annotations.push(Annotation::new(WorkerId(w), item, truth));
///     }
///     annotations.push(Annotation::new(WorkerId(9), item, (truth + 1) % 3));
/// }
/// let estimates = OneCoinEm::default().aggregate(&annotations, 30, 3);
/// assert!(estimates.iter().enumerate().all(|(i, e)| e.label() == i % 3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OneCoinEm {
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the max posterior change.
    pub tolerance: f64,
    /// Beta-like smoothing on worker accuracy estimates.
    pub smoothing: f64,
}

impl Default for OneCoinEm {
    fn default() -> Self {
        Self {
            max_iterations: 20,
            tolerance: 1e-6,
            smoothing: 1.0,
        }
    }
}

impl OneCoinEm {
    /// Runs EM, returning per-item estimates and the learned per-worker
    /// accuracies.
    ///
    /// # Panics
    ///
    /// Same contract as [`Aggregator::aggregate`].
    pub fn fit(
        &self,
        annotations: &[Annotation],
        items: usize,
        classes: usize,
    ) -> (Vec<LabelEstimate>, BTreeMap<WorkerId, f64>) {
        validate_annotations(annotations, items, classes);
        let k = classes as f64;

        let mut worker_index: BTreeMap<WorkerId, usize> = BTreeMap::new();
        for a in annotations {
            let next = worker_index.len();
            worker_index.entry(a.worker).or_insert(next);
        }
        let n_workers = worker_index.len();

        let mut per_item: Vec<Vec<(usize, usize)>> = vec![Vec::new(); items];
        for a in annotations {
            per_item[a.item].push((worker_index[&a.worker], a.label));
        }

        // Initialize posteriors from vote histograms.
        let mut posteriors: Vec<Vec<f64>> = per_item
            .iter()
            .map(|anns| {
                let mut dist = vec![1.0; classes];
                for &(_, l) in anns {
                    dist[l] += 1.0;
                }
                normalize(dist)
            })
            .collect();

        let mut accuracies = vec![0.75f64; n_workers];
        for _ in 0..self.max_iterations {
            // M-step: worker accuracies from posterior agreement.
            let mut agree = vec![self.smoothing * 0.75; n_workers];
            let mut total = vec![self.smoothing; n_workers];
            for (item, anns) in per_item.iter().enumerate() {
                for &(w, l) in anns {
                    agree[w] += posteriors[item][l];
                    total[w] += 1.0;
                }
            }
            for w in 0..n_workers {
                accuracies[w] = (agree[w] / total[w]).clamp(1.0 / k + 1e-6, 1.0 - 1e-6);
            }

            // E-step: item posteriors under the one-coin likelihood.
            let mut max_change = 0.0f64;
            for (item, anns) in per_item.iter().enumerate() {
                if anns.is_empty() {
                    continue;
                }
                let mut log_post = vec![0.0f64; classes];
                for &(w, l) in anns {
                    let p = accuracies[w];
                    for (class, lp) in log_post.iter_mut().enumerate() {
                        *lp += if class == l {
                            p.ln()
                        } else {
                            ((1.0 - p) / (k - 1.0)).ln()
                        };
                    }
                }
                let new_post = softmax(&log_post);
                for (old, new) in posteriors[item].iter().zip(&new_post) {
                    max_change = max_change.max((old - new).abs());
                }
                posteriors[item] = new_post;
            }
            if max_change < self.tolerance {
                break;
            }
        }

        let estimates = posteriors
            .into_iter()
            .enumerate()
            .map(|(item, distribution)| LabelEstimate { item, distribution })
            .collect();
        let accuracy_map = worker_index
            .into_iter()
            .map(|(id, idx)| (id, accuracies[idx]))
            .collect();
        (estimates, accuracy_map)
    }
}

impl Aggregator for OneCoinEm {
    fn name(&self) -> &str {
        "OneCoin-EM"
    }

    fn aggregate(
        &mut self,
        annotations: &[Annotation],
        items: usize,
        classes: usize,
    ) -> Vec<LabelEstimate> {
        self.fit(annotations, items, classes).0
    }
}

fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in &mut v {
            *x /= sum;
        }
    } else {
        let n = v.len() as f64;
        v.fill(1.0 / n);
    }
    v
}

fn softmax(log_values: &[f64]) -> Vec<f64> {
    let max = log_values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = log_values.iter().map(|v| (v - max).exp()).collect();
    normalize(exps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MajorityVoting;

    fn accuracy(estimates: &[LabelEstimate], truths: &[usize]) -> f64 {
        estimates
            .iter()
            .zip(truths)
            .filter(|(e, &t)| e.label() == t)
            .count() as f64
            / truths.len() as f64
    }

    /// 2 reliable + 3 spammy workers with *independent* noise.
    fn sparse_noisy_instance(items: usize) -> (Vec<Annotation>, Vec<usize>) {
        let truths: Vec<usize> = (0..items).map(|i| i % 3).collect();
        let mut state = 0xfeed_beef_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut annotations = Vec::new();
        for (item, &truth) in truths.iter().enumerate() {
            for w in 0..2u32 {
                annotations.push(Annotation::new(WorkerId(w), item, truth));
            }
            for w in 2..5u32 {
                let label = if next() < 0.4 {
                    truth
                } else {
                    (truth + 1 + (next() < 0.5) as usize) % 3
                };
                annotations.push(Annotation::new(WorkerId(w), item, label));
            }
        }
        (annotations, truths)
    }

    #[test]
    fn learns_worker_accuracies() {
        let (annotations, _) = sparse_noisy_instance(120);
        let (_, accuracies) = OneCoinEm::default().fit(&annotations, 120, 3);
        assert!(accuracies[&WorkerId(0)] > 0.9);
        assert!(accuracies[&WorkerId(1)] > 0.9);
        for w in 2..5 {
            assert!(
                accuracies[&WorkerId(w)] < 0.7,
                "worker {w} accuracy {}",
                accuracies[&WorkerId(w)]
            );
        }
    }

    #[test]
    fn beats_majority_voting_with_noisy_workers() {
        let (annotations, truths) = sparse_noisy_instance(150);
        let mv = MajorityVoting.aggregate(&annotations, 150, 3);
        let oc = OneCoinEm::default().aggregate(&annotations, 150, 3);
        let acc_mv = accuracy(&mv, &truths);
        let acc_oc = accuracy(&oc, &truths);
        assert!(acc_oc > acc_mv, "one-coin {acc_oc} vs voting {acc_mv}");
        assert!(acc_oc > 0.95);
    }

    #[test]
    fn handles_empty_and_unannotated_items() {
        let estimates = OneCoinEm::default().aggregate(&[], 4, 3);
        assert_eq!(estimates.len(), 4);
        assert!(estimates.iter().all(|e| e.confidence() < 0.5));
    }

    #[test]
    fn accuracies_are_bounded_away_from_degeneracy() {
        let annotations = vec![Annotation::new(WorkerId(0), 0, 1)];
        let (_, accuracies) = OneCoinEm::default().fit(&annotations, 1, 3);
        let a = accuracies[&WorkerId(0)];
        assert!(a > 1.0 / 3.0 && a < 1.0);
    }
}
