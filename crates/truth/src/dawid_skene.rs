//! Dawid-Skene expectation-maximization — the `TD-EM` truth-discovery
//! baseline of Table I.
//!
//! The model: each item has a latent true class drawn from a prior; each
//! worker has a latent confusion matrix `pi_w[truth][reported]`. EM
//! alternates between (E) computing per-item class posteriors from the
//! current worker matrices and (M) re-estimating priors and confusion
//! matrices from the posteriors. This is the maximum-likelihood truth
//! discovery formulation the paper cites (Wang et al., IPSN 2012), applied
//! to categorical labels.

use crate::{validate_annotations, Aggregator, Annotation, LabelEstimate, WorkerId};
use std::collections::BTreeMap;

/// Configuration and state for Dawid-Skene EM truth discovery.
///
/// # Example
///
/// ```
/// use crowdlearn_truth::{Aggregator, Annotation, DawidSkeneEm, WorkerId};
///
/// // Worker 0 and 1 are reliable, worker 2 always says class 0.
/// let mut annotations = Vec::new();
/// for item in 0..20 {
///     let truth = item % 2;
///     annotations.push(Annotation::new(WorkerId(0), item, truth));
///     annotations.push(Annotation::new(WorkerId(1), item, truth));
///     annotations.push(Annotation::new(WorkerId(2), item, 0));
/// }
/// let estimates = DawidSkeneEm::default().aggregate(&annotations, 20, 2);
/// assert!(estimates.iter().enumerate().all(|(i, e)| e.label() == i % 2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DawidSkeneEm {
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the max posterior change.
    pub tolerance: f64,
    /// Dirichlet smoothing added to confusion-matrix counts.
    pub smoothing: f64,
}

impl Default for DawidSkeneEm {
    fn default() -> Self {
        Self {
            // A handful of EM rounds is enough to identify spammers and
            // reweight them; running EM to full convergence lets the model
            // drift to self-consistent *wrong* solutions when worker errors
            // are correlated per item (which violates the Dawid-Skene
            // independence assumption and is exactly what ambiguous disaster
            // imagery produces).
            max_iterations: 4,
            tolerance: 1e-6,
            // Strong enough that workers with only a handful of annotations
            // keep near-prior confusion estimates instead of being inverted
            // on noise; weak enough that consistent spammers are caught.
            smoothing: 0.5,
        }
    }
}

/// Diagnostics of a completed EM run: per-worker estimated confusion
/// matrices and the learned class prior.
#[derive(Debug, Clone, PartialEq)]
pub struct DawidSkeneFit {
    /// Worker id → `matrix[truth][reported]` row-stochastic confusion matrix.
    pub confusion: BTreeMap<WorkerId, Vec<Vec<f64>>>,
    /// Learned class prior.
    pub prior: Vec<f64>,
    /// EM iterations actually run.
    pub iterations: usize,
    /// The per-item posteriors.
    pub estimates: Vec<LabelEstimate>,
}

impl DawidSkeneEm {
    /// Runs EM and returns the full fit, including worker confusion matrices
    /// (useful for diagnostics and for the filtering comparison).
    ///
    /// # Panics
    ///
    /// Same contract as [`Aggregator::aggregate`].
    pub fn fit(&self, annotations: &[Annotation], items: usize, classes: usize) -> DawidSkeneFit {
        validate_annotations(annotations, items, classes);

        // Dense worker indexing.
        let mut worker_index: BTreeMap<WorkerId, usize> = BTreeMap::new();
        for a in annotations {
            let next = worker_index.len();
            worker_index.entry(a.worker).or_insert(next);
        }
        let n_workers = worker_index.len();

        // Group annotations per item as (worker_idx, label).
        let mut per_item: Vec<Vec<(usize, usize)>> = vec![Vec::new(); items];
        for a in annotations {
            per_item[a.item].push((worker_index[&a.worker], a.label));
        }

        // Initialize posteriors from majority voting.
        let mut posteriors: Vec<Vec<f64>> = per_item
            .iter()
            .map(|anns| {
                let mut dist = vec![self.smoothing; classes];
                for &(_, l) in anns {
                    dist[l] += 1.0;
                }
                normalize(dist)
            })
            .collect();

        let mut prior = vec![1.0 / classes as f64; classes];
        let mut confusion = vec![vec![vec![0.0; classes]; classes]; n_workers];
        let mut iterations = 0;

        for iter in 0..self.max_iterations {
            iterations = iter + 1;

            // M-step: class prior.
            let mut prior_counts = vec![self.smoothing; classes];
            for post in &posteriors {
                for (c, &p) in post.iter().enumerate() {
                    prior_counts[c] += p;
                }
            }
            prior = normalize(prior_counts);

            // M-step: worker confusion matrices.
            for m in confusion.iter_mut() {
                for row in m.iter_mut() {
                    row.fill(self.smoothing);
                }
            }
            for (item, anns) in per_item.iter().enumerate() {
                for &(w, l) in anns {
                    for truth in 0..classes {
                        confusion[w][truth][l] += posteriors[item][truth];
                    }
                }
            }
            for m in confusion.iter_mut() {
                for row in m.iter_mut() {
                    let normalized = normalize(std::mem::take(row));
                    *row = normalized;
                }
            }

            // E-step: recompute posteriors in log space.
            let mut max_change = 0.0f64;
            for (item, anns) in per_item.iter().enumerate() {
                if anns.is_empty() {
                    continue; // keep the uniform-ish initialization
                }
                let mut log_post: Vec<f64> = prior.iter().map(|p| p.max(1e-300).ln()).collect();
                for &(w, l) in anns {
                    for truth in 0..classes {
                        log_post[truth] += confusion[w][truth][l].max(1e-300).ln();
                    }
                }
                let new_post = softmax(&log_post);
                for (old, new) in posteriors[item].iter().zip(&new_post) {
                    max_change = max_change.max((old - new).abs());
                }
                posteriors[item] = new_post;
            }

            if max_change < self.tolerance {
                break;
            }
        }

        let estimates = posteriors
            .into_iter()
            .enumerate()
            .map(|(item, distribution)| LabelEstimate { item, distribution })
            .collect();

        let confusion_map = worker_index
            .into_iter()
            .map(|(id, idx)| (id, confusion[idx].clone()))
            .collect();

        DawidSkeneFit {
            confusion: confusion_map,
            prior,
            iterations,
            estimates,
        }
    }
}

impl Aggregator for DawidSkeneEm {
    fn name(&self) -> &str {
        "TD-EM"
    }

    fn aggregate(
        &mut self,
        annotations: &[Annotation],
        items: usize,
        classes: usize,
    ) -> Vec<LabelEstimate> {
        self.fit(annotations, items, classes).estimates
    }
}

fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in &mut v {
            *x /= sum;
        }
    } else {
        let n = v.len() as f64;
        v.fill(1.0 / n);
    }
    v
}

fn softmax(log_values: &[f64]) -> Vec<f64> {
    let max = log_values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = log_values.iter().map(|v| (v - max).exp()).collect();
    normalize(exps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MajorityVoting;

    /// Deterministic planted-truth instance: `good` reliable workers (always
    /// correct) and `bad` adversarial workers (always report `(truth+1) % K`).
    fn planted(items: usize, classes: usize, good: u32, bad: u32) -> (Vec<Annotation>, Vec<usize>) {
        let truths: Vec<usize> = (0..items).map(|i| i % classes).collect();
        let mut annotations = Vec::new();
        for (item, &truth) in truths.iter().enumerate() {
            for w in 0..good {
                annotations.push(Annotation::new(WorkerId(w), item, truth));
            }
            for w in 0..bad {
                annotations.push(Annotation::new(
                    WorkerId(good + w),
                    item,
                    (truth + 1) % classes,
                ));
            }
        }
        (annotations, truths)
    }

    fn accuracy(estimates: &[LabelEstimate], truths: &[usize]) -> f64 {
        estimates
            .iter()
            .zip(truths)
            .filter(|(e, &t)| e.label() == t)
            .count() as f64
            / truths.len() as f64
    }

    #[test]
    fn recovers_truth_with_reliable_majority() {
        let (annotations, truths) = planted(30, 3, 4, 1);
        let estimates = DawidSkeneEm::default().aggregate(&annotations, 30, 3);
        assert_eq!(accuracy(&estimates, &truths), 1.0);
    }

    #[test]
    fn beats_voting_with_heterogeneous_worker_reliability() {
        // Five workers with reliabilities {0.95, 0.9, 0.45, 0.4, 0.35} and
        // *independent* errors. Voting treats every vote equally and loses
        // items where the unreliable majority happens to coincide; EM learns
        // the reliability asymmetry and follows the trustworthy pair.
        let items = 300;
        let classes = 3;
        let reliabilities = [0.95, 0.90, 0.45, 0.40, 0.35];
        let truths: Vec<usize> = (0..items).map(|i| i % classes).collect();
        // Small deterministic PRNG so the test is stable.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut annotations = Vec::new();
        for (item, &truth) in truths.iter().enumerate() {
            for (w, &rel) in reliabilities.iter().enumerate() {
                let label = if next() < rel {
                    truth
                } else if next() < 0.5 {
                    (truth + 1) % classes
                } else {
                    (truth + 2) % classes
                };
                annotations.push(Annotation::new(WorkerId(w as u32), item, label));
            }
        }
        let mv = MajorityVoting.aggregate(&annotations, items, classes);
        let em = DawidSkeneEm::default().aggregate(&annotations, items, classes);
        let acc_mv = accuracy(&mv, &truths);
        let acc_em = accuracy(&em, &truths);
        assert!(acc_em > acc_mv, "EM {acc_em} must beat voting {acc_mv}");
        assert!(acc_em > 0.9, "EM must be near-perfect, got {acc_em}");
    }

    #[test]
    fn estimates_reliable_workers_confusion_as_identity_like() {
        let (annotations, _) = planted(40, 3, 3, 1);
        let fit = DawidSkeneEm::default().fit(&annotations, 40, 3);
        let good = &fit.confusion[&WorkerId(0)];
        for truth in 0..3 {
            assert!(good[truth][truth] > 0.9, "diagonal must dominate: {good:?}");
        }
    }

    #[test]
    fn learns_class_prior() {
        // 3/4 of items are class 0.
        let mut annotations = Vec::new();
        let truths: Vec<usize> = (0..40).map(|i| usize::from(i % 4 == 0)).collect();
        for (item, &t) in truths.iter().enumerate() {
            for w in 0..3 {
                annotations.push(Annotation::new(WorkerId(w), item, t));
            }
        }
        let fit = DawidSkeneEm::default().fit(&annotations, 40, 2);
        assert!(fit.prior[0] > 0.6, "prior {:?}", fit.prior);
    }

    #[test]
    fn items_without_annotations_stay_near_uniform() {
        let (mut annotations, _) = planted(10, 3, 3, 0);
        annotations.retain(|a| a.item != 7);
        let estimates = DawidSkeneEm::default().aggregate(&annotations, 10, 3);
        assert!(estimates[7].confidence() < 0.5);
    }

    #[test]
    fn converges_before_max_iterations_on_clean_data() {
        let (annotations, _) = planted(30, 3, 5, 0);
        let fit = DawidSkeneEm::default().fit(&annotations, 30, 3);
        assert!(fit.iterations < 50, "took {} iterations", fit.iterations);
    }

    #[test]
    fn empty_annotations_are_handled() {
        let estimates = DawidSkeneEm::default().aggregate(&[], 3, 2);
        assert_eq!(estimates.len(), 3);
    }
}
