//! Crowd label-aggregation substrate.
//!
//! Section IV-C of the paper compares its CQC module against three existing
//! quality-control techniques, all of which are implemented here:
//!
//! * [`MajorityVoting`] — the simple baseline ("suboptimal when workers have
//!   different reliability"),
//! * [`DawidSkeneEm`] — truth discovery via expectation-maximization over
//!   latent worker confusion matrices (the paper's **TD-EM** baseline, after
//!   Wang et al. IPSN'12 / Dawid & Skene 1979),
//! * [`WorkerFiltering`] — history-based blacklisting of unreliable workers
//!   ("may fail when workers are new to the platform"),
//! * [`OneCoinEm`] — a lighter one-accuracy-per-worker EM that degrades
//!   more gracefully than full Dawid-Skene on sparse worker histories.
//!
//! All aggregators implement the [`Aggregator`] trait and consume
//! [`Annotation`] triples `(worker, item, label)`.
//!
//! # Example
//!
//! ```
//! use crowdlearn_truth::{Aggregator, Annotation, MajorityVoting, WorkerId};
//!
//! let annotations = [
//!     Annotation::new(WorkerId(0), 0, 2),
//!     Annotation::new(WorkerId(1), 0, 2),
//!     Annotation::new(WorkerId(2), 0, 1),
//! ];
//! let mut mv = MajorityVoting;
//! let estimates = mv.aggregate(&annotations, 1, 3);
//! assert_eq!(estimates[0].label(), 2);
//! ```

//! Determinism: a simulation crate under `detlint` rules D1-D6 (DESIGN.md
//! "Determinism invariants") — BTree collections only, virtual time only,
//! seeded RNG only.
//!
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dawid_skene;
mod filtering;
mod one_coin;
mod voting;

pub use dawid_skene::{DawidSkeneEm, DawidSkeneFit};
pub use filtering::WorkerFiltering;
pub use one_coin::OneCoinEm;
pub use voting::MajorityVoting;

use serde::{Deserialize, Serialize};

/// Identifier of a crowd worker within the platform.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct WorkerId(pub u32);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker-{}", self.0)
    }
}

/// One worker's label for one item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Annotation {
    /// Which worker produced the label.
    pub worker: WorkerId,
    /// Index of the annotated item (dense in `0..items`).
    pub item: usize,
    /// The class label assigned (dense in `0..classes`).
    pub label: usize,
}

impl Annotation {
    /// Creates an annotation triple.
    pub fn new(worker: WorkerId, item: usize, label: usize) -> Self {
        Self {
            worker,
            item,
            label,
        }
    }
}

/// An aggregator's belief about one item's true label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelEstimate {
    /// The item index.
    pub item: usize,
    /// Posterior probability per class (sums to 1).
    pub distribution: Vec<f64>,
}

impl LabelEstimate {
    /// The most probable class (ties break to the lowest index).
    pub fn label(&self) -> usize {
        self.distribution
            .iter()
            .enumerate()
            .fold((0usize, f64::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }

    /// Confidence of the chosen label.
    pub fn confidence(&self) -> f64 {
        self.distribution.iter().copied().fold(0.0, f64::max)
    }
}

/// A crowd label aggregator.
///
/// `aggregate` may be called repeatedly; stateful implementations (such as
/// [`WorkerFiltering`]) accumulate worker history across calls, which mirrors
/// how these schemes run over successive sensing cycles.
pub trait Aggregator: Send {
    /// Name for evaluation reports (Table I rows).
    fn name(&self) -> &str;

    /// Produces a label estimate for every item in `0..items`.
    ///
    /// Items with no annotations receive a uniform distribution.
    ///
    /// # Panics
    ///
    /// Implementations panic if an annotation references an item `>= items`
    /// or a label `>= classes`, or if `classes == 0`.
    fn aggregate(
        &mut self,
        annotations: &[Annotation],
        items: usize,
        classes: usize,
    ) -> Vec<LabelEstimate>;
}

pub(crate) fn validate_annotations(annotations: &[Annotation], items: usize, classes: usize) {
    assert!(classes > 0, "need at least one class");
    for a in annotations {
        assert!(
            a.item < items,
            "annotation references item {} >= {items}",
            a.item
        );
        assert!(
            a.label < classes,
            "annotation label {} >= {classes}",
            a.label
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_estimate_breaks_ties_low() {
        let e = LabelEstimate {
            item: 0,
            distribution: vec![0.4, 0.4, 0.2],
        };
        assert_eq!(e.label(), 0);
        assert!((e.confidence() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = ">= 2")]
    fn validation_catches_bad_item() {
        validate_annotations(&[Annotation::new(WorkerId(0), 5, 0)], 2, 3);
    }

    #[test]
    fn worker_id_displays() {
        assert_eq!(WorkerId(3).to_string(), "worker-3");
    }
}
