//! Property-based tests on the label-aggregation substrate.

use crowdlearn_truth::{
    Aggregator, Annotation, DawidSkeneEm, MajorityVoting, OneCoinEm, WorkerFiltering, WorkerId,
};
use proptest::prelude::*;

fn arbitrary_annotations(
    max_workers: u32,
    items: usize,
    classes: usize,
) -> impl Strategy<Value = Vec<Annotation>> {
    proptest::collection::vec(
        (0..max_workers, 0..items, 0..classes),
        0..(items * 6).max(1),
    )
    .prop_map(|triples| {
        triples
            .into_iter()
            .map(|(w, i, l)| Annotation::new(WorkerId(w), i, l))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every aggregator returns one normalized estimate per item, for any
    /// annotation multiset — including empty input and unannotated items.
    #[test]
    fn estimates_are_always_normalized(
        annotations in arbitrary_annotations(12, 8, 3),
    ) {
        let aggregators: Vec<Box<dyn Aggregator>> = vec![
            Box::new(MajorityVoting),
            Box::new(DawidSkeneEm::default()),
            Box::new(OneCoinEm::default()),
            Box::new(WorkerFiltering::paper_default()),
        ];
        for mut agg in aggregators {
            let estimates = agg.aggregate(&annotations, 8, 3);
            prop_assert_eq!(estimates.len(), 8);
            for (i, e) in estimates.iter().enumerate() {
                prop_assert_eq!(e.item, i);
                prop_assert_eq!(e.distribution.len(), 3);
                let sum: f64 = e.distribution.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "{}: sum {sum}", agg.name());
                prop_assert!(e.distribution.iter().all(|p| (0.0..=1.0 + 1e-9).contains(p)));
            }
        }
    }

    /// With at least two unanimous voters per item every aggregator recovers
    /// the labels. (A *single* voter can legitimately be overruled by a
    /// Bayesian aggregator's learned class prior, so that case is excluded.)
    #[test]
    fn unanimity_is_always_respected(
        labels in proptest::collection::vec(0usize..3, 1..10),
        voters in 2u32..6,
    ) {
        let annotations: Vec<Annotation> = labels
            .iter()
            .enumerate()
            .flat_map(|(item, &l)| {
                (0..voters).map(move |w| Annotation::new(WorkerId(w), item, l))
            })
            .collect();
        let aggregators: Vec<Box<dyn Aggregator>> = vec![
            Box::new(MajorityVoting),
            Box::new(DawidSkeneEm::default()),
            Box::new(OneCoinEm::default()),
            Box::new(WorkerFiltering::paper_default()),
        ];
        for mut agg in aggregators {
            let estimates = agg.aggregate(&annotations, labels.len(), 3);
            for (e, &l) in estimates.iter().zip(&labels) {
                prop_assert_eq!(e.label(), l, "{} broke unanimity", agg.name());
            }
        }
    }

    /// Voting is invariant to annotation order.
    #[test]
    fn voting_is_order_invariant(
        mut annotations in arbitrary_annotations(8, 5, 3),
    ) {
        let forward = MajorityVoting.aggregate(&annotations, 5, 3);
        annotations.reverse();
        let backward = MajorityVoting.aggregate(&annotations, 5, 3);
        prop_assert_eq!(forward, backward);
    }

    /// Filtering never blacklists a worker without enough history.
    #[test]
    fn filtering_needs_history_before_blacklisting(
        annotations in arbitrary_annotations(20, 6, 3),
    ) {
        let mut filtering = WorkerFiltering::new(0.99, 1_000);
        let _ = filtering.aggregate(&annotations, 6, 3);
        prop_assert_eq!(filtering.blacklisted_count(), 0);
    }
}
