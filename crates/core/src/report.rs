//! Common measurement output for every evaluated scheme.

use crowdlearn_classifiers::ClassDistribution;
use crowdlearn_dataset::{DamageLabel, ImageId, TemporalContext};
use crowdlearn_metrics::{macro_average_roc, ConfusionMatrix, RocCurve, SummaryStats};
use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// One image's outcome within a cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageOutcome {
    /// The image.
    pub image: ImageId,
    /// Ground truth.
    pub truth: DamageLabel,
    /// The scheme's final label.
    pub predicted: DamageLabel,
    /// The scheme's final label distribution (for ROC curves).
    pub distribution: ClassDistribution,
    /// Whether this image was sent to the crowd.
    pub queried: bool,
}

/// Everything a scheme produced in one sensing cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleOutcome {
    /// Cycle index.
    pub cycle: usize,
    /// Temporal context of the cycle.
    pub context: TemporalContext,
    /// Per-image outcomes.
    pub images: Vec<ImageOutcome>,
    /// Seconds of AI/module computation this cycle.
    pub algorithm_delay_secs: f64,
    /// Mean query-completion delay this cycle (`None` for AI-only schemes or
    /// cycles without queries).
    pub crowd_delay_secs: Option<f64>,
    /// Exact completion delay of every absorbed query, in absorb order —
    /// the unrounded samples behind `crowd_delay_secs`. Kept so consumers
    /// that need the cycle's *total* crowd wait (e.g. the blocking-makespan
    /// reconstruction) can sum the real values instead of multiplying the
    /// mean back out, which differs in the last float bits.
    pub query_delay_secs: Vec<f64>,
    /// Cents spent on the crowd this cycle.
    pub spent_cents: u64,
}

// Snapshot codecs: cycle outcomes are part of a checkpointed runtime's
// accumulated results, so both types round-trip bit-exactly (f64 via bits).
impl Encode for ImageOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        self.image.encode(out);
        self.truth.encode(out);
        self.predicted.encode(out);
        self.distribution.encode(out);
        self.queried.encode(out);
    }
}

impl Decode for ImageOutcome {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            image: ImageId::decode(r)?,
            truth: DamageLabel::decode(r)?,
            predicted: DamageLabel::decode(r)?,
            distribution: ClassDistribution::decode(r)?,
            queried: bool::decode(r)?,
        })
    }
}

impl Encode for CycleOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cycle.encode(out);
        self.context.encode(out);
        self.images.encode(out);
        self.algorithm_delay_secs.encode(out);
        self.crowd_delay_secs.encode(out);
        self.query_delay_secs.encode(out);
        self.spent_cents.encode(out);
    }
}

impl Decode for CycleOutcome {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let cycle = usize::decode(r)?;
        let context = TemporalContext::decode(r)?;
        let images = Vec::<ImageOutcome>::decode(r)?;
        let algorithm_delay_secs = f64::decode(r)?;
        let crowd_delay_secs = Option::<f64>::decode(r)?;
        let query_delay_secs = Vec::<f64>::decode(r)?;
        let spent_cents = u64::decode(r)?;
        if !algorithm_delay_secs.is_finite() || algorithm_delay_secs < 0.0 {
            return Err(DecodeError::Invalid);
        }
        if let Some(d) = crowd_delay_secs {
            if !d.is_finite() || d < 0.0 {
                return Err(DecodeError::Invalid);
            }
        }
        // The per-query samples back the mean: both present or both absent.
        if crowd_delay_secs.is_some() == query_delay_secs.is_empty()
            || query_delay_secs.iter().any(|d| !d.is_finite() || *d < 0.0)
        {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            cycle,
            context,
            images,
            algorithm_delay_secs,
            crowd_delay_secs,
            query_delay_secs,
            spent_cents,
        })
    }
}

/// Accumulated evaluation of one scheme across a full run — the unit every
/// table and figure of the paper is computed from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeReport {
    /// Scheme name (Table II row label).
    pub name: String,
    /// Final-label confusion matrix over all streamed images.
    pub confusion: ConfusionMatrix,
    /// Per-image score vectors (class probabilities), aligned with `truths`.
    pub scores: Vec<Vec<f64>>,
    /// Ground-truth class indices, aligned with `scores`.
    pub truths: Vec<usize>,
    /// Per-cycle algorithm delay samples.
    pub algorithm_delay: SummaryStats,
    /// Per-cycle crowd delay samples (cycles with queries only).
    pub crowd_delay: SummaryStats,
    /// Per-*query* completion-delay samples across all cycles — the
    /// unaggregated distribution behind `crowd_delay`'s per-cycle means
    /// (what a live metrics tap observes query by query).
    pub query_delay: SummaryStats,
    /// Crowd delay split by temporal context (Figure 8 series).
    pub crowd_delay_by_context: Vec<SummaryStats>,
    /// Total cents spent on the crowd.
    pub spent_cents: u64,
    /// Number of cycles recorded.
    pub cycles: usize,
    /// Number of images sent to the crowd.
    pub queries_issued: usize,
}

impl SchemeReport {
    /// Creates an empty report for a scheme.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            confusion: ConfusionMatrix::new(DamageLabel::COUNT),
            scores: Vec::new(),
            truths: Vec::new(),
            algorithm_delay: SummaryStats::new(),
            crowd_delay: SummaryStats::new(),
            query_delay: SummaryStats::new(),
            crowd_delay_by_context: (0..TemporalContext::COUNT)
                .map(|_| SummaryStats::new())
                .collect(),
            spent_cents: 0,
            cycles: 0,
            queries_issued: 0,
        }
    }

    /// Folds one cycle's outcome into the report.
    pub fn record_cycle(&mut self, outcome: &CycleOutcome) {
        for img in &outcome.images {
            self.confusion
                .record(img.truth.index(), img.predicted.index());
            self.scores.push(img.distribution.probs().to_vec());
            self.truths.push(img.truth.index());
            self.queries_issued += usize::from(img.queried);
        }
        self.algorithm_delay.push(outcome.algorithm_delay_secs);
        if let Some(d) = outcome.crowd_delay_secs {
            self.crowd_delay.push(d);
            self.crowd_delay_by_context[outcome.context.index()].push(d);
        }
        self.query_delay
            .extend(outcome.query_delay_secs.iter().copied());
        self.spent_cents += outcome.spent_cents;
        self.cycles += 1;
    }

    /// Classification accuracy over all streamed images.
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }

    /// Macro-averaged F1 (the Table II headline).
    pub fn macro_f1(&self) -> f64 {
        self.confusion.macro_f1()
    }

    /// Macro-average one-vs-rest ROC curve (Figure 7).
    ///
    /// # Panics
    ///
    /// Panics if no images have been recorded.
    pub fn roc(&self) -> RocCurve {
        macro_average_roc(&self.scores, &self.truths, DamageLabel::COUNT)
    }

    /// Mean per-cycle algorithm delay (Table III column 1).
    pub fn mean_algorithm_delay_secs(&self) -> f64 {
        self.algorithm_delay.mean()
    }

    /// Mean per-cycle crowd delay (Table III column 2); `None` for AI-only
    /// schemes.
    pub fn mean_crowd_delay_secs(&self) -> Option<f64> {
        if self.crowd_delay.is_empty() {
            None
        } else {
            Some(self.crowd_delay.mean())
        }
    }

    /// Mean crowd delay for one temporal context (Figure 8 bars).
    pub fn mean_crowd_delay_in(&self, context: TemporalContext) -> Option<f64> {
        let stats = &self.crowd_delay_by_context[context.index()];
        if stats.is_empty() {
            None
        } else {
            Some(stats.mean())
        }
    }

    /// Dollars spent on the crowd.
    pub fn spent_usd(&self) -> f64 {
        self.spent_cents as f64 / 100.0
    }

    /// Per-image correctness indicators, in stream order — the paired input
    /// for McNemar comparisons between schemes run on the same stream.
    pub fn correctness(&self) -> Vec<bool> {
        self.scores
            .iter()
            .zip(&self.truths)
            .map(|(probs, &truth)| {
                let argmax = probs
                    .iter()
                    .enumerate()
                    .fold((0usize, f64::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0;
                argmax == truth
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(cycle: usize, context: TemporalContext, correct: bool) -> CycleOutcome {
        let truth = DamageLabel::Severe;
        let predicted = if correct {
            truth
        } else {
            DamageLabel::NoDamage
        };
        CycleOutcome {
            cycle,
            context,
            images: vec![ImageOutcome {
                image: ImageId(cycle as u32),
                truth,
                predicted,
                distribution: ClassDistribution::delta(predicted),
                queried: correct,
            }],
            algorithm_delay_secs: 50.0,
            crowd_delay_secs: Some(300.0),
            query_delay_secs: vec![290.0, 310.0],
            spent_cents: 10,
        }
    }

    #[test]
    fn records_accumulate() {
        let mut r = SchemeReport::new("test");
        r.record_cycle(&outcome(0, TemporalContext::Morning, true));
        r.record_cycle(&outcome(1, TemporalContext::Evening, false));
        assert_eq!(r.cycles, 2);
        assert_eq!(r.queries_issued, 1);
        assert_eq!(r.spent_cents, 20);
        assert!((r.accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(r.mean_algorithm_delay_secs(), 50.0);
        assert_eq!(r.mean_crowd_delay_secs(), Some(300.0));
        assert_eq!(r.mean_crowd_delay_in(TemporalContext::Morning), Some(300.0));
        assert_eq!(r.mean_crowd_delay_in(TemporalContext::Afternoon), None);
    }

    #[test]
    fn ai_only_reports_have_no_crowd_delay() {
        let mut r = SchemeReport::new("VGG16");
        let mut o = outcome(0, TemporalContext::Morning, true);
        o.crowd_delay_secs = None;
        o.query_delay_secs.clear();
        o.spent_cents = 0;
        r.record_cycle(&o);
        assert_eq!(r.mean_crowd_delay_secs(), None);
        assert!(r.query_delay.is_empty());
        assert_eq!(r.spent_usd(), 0.0);
    }

    #[test]
    fn correctness_matches_the_confusion_matrix() {
        let mut r = SchemeReport::new("test");
        for i in 0..8 {
            r.record_cycle(&outcome(i, TemporalContext::Morning, i % 3 != 0));
        }
        let correctness = r.correctness();
        let correct = correctness.iter().filter(|&&c| c).count() as f64;
        assert!((correct / correctness.len() as f64 - r.accuracy()).abs() < 1e-12);
    }

    #[test]
    fn cycle_outcome_codec_round_trips() {
        let o = outcome(7, TemporalContext::Evening, true);
        assert_eq!(CycleOutcome::from_bytes(&o.to_bytes()).as_ref(), Ok(&o));

        let mut late = o.clone();
        late.crowd_delay_secs = None;
        late.query_delay_secs.clear();
        assert_eq!(CycleOutcome::from_bytes(&late.to_bytes()), Ok(late));

        let mut bad = o.clone();
        bad.algorithm_delay_secs = f64::NAN;
        assert_eq!(
            CycleOutcome::from_bytes(&bad.to_bytes()),
            Err(DecodeError::Invalid)
        );

        // A mean without its backing samples (or vice versa) is rejected.
        let mut inconsistent = o;
        inconsistent.query_delay_secs.clear();
        assert_eq!(
            CycleOutcome::from_bytes(&inconsistent.to_bytes()),
            Err(DecodeError::Invalid)
        );
    }

    #[test]
    fn query_delays_accumulate_per_sample() {
        let mut r = SchemeReport::new("test");
        r.record_cycle(&outcome(0, TemporalContext::Morning, true));
        r.record_cycle(&outcome(1, TemporalContext::Evening, false));
        // Two cycles × two queries: the per-query summary sees all four
        // samples while the per-cycle summary sees the two means.
        assert_eq!(r.query_delay.len(), 4);
        assert_eq!(r.crowd_delay.len(), 2);
        assert!((r.query_delay.sum() - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn roc_runs_on_recorded_scores() {
        let mut r = SchemeReport::new("test");
        for i in 0..6 {
            r.record_cycle(&outcome(i, TemporalContext::Morning, i % 2 == 0));
        }
        let roc = r.roc();
        assert!(roc.auc() >= 0.0 && roc.auc() <= 1.0);
    }
}
