//! Machine Intelligence Calibration (paper §IV-D): use the crowd's truthful
//! labels to re-weight, retrain, and override the AI committee.

use crate::Committee;
use crowdlearn_classifiers::ClassDistribution;
use crowdlearn_dataset::{LabeledImage, SyntheticImage};
use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// Maps a symmetric KL divergence to the `[0, 1]` loss scale — the `delta`
/// normalization of Eq. 5. `1 - exp(-kl)` is 0 for identical distributions
/// and approaches 1 as the divergence grows.
///
/// # Panics
///
/// Panics if `kl` is negative or NaN.
pub fn normalized_symmetric_kl(kl: f64) -> f64 {
    assert!(kl >= 0.0 && !kl.is_nan(), "KL divergence must be >= 0");
    1.0 - (-kl).exp()
}

/// Which of MIC's three strategies are active — the ablation switchboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CalibratorConfig {
    /// Dynamic expert-weight updates (Hedge over Eq. 5 losses).
    pub update_weights: bool,
    /// Model retraining with crowd labels.
    pub retrain: bool,
    /// Crowd offloading: replace AI labels with CQC labels on the query set.
    pub offload: bool,
}

impl CalibratorConfig {
    /// The full CrowdLearn configuration: all three strategies on.
    pub fn paper() -> Self {
        Self {
            update_weights: true,
            retrain: true,
            offload: true,
        }
    }

    /// Everything off (the committee degenerates to a static ensemble).
    pub fn disabled() -> Self {
        Self {
            update_weights: false,
            retrain: false,
            offload: false,
        }
    }
}

impl Default for CalibratorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl Encode for CalibratorConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.update_weights.encode(out);
        self.retrain.encode(out);
        self.offload.encode(out);
    }
}

impl Decode for CalibratorConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            update_weights: bool::decode(r)?,
            retrain: bool::decode(r)?,
            offload: bool::decode(r)?,
        })
    }
}

/// One crowd-answered query, carrying the member votes that were *cached
/// when the cycle started*.
///
/// MIC must score the committee on the votes that actually produced the
/// cycle's labels. Re-predicting at calibration time looks equivalent under
/// a blocking loop, but with `inflight_window > 1` an overlapping cycle's
/// retrain can land in between — the re-predicted votes would then belong to
/// a *newer* model version than the labels being judged, and Hedge would be
/// updated on losses the cycle never incurred (besides paying O(members ×
/// queries) redundant predicts). Threading the cached votes through makes
/// vote staleness impossible by construction.
#[derive(Debug, Clone)]
pub struct QueriedImage<'a> {
    /// The queried image (retraining clones it into a labeled sample).
    pub image: &'a SyntheticImage,
    /// The member votes cached at `start_cycle`, in committee member order.
    pub member_votes: &'a [ClassDistribution],
    /// The CQC truthful distribution the crowd produced for this image.
    pub truthful: ClassDistribution,
}

/// The MIC module. Stateless apart from its configuration; all state lives
/// in the [`Committee`] it calibrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Calibrator {
    config: CalibratorConfig,
}

impl Calibrator {
    /// Creates a calibrator with the given strategy switches.
    pub fn new(config: CalibratorConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> CalibratorConfig {
        self.config
    }

    /// Per-expert losses from Eq. 5: the mean normalized symmetric KL
    /// divergence between each expert's *cached* vote and the CQC truthful
    /// distribution, over the cycle's query set.
    ///
    /// # Panics
    ///
    /// Panics if `queried` is empty or any entry's vote count differs from
    /// the committee size.
    pub fn expert_losses(&self, committee: &Committee, queried: &[QueriedImage<'_>]) -> Vec<f64> {
        assert!(!queried.is_empty(), "need at least one queried image");
        let mut losses = vec![0.0; committee.len()];
        for q in queried {
            assert_eq!(
                q.member_votes.len(),
                committee.len(),
                "one cached vote per committee member"
            );
            for (loss, vote) in losses.iter_mut().zip(q.member_votes) {
                *loss += normalized_symmetric_kl(vote.symmetric_kl(&q.truthful));
            }
        }
        for loss in &mut losses {
            *loss /= queried.len() as f64;
        }
        losses
    }

    /// Runs one MIC round after CQC has produced truthful distributions for
    /// the cycle's query set: Hedge weight update, committee retraining, and
    /// (if enabled) returns the set of overrides the caller should apply to
    /// the cycle's output labels (crowd offloading).
    ///
    /// Returns `(offload_labels)`: for each queried image, `Some(truthful
    /// distribution)` when offloading is enabled, `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if any entry's vote count differs from the committee size.
    pub fn calibrate(
        &self,
        committee: &mut Committee,
        queried: &[QueriedImage<'_>],
    ) -> Vec<Option<ClassDistribution>> {
        if queried.is_empty() {
            return Vec::new();
        }

        if self.config.update_weights {
            let losses = self.expert_losses(committee, queried);
            committee.update_weights(&losses);
        }

        if self.config.retrain {
            let samples: Vec<LabeledImage> = queried
                .iter()
                .map(|q| LabeledImage::new(q.image.clone(), q.truthful.argmax()))
                .collect();
            committee.retrain(&samples);
        }

        queried
            .iter()
            .map(|q| self.config.offload.then(|| q.truthful.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdlearn_classifiers::{profiles, Classifier};
    use crowdlearn_dataset::{DamageLabel, Dataset, DatasetConfig};

    fn committee(ds: &Dataset) -> Committee {
        let train: Vec<_> = ds
            .train()
            .iter()
            .cloned()
            .map(LabeledImage::ground_truth)
            .collect();
        let members: Vec<Box<dyn Classifier>> = profiles::paper_committee(0)
            .into_iter()
            .map(|mut e| {
                e.retrain(&train);
                Box::new(e) as Box<dyn Classifier>
            })
            .collect();
        Committee::new(members, 0.6)
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        assert_eq!(normalized_symmetric_kl(0.0), 0.0);
        assert!(normalized_symmetric_kl(0.5) > 0.0);
        assert!(normalized_symmetric_kl(100.0) <= 1.0);
        let a = normalized_symmetric_kl(0.3);
        let b = normalized_symmetric_kl(0.6);
        assert!(a < b, "normalization must be monotone");
    }

    /// Pairs each image with its cached committee votes and a ground-truth
    /// delta as the "truthful" distribution — the shape `finalize_cycle`
    /// hands to the calibrator.
    fn queried<'a>(
        images: &[&'a crowdlearn_dataset::SyntheticImage],
        votes: &'a [Vec<ClassDistribution>],
    ) -> Vec<QueriedImage<'a>> {
        images
            .iter()
            .zip(votes)
            .map(|(img, member_votes)| QueriedImage {
                image: img,
                member_votes,
                truthful: ClassDistribution::delta(img.truth()),
            })
            .collect()
    }

    #[test]
    fn accurate_experts_receive_lower_losses() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let committee = committee(&ds);
        let calibrator = Calibrator::new(CalibratorConfig::paper());
        // Use ground truth as the "truthful" distribution over many plain
        // images: DDM (most accurate) must incur a smaller loss than BoVW.
        let images: Vec<_> = ds.test().iter().take(60).collect();
        let votes = committee.votes_batch(&images);
        let losses = calibrator.expert_losses(&committee, &queried(&images, &votes));
        // Member order: VGG16, BoVW, DDM.
        assert!(
            losses[2] < losses[1],
            "DDM loss {} must be below BoVW loss {}",
            losses[2],
            losses[1]
        );
    }

    #[test]
    fn calibration_shifts_weights_toward_better_experts() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut committee = committee(&ds);
        let calibrator = Calibrator::new(CalibratorConfig::paper());
        for chunk in ds.test().chunks(20).take(5) {
            let images: Vec<_> = chunk.iter().collect();
            // Votes are cached before each calibration round, as in a
            // sensing cycle: `calibrate` retrains the committee, so the next
            // round re-caches from the updated members.
            let votes = committee.votes_batch(&images);
            calibrator.calibrate(&mut committee, &queried(&images, &votes));
        }
        let w = committee.weights();
        assert!(
            w[2] > w[1],
            "DDM weight {} must exceed BoVW weight {} after calibration: {w:?}",
            w[2],
            w[1]
        );
    }

    #[test]
    fn offloading_returns_truthful_distributions() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut committee = committee(&ds);
        let calibrator = Calibrator::new(CalibratorConfig::paper());
        let truthful = ClassDistribution::delta(DamageLabel::Severe);
        let votes = committee.votes(&ds.test()[0]);
        let entries = vec![QueriedImage {
            image: &ds.test()[0],
            member_votes: &votes,
            truthful: truthful.clone(),
        }];
        let overrides = calibrator.calibrate(&mut committee, &entries);
        assert_eq!(overrides.len(), 1);
        assert_eq!(overrides[0], Some(truthful));
    }

    #[test]
    fn disabled_calibrator_changes_nothing() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut committee = committee(&ds);
        let weights_before = committee.weights().to_vec();
        let vote_before = committee.committee_vote(&ds.test()[3]);
        let calibrator = Calibrator::new(CalibratorConfig::disabled());
        let votes = committee.votes(&ds.test()[0]);
        let entries = vec![QueriedImage {
            image: &ds.test()[0],
            member_votes: &votes,
            truthful: ClassDistribution::delta(DamageLabel::NoDamage),
        }];
        let overrides = calibrator.calibrate(&mut committee, &entries);
        assert_eq!(overrides, vec![None]);
        assert_eq!(committee.weights(), &weights_before[..]);
        assert_eq!(committee.committee_vote(&ds.test()[3]), vote_before);
    }

    #[test]
    fn empty_query_set_is_a_no_op() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut committee = committee(&ds);
        let calibrator = Calibrator::new(CalibratorConfig::paper());
        let overrides = calibrator.calibrate(&mut committee, &[]);
        assert!(overrides.is_empty());
    }

    #[test]
    fn cached_vote_losses_match_fresh_predictions_without_an_interleaved_retrain() {
        // Golden window-1 pin: under a blocking loop (or inflight window 1)
        // nothing retrains between vote caching and calibration, so scoring
        // the cached votes reproduces the old re-predicting implementation
        // bit for bit.
        let ds = Dataset::generate(&DatasetConfig::paper());
        let committee = committee(&ds);
        let calibrator = Calibrator::new(CalibratorConfig::paper());
        let images: Vec<_> = ds.test().iter().take(30).collect();
        let votes = committee.votes_batch(&images);
        let entries = queried(&images, &votes);
        let threaded = calibrator.expert_losses(&committee, &entries);
        // The old implementation, inlined: re-predict every member per image.
        let mut fresh = vec![0.0; committee.len()];
        for entry in &entries {
            for (loss, vote) in fresh.iter_mut().zip(&committee.votes(entry.image)) {
                *loss += normalized_symmetric_kl(vote.symmetric_kl(&entry.truthful));
            }
        }
        for loss in &mut fresh {
            *loss /= entries.len() as f64;
        }
        for (t, f) in threaded.iter().zip(&fresh) {
            assert_eq!(t.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn losses_are_scored_on_cached_votes_after_an_overlapping_retrain() {
        // Window > 1 regression: an overlapping cycle's retrain lands
        // between vote caching and calibration. Hedge losses must be scored
        // on the votes that produced the cycle's labels (the cached ones) —
        // the old implementation re-predicted with the *newer* model and
        // judged the cycle on votes it never cast.
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut committee = committee(&ds);
        let calibrator = Calibrator::new(CalibratorConfig::paper());
        let images: Vec<_> = ds.test().iter().take(30).collect();
        let votes = committee.votes_batch(&images);
        let entries = queried(&images, &votes);
        let expected = calibrator.expert_losses(&committee, &entries);

        // The overlapping cycle's retrain: bumps every member's version, so
        // fresh predictions no longer match the cached votes.
        let samples: Vec<LabeledImage> = ds.test()[30..40]
            .iter()
            .cloned()
            .map(LabeledImage::ground_truth)
            .collect();
        committee.retrain(&samples);

        let after_retrain = calibrator.expert_losses(&committee, &entries);
        for (a, e) in after_retrain.iter().zip(&expected) {
            assert_eq!(
                a.to_bits(),
                e.to_bits(),
                "losses must depend only on the cached votes"
            );
        }
        // And the stale-vote hazard is real: re-predicting now would score
        // different votes entirely.
        let stale_votes = committee.votes_batch(&images);
        let stale = calibrator.expert_losses(&committee, &queried(&images, &stale_votes));
        assert_ne!(
            stale, expected,
            "retrain must shift the fresh predictions the old code would have scored"
        );
    }

    #[test]
    #[should_panic(expected = "one cached vote per committee member")]
    fn vote_count_mismatch_is_rejected() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let committee = committee(&ds);
        let calibrator = Calibrator::new(CalibratorConfig::paper());
        let short = vec![ClassDistribution::delta(DamageLabel::NoDamage); committee.len() - 1];
        let entries = vec![QueriedImage {
            image: &ds.test()[0],
            member_votes: &short,
            truthful: ClassDistribution::delta(DamageLabel::NoDamage),
        }];
        calibrator.expert_losses(&committee, &entries);
    }
}
