//! Machine Intelligence Calibration (paper §IV-D): use the crowd's truthful
//! labels to re-weight, retrain, and override the AI committee.

use crate::Committee;
use crowdlearn_classifiers::ClassDistribution;
use crowdlearn_dataset::{LabeledImage, SyntheticImage};
use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// Maps a symmetric KL divergence to the `[0, 1]` loss scale — the `delta`
/// normalization of Eq. 5. `1 - exp(-kl)` is 0 for identical distributions
/// and approaches 1 as the divergence grows.
///
/// # Panics
///
/// Panics if `kl` is negative or NaN.
pub fn normalized_symmetric_kl(kl: f64) -> f64 {
    assert!(kl >= 0.0 && !kl.is_nan(), "KL divergence must be >= 0");
    1.0 - (-kl).exp()
}

/// Which of MIC's three strategies are active — the ablation switchboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CalibratorConfig {
    /// Dynamic expert-weight updates (Hedge over Eq. 5 losses).
    pub update_weights: bool,
    /// Model retraining with crowd labels.
    pub retrain: bool,
    /// Crowd offloading: replace AI labels with CQC labels on the query set.
    pub offload: bool,
}

impl CalibratorConfig {
    /// The full CrowdLearn configuration: all three strategies on.
    pub fn paper() -> Self {
        Self {
            update_weights: true,
            retrain: true,
            offload: true,
        }
    }

    /// Everything off (the committee degenerates to a static ensemble).
    pub fn disabled() -> Self {
        Self {
            update_weights: false,
            retrain: false,
            offload: false,
        }
    }
}

impl Default for CalibratorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl Encode for CalibratorConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.update_weights.encode(out);
        self.retrain.encode(out);
        self.offload.encode(out);
    }
}

impl Decode for CalibratorConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            update_weights: bool::decode(r)?,
            retrain: bool::decode(r)?,
            offload: bool::decode(r)?,
        })
    }
}

/// The MIC module. Stateless apart from its configuration; all state lives
/// in the [`Committee`] it calibrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Calibrator {
    config: CalibratorConfig,
}

impl Calibrator {
    /// Creates a calibrator with the given strategy switches.
    pub fn new(config: CalibratorConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> CalibratorConfig {
        self.config
    }

    /// Per-expert losses from Eq. 5: the mean normalized symmetric KL
    /// divergence between each expert's vote and the CQC truthful
    /// distribution, over the cycle's query set.
    ///
    /// # Panics
    ///
    /// Panics if `queried` is empty or the images/labels lengths mismatch.
    pub fn expert_losses(
        &self,
        committee: &Committee,
        queried: &[(&SyntheticImage, ClassDistribution)],
    ) -> Vec<f64> {
        assert!(!queried.is_empty(), "need at least one queried image");
        let mut losses = vec![0.0; committee.len()];
        for (image, truthful) in queried {
            let votes = committee.votes(image);
            for (loss, vote) in losses.iter_mut().zip(&votes) {
                *loss += normalized_symmetric_kl(vote.symmetric_kl(truthful));
            }
        }
        for loss in &mut losses {
            *loss /= queried.len() as f64;
        }
        losses
    }

    /// Runs one MIC round after CQC has produced truthful distributions for
    /// the cycle's query set: Hedge weight update, committee retraining, and
    /// (if enabled) returns the set of overrides the caller should apply to
    /// the cycle's output labels (crowd offloading).
    ///
    /// Returns `(offload_labels)`: for each queried image, `Some(truthful
    /// distribution)` when offloading is enabled, `None` otherwise.
    pub fn calibrate(
        &self,
        committee: &mut Committee,
        queried: &[(&SyntheticImage, ClassDistribution)],
    ) -> Vec<Option<ClassDistribution>> {
        if queried.is_empty() {
            return Vec::new();
        }

        if self.config.update_weights {
            let losses = self.expert_losses(committee, queried);
            committee.update_weights(&losses);
        }

        if self.config.retrain {
            let samples: Vec<LabeledImage> = queried
                .iter()
                .map(|(image, truthful)| LabeledImage::new((*image).clone(), truthful.argmax()))
                .collect();
            committee.retrain(&samples);
        }

        queried
            .iter()
            .map(|(_, truthful)| self.config.offload.then(|| truthful.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdlearn_classifiers::{profiles, Classifier};
    use crowdlearn_dataset::{DamageLabel, Dataset, DatasetConfig};

    fn committee(ds: &Dataset) -> Committee {
        let train: Vec<_> = ds
            .train()
            .iter()
            .cloned()
            .map(LabeledImage::ground_truth)
            .collect();
        let members: Vec<Box<dyn Classifier>> = profiles::paper_committee(0)
            .into_iter()
            .map(|mut e| {
                e.retrain(&train);
                Box::new(e) as Box<dyn Classifier>
            })
            .collect();
        Committee::new(members, 0.6)
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        assert_eq!(normalized_symmetric_kl(0.0), 0.0);
        assert!(normalized_symmetric_kl(0.5) > 0.0);
        assert!(normalized_symmetric_kl(100.0) <= 1.0);
        let a = normalized_symmetric_kl(0.3);
        let b = normalized_symmetric_kl(0.6);
        assert!(a < b, "normalization must be monotone");
    }

    #[test]
    fn accurate_experts_receive_lower_losses() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let committee = committee(&ds);
        let calibrator = Calibrator::new(CalibratorConfig::paper());
        // Use ground truth as the "truthful" distribution over many plain
        // images: DDM (most accurate) must incur a smaller loss than BoVW.
        let queried: Vec<(&crowdlearn_dataset::SyntheticImage, ClassDistribution)> = ds
            .test()
            .iter()
            .take(60)
            .map(|img| (img, ClassDistribution::delta(img.truth())))
            .collect();
        let losses = calibrator.expert_losses(&committee, &queried);
        // Member order: VGG16, BoVW, DDM.
        assert!(
            losses[2] < losses[1],
            "DDM loss {} must be below BoVW loss {}",
            losses[2],
            losses[1]
        );
    }

    #[test]
    fn calibration_shifts_weights_toward_better_experts() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut committee = committee(&ds);
        let calibrator = Calibrator::new(CalibratorConfig::paper());
        for chunk in ds.test().chunks(20).take(5) {
            let queried: Vec<_> = chunk
                .iter()
                .map(|img| (img, ClassDistribution::delta(img.truth())))
                .collect();
            calibrator.calibrate(&mut committee, &queried);
        }
        let w = committee.weights();
        assert!(
            w[2] > w[1],
            "DDM weight {} must exceed BoVW weight {} after calibration: {w:?}",
            w[2],
            w[1]
        );
    }

    #[test]
    fn offloading_returns_truthful_distributions() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut committee = committee(&ds);
        let calibrator = Calibrator::new(CalibratorConfig::paper());
        let truthful = ClassDistribution::delta(DamageLabel::Severe);
        let queried = vec![(&ds.test()[0], truthful.clone())];
        let overrides = calibrator.calibrate(&mut committee, &queried);
        assert_eq!(overrides.len(), 1);
        assert_eq!(overrides[0], Some(truthful));
    }

    #[test]
    fn disabled_calibrator_changes_nothing() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut committee = committee(&ds);
        let weights_before = committee.weights().to_vec();
        let vote_before = committee.committee_vote(&ds.test()[3]);
        let calibrator = Calibrator::new(CalibratorConfig::disabled());
        let queried = vec![(
            &ds.test()[0],
            ClassDistribution::delta(DamageLabel::NoDamage),
        )];
        let overrides = calibrator.calibrate(&mut committee, &queried);
        assert_eq!(overrides, vec![None]);
        assert_eq!(committee.weights(), &weights_before[..]);
        assert_eq!(committee.committee_vote(&ds.test()[3]), vote_before);
    }

    #[test]
    fn empty_query_set_is_a_no_op() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut committee = committee(&ds);
        let calibrator = Calibrator::new(CalibratorConfig::paper());
        let overrides = calibrator.calibrate(&mut committee, &[]);
        assert!(overrides.is_empty());
    }
}
