//! Query Set Selection (paper §IV-A, Algorithm 1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::binary::{Decode, DecodeError, Encode, Reader};

/// The ε-greedy entropy-ranked query selector.
///
/// Given the committee entropy of every image in a sensing cycle, the
/// selector picks `Y` images for the crowd: with probability `1 - ε` the
/// highest-entropy remaining image (exploitation: images the committee is
/// uncertain about), and with probability `ε` a uniformly random remaining
/// image (exploration: catches images where every expert is confidently
/// wrong — fake images never rank high on entropy).
///
/// # Example
///
/// ```
/// use crowdlearn::QuerySetSelector;
///
/// let mut qss = QuerySetSelector::new(0.0, 1); // pure exploitation
/// let entropies = [0.1, 0.9, 0.5, 0.7];
/// let picked = qss.select(&entropies, 2);
/// assert_eq!(picked, vec![1, 3]); // the two highest entropies
/// ```
#[derive(Debug, Clone)]
pub struct QuerySetSelector {
    epsilon: f64,
    rng: StdRng,
}

impl QuerySetSelector {
    /// Creates a selector with exploration rate `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `[0, 1]`.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        Self {
            epsilon,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Selects up to `count` indices into `entropies` (Algorithm 1). Picks
    /// are distinct; if `count >= entropies.len()` every index is returned.
    ///
    /// # Panics
    ///
    /// Panics if any entropy is NaN.
    pub fn select(&mut self, entropies: &[f64], count: usize) -> Vec<usize> {
        assert!(
            entropies.iter().all(|e| !e.is_nan()),
            "entropies must not be NaN"
        );
        // Sorted list, highest entropy first (the paper's s_list).
        let mut s_list: Vec<usize> = (0..entropies.len()).collect();
        s_list.sort_by(|&a, &b| {
            entropies[b]
                .partial_cmp(&entropies[a])
                .expect("invariant: entropies are asserted non-NaN on entry")
        });

        let take = count.min(s_list.len());
        let mut output = Vec::with_capacity(take);
        for _ in 0..take {
            let pick = if self.rng.gen::<f64>() < self.epsilon {
                // Exploration: uniform over the remaining list.
                self.rng.gen_range(0..s_list.len())
            } else {
                // Exploitation: pop the highest-entropy remaining image.
                0
            };
            output.push(s_list.remove(pick));
        }
        output
    }
}

// Snapshot codec: the exploration rate plus the raw RNG words, so a resumed
// selector continues the exact random sequence of the live one.
impl Encode for QuerySetSelector {
    fn encode(&self, out: &mut Vec<u8>) {
        self.epsilon.encode(out);
        self.rng.state().encode(out);
    }
}

impl Decode for QuerySetSelector {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let epsilon = f64::decode(r)?;
        let rng = <[u64; 4]>::decode(r)?;
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(DecodeError::Invalid);
        }
        Ok(Self {
            epsilon,
            rng: StdRng::from_state(rng),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_codec_resumes_the_random_sequence() {
        let mut live = QuerySetSelector::new(0.4, 99);
        let entropies: Vec<f64> = (0..12).map(|i| f64::from(i) / 12.0).collect();
        for _ in 0..5 {
            live.select(&entropies, 4);
        }
        let mut resumed = QuerySetSelector::from_bytes(&live.to_bytes()).expect("round trip");
        for _ in 0..10 {
            assert_eq!(live.select(&entropies, 4), resumed.select(&entropies, 4));
        }
    }

    #[test]
    fn snapshot_codec_rejects_bad_epsilon() {
        let mut bytes = Vec::new();
        7.5f64.encode(&mut bytes);
        [1u64, 2, 3, 4].encode(&mut bytes);
        assert!(matches!(
            QuerySetSelector::from_bytes(&bytes),
            Err(DecodeError::Invalid)
        ));
    }

    #[test]
    fn zero_epsilon_returns_top_entropy_order() {
        let mut qss = QuerySetSelector::new(0.0, 7);
        let entropies = [0.3, 1.0, 0.0, 0.8, 0.5];
        assert_eq!(qss.select(&entropies, 3), vec![1, 3, 4]);
    }

    #[test]
    fn selections_are_distinct() {
        let mut qss = QuerySetSelector::new(0.5, 9);
        let entropies: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        for _ in 0..50 {
            let picked = qss.select(&entropies, 10);
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10, "duplicates in {picked:?}");
        }
    }

    #[test]
    fn count_larger_than_pool_returns_everything() {
        let mut qss = QuerySetSelector::new(0.2, 3);
        let picked = qss.select(&[0.5, 0.1], 10);
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn exploration_eventually_picks_low_entropy_images() {
        // Image 0 has the lowest entropy; with epsilon > 0 it must
        // eventually be selected even for count=1 — this is exactly how
        // confidently-wrong fakes get caught.
        let mut qss = QuerySetSelector::new(0.3, 11);
        let entropies = [0.01, 0.9, 0.8, 0.85, 0.95];
        let mut hit = 0;
        for _ in 0..300 {
            if qss.select(&entropies, 1)[0] == 0 {
                hit += 1;
            }
        }
        // epsilon * 1/5 = 6% expected.
        assert!(hit > 5, "low-entropy image picked only {hit}/300 times");
    }

    #[test]
    fn pure_exploration_is_roughly_uniform() {
        let mut qss = QuerySetSelector::new(1.0, 13);
        let entropies = [0.0, 0.5, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[qss.select(&entropies, 1)[0]] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 3000.0 - 1.0 / 3.0).abs() < 0.05, "{counts:?}");
        }
    }

    #[test]
    fn empty_input_returns_empty() {
        let mut qss = QuerySetSelector::new(0.2, 5);
        assert!(qss.select(&[], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1]")]
    fn bad_epsilon_rejected() {
        QuerySetSelector::new(-0.1, 0);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_entropy_rejected() {
        QuerySetSelector::new(0.1, 0).select(&[f64::NAN], 1);
    }
}
