//! CrowdLearn: a crowd-AI hybrid system for deep-learning-based disaster
//! damage assessment — a full reproduction of the ICDCS 2019 paper.
//!
//! The system welds a committee of black-box AI classifiers to a black-box
//! crowdsourcing platform through four modules, run as a closed loop over
//! sensing cycles (paper Figure 4):
//!
//! 1. [`QuerySetSelector`] (**QSS**, §IV-A) — query-by-committee entropy
//!    (Eqs. 2-3) with ε-greedy exploration picks which images to send to the
//!    crowd, catching both *uncertain* images and images the committee is
//!    *confidently wrong* about.
//! 2. [`IncentivePolicy`] (**IPD**, §IV-B) — a constrained contextual bandit
//!    chooses the incentive for each query to minimize crowd response delay
//!    under a global budget (Eq. 4).
//! 3. [`QualityController`] (**CQC**, §IV-C) — a gradient-boosting model
//!    over worker labels *and* questionnaire evidence distills truthful
//!    labels from noisy crowd responses.
//! 4. [`Calibrator`] (**MIC**, §IV-D) — the truthful labels drive three
//!    simultaneous calibration strategies: Hedge expert-weight updates from
//!    the symmetric-KL loss (Eq. 5), committee retraining, and crowd
//!    offloading (human labels replace AI labels on the query set).
//!
//! [`CrowdLearnSystem`] wires the modules together; [`baselines`] holds the
//! evaluation's competitors (AI-only runners, `Hybrid-Para`, `Hybrid-AL`);
//! [`SchemeReport`] is the common measurement output every experiment
//! consumes.
//!
//! # Example
//!
//! ```no_run
//! use crowdlearn::{CrowdLearnConfig, CrowdLearnSystem};
//! use crowdlearn_dataset::{Dataset, DatasetConfig, SensingCycleStream};
//!
//! let dataset = Dataset::generate(&DatasetConfig::paper());
//! let stream = SensingCycleStream::paper(&dataset);
//! let mut system = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());
//! let report = system.run(&dataset, &stream);
//! println!("accuracy = {:.3}", report.confusion.accuracy());
//! ```

//! Determinism: a simulation crate under `detlint` rules D1-D6 (DESIGN.md
//! "Determinism invariants"), including D4 — library code must surface
//! errors or state its `expect` invariant, never panic mid-cycle.
//!
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod calibration;
mod committee;
mod cqc;
mod ipd;
mod qss;
mod report;
mod system;
mod trace;

pub use calibration::{normalized_symmetric_kl, Calibrator, CalibratorConfig, QueriedImage};
pub use committee::Committee;
pub use cqc::{QualityController, QueryFeatures};
pub use ipd::{IncentivePolicy, PayoffNormalizer};
pub use qss::QuerySetSelector;
pub use report::{CycleOutcome, SchemeReport};
pub use system::{
    CrowdLearnConfig, CrowdLearnSystem, CycleWork, IncentivePolicyKind, PostedQuery, StateError,
};
pub use trace::{CycleTrace, RunTrace};
