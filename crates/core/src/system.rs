//! The closed-loop CrowdLearn system (paper Figure 4).

use crate::report::{CycleOutcome, ImageOutcome};
use crate::{
    Calibrator, CalibratorConfig, Committee, IncentivePolicy, PayoffNormalizer, QualityController,
    QueriedImage, QuerySetSelector, SchemeReport,
};
use crowdlearn_bandit::{
    BanditConfig, CostedBandit, EpsilonGreedy, ExpWeights, FixedPolicy, PolicyState, RandomPolicy,
    UcbAlp,
};
use crowdlearn_classifiers::{profiles, ClassDistribution, Classifier, SimulatedExpert};
use crowdlearn_crowd::{
    IncentiveLevel, PendingHit, Platform, PlatformConfig, PlatformStats, QueryResponse, SubmitterId,
};
use crowdlearn_dataset::{
    DamageLabel, Dataset, LabeledImage, SensingCycle, SensingCycleStream, TemporalContext,
};
use serde::binary::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// Which incentive policy drives IPD — CrowdLearn proper uses
/// [`IncentivePolicyKind::UcbAlp`]; the others are the Figure 8 comparisons
/// and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncentivePolicyKind {
    /// The constrained contextual bandit (UCB + adaptive LP) of §IV-B.
    UcbAlp,
    /// Budget-aware contextual ε-greedy (ablation).
    EpsilonGreedy,
    /// Fixed incentive: the largest level affordable at `budget / horizon`
    /// per query (the paper's fixed baseline).
    FixedMax,
    /// Uniformly random affordable incentives.
    Random,
}

/// Full configuration of a CrowdLearn run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdLearnConfig {
    /// Images sent to the crowd per sensing cycle (paper: 5 of 10).
    pub queries_per_cycle: usize,
    /// QSS exploration rate ε.
    pub epsilon: f64,
    /// Hedge learning rate for MIC's expert-weight updates.
    pub hedge_eta: f64,
    /// Total crowd budget for the evaluation run, in cents.
    pub budget_cents: f64,
    /// Expected total number of queries (the bandit horizon `T`).
    pub horizon_queries: u64,
    /// The incentive policy driving IPD.
    pub policy: IncentivePolicyKind,
    /// Which MIC strategies are active.
    pub calibration: CalibratorConfig,
    /// Bandit warm-up observations per (context, incentive) cell, taken on
    /// training images before the evaluation run (the paper trains IPD on
    /// the training split).
    pub warmup_per_cell: usize,
    /// Training-split queries used to fit the CQC boosting model.
    pub cqc_training_queries: usize,
    /// Seconds of per-cycle overhead for the QSS/IPD/CQC/MIC modules
    /// (calibrated so Table III's CrowdLearn algorithm delay ≈ 55.62 s).
    pub module_overhead_secs: f64,
    /// Optional actionability deadline, in seconds: a crowd answer can only
    /// *offload* (replace the AI label of) its image if it arrives within
    /// this window — a late answer still trains CQC-facing feedback paths
    /// (weight updates, retraining) but the cycle's labels have already been
    /// delegated to responders (paper Definition 1: a sensing cycle lasts 10
    /// minutes). `None` (the paper evaluation's setting, where all measured
    /// delays fit the cycle) disables the cutoff.
    pub offload_deadline_secs: Option<f64>,
    /// Seed for QSS/committee randomness.
    pub seed: u64,
    /// Seed for the simulated platform.
    pub platform_seed: u64,
}

impl CrowdLearnConfig {
    /// The paper's evaluation setup: 5 queries per 10-image cycle, a 200
    /// query horizon (40 cycles), a $10 crowd budget, and all calibration
    /// strategies on.
    pub fn paper() -> Self {
        Self {
            queries_per_cycle: 5,
            epsilon: 0.2,
            hedge_eta: 0.1,
            budget_cents: 1000.0,
            horizon_queries: 200,
            policy: IncentivePolicyKind::UcbAlp,
            calibration: CalibratorConfig::paper(),
            warmup_per_cell: 12,
            cqc_training_queries: 1120,
            module_overhead_secs: 3.05,
            offload_deadline_secs: None,
            seed: 0xc0ffee,
            platform_seed: 0x5eed,
        }
    }

    /// Sets the number of crowd queries per cycle (Figure 9 sweep), scaling
    /// the bandit horizon and the budget so the per-query budget share stays
    /// at the paper's default (5 cents over a 40-cycle run). Override the
    /// budget afterwards with [`CrowdLearnConfig::with_budget_cents`] if a
    /// different share is wanted.
    pub fn with_queries_per_cycle(mut self, n: usize) -> Self {
        self.queries_per_cycle = n;
        self.horizon_queries = (40 * n).max(1) as u64;
        self.budget_cents = (200 * n) as f64;
        self
    }

    /// Sets the total budget in cents (Figures 10-11 sweep).
    pub fn with_budget_cents(mut self, cents: f64) -> Self {
        self.budget_cents = cents;
        self
    }

    /// Sets the incentive policy (Figure 8 comparison).
    pub fn with_policy(mut self, policy: IncentivePolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the MIC strategy switches (ablations).
    pub fn with_calibration(mut self, calibration: CalibratorConfig) -> Self {
        self.calibration = calibration;
        self
    }

    /// Sets the QSS exploration rate (ablation).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the offload-actionability deadline (see the field docs).
    pub fn with_offload_deadline_secs(mut self, deadline: Option<f64>) -> Self {
        self.offload_deadline_secs = deadline;
        self
    }

    /// Sets both RNG seeds from one value (repeated-trial decorrelation).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.platform_seed = seed.wrapping_mul(0x9e37_79b9).wrapping_add(1);
        self
    }

    /// The non-panicking form of [`CrowdLearnConfig::validate`] — the
    /// decode path re-checks the same invariants without asserting.
    fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.epsilon)
            && self.hedge_eta.is_finite()
            && self.hedge_eta > 0.0
            && self.budget_cents.is_finite()
            && self.budget_cents >= 0.0
            && self.horizon_queries > 0
            && self.module_overhead_secs.is_finite()
            && self.module_overhead_secs >= 0.0
            && self
                .offload_deadline_secs
                .is_none_or(|d| d.is_finite() && d > 0.0)
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.epsilon),
            "epsilon must be in [0, 1]"
        );
        assert!(self.hedge_eta > 0.0, "hedge eta must be positive");
        assert!(self.budget_cents >= 0.0, "budget must be non-negative");
        assert!(self.horizon_queries > 0, "horizon must be positive");
        assert!(
            self.module_overhead_secs >= 0.0,
            "module overhead must be non-negative"
        );
        if let Some(d) = self.offload_deadline_secs {
            assert!(d > 0.0, "offload deadline must be positive");
        }
    }
}

impl Default for CrowdLearnConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl Encode for IncentivePolicyKind {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            IncentivePolicyKind::UcbAlp => 0,
            IncentivePolicyKind::EpsilonGreedy => 1,
            IncentivePolicyKind::FixedMax => 2,
            IncentivePolicyKind::Random => 3,
        };
        tag.encode(out);
    }
}

impl Decode for IncentivePolicyKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(IncentivePolicyKind::UcbAlp),
            1 => Ok(IncentivePolicyKind::EpsilonGreedy),
            2 => Ok(IncentivePolicyKind::FixedMax),
            3 => Ok(IncentivePolicyKind::Random),
            _ => Err(DecodeError::Invalid),
        }
    }
}

impl Encode for CrowdLearnConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.queries_per_cycle.encode(out);
        self.epsilon.encode(out);
        self.hedge_eta.encode(out);
        self.budget_cents.encode(out);
        self.horizon_queries.encode(out);
        self.policy.encode(out);
        self.calibration.encode(out);
        self.warmup_per_cell.encode(out);
        self.cqc_training_queries.encode(out);
        self.module_overhead_secs.encode(out);
        self.offload_deadline_secs.encode(out);
        self.seed.encode(out);
        self.platform_seed.encode(out);
    }
}

impl Decode for CrowdLearnConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let config = Self {
            queries_per_cycle: usize::decode(r)?,
            epsilon: f64::decode(r)?,
            hedge_eta: f64::decode(r)?,
            budget_cents: f64::decode(r)?,
            horizon_queries: u64::decode(r)?,
            policy: IncentivePolicyKind::decode(r)?,
            calibration: CalibratorConfig::decode(r)?,
            warmup_per_cell: usize::decode(r)?,
            cqc_training_queries: usize::decode(r)?,
            module_overhead_secs: f64::decode(r)?,
            offload_deadline_secs: Option::<f64>::decode(r)?,
            seed: u64::decode(r)?,
            platform_seed: u64::decode(r)?,
        };
        if !config.is_valid() {
            return Err(DecodeError::Invalid);
        }
        Ok(config)
    }
}

/// A crowd query posted by [`CrowdLearnSystem::post_next_query`] (or
/// reposted by [`CrowdLearnSystem::repost_query`]) whose answer has not yet
/// been absorbed. The caller decides *when* the answer is observed: the
/// blocking loop awaits it immediately, an event-driven runtime schedules it
/// at `now + pending.completion_delay_secs()`.
#[derive(Debug, Clone, PartialEq)]
pub struct PostedQuery {
    /// Index of the queried image within its sensing cycle.
    pub image_index: usize,
    /// The incentive paid.
    pub incentive: IncentiveLevel,
    /// The posted HIT, carrying the eventual worker responses and the
    /// virtual delay until they are complete.
    pub pending: PendingHit,
}

/// In-progress state of one sensing cycle, produced by
/// [`CrowdLearnSystem::start_cycle`] and driven to a [`CycleOutcome`] by the
/// reentrant stage methods. Multiple `CycleWork` values may be live at once
/// (the pipelined runtime overlaps cycles); each one only touches shared
/// module state (QSS/IPD/CQC/MIC) through the system methods it is passed
/// to, so interleavings stay deterministic for a fixed event order.
#[derive(Debug, Clone)]
pub struct CycleWork {
    cycle_index: usize,
    context: TemporalContext,
    member_votes: Vec<Vec<ClassDistribution>>,
    picked: Vec<usize>,
    next_pick: usize,
    budget_exhausted: bool,
    truthful: Vec<(usize, ClassDistribution)>,
    in_time: Vec<bool>,
    query_delays: Vec<f64>,
    spent_cents: u64,
    outstanding: usize,
}

impl CycleWork {
    /// The sensing cycle this work belongs to.
    pub fn cycle_index(&self) -> usize {
        self.cycle_index
    }

    /// The cycle's temporal context.
    pub fn context(&self) -> TemporalContext {
        self.context
    }

    /// Queries posted but not yet absorbed.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Whether no further queries will be posted (query set exhausted or
    /// budget denied) — reposts of outstanding queries may still happen.
    pub fn posting_done(&self) -> bool {
        self.budget_exhausted || self.next_pick >= self.picked.len()
    }

    /// Whether the cycle is ready for [`CrowdLearnSystem::finalize_cycle`]:
    /// nothing left to post and every posted query absorbed.
    pub fn is_drained(&self) -> bool {
        self.posting_done() && self.outstanding == 0
    }

    /// Crowd answers absorbed so far.
    pub fn answers_absorbed(&self) -> usize {
        self.truthful.len()
    }

    /// Cents spent on this cycle's posts (including reposts) so far.
    pub fn spent_cents(&self) -> u64 {
        self.spent_cents
    }
}

// Snapshot codec: everything a live cycle carries, so a checkpointed runtime
// can park in-flight cycles mid-crowd-wait and resume them byte-identically.
impl Encode for CycleWork {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cycle_index.encode(out);
        self.context.encode(out);
        self.member_votes.encode(out);
        self.picked.encode(out);
        self.next_pick.encode(out);
        self.budget_exhausted.encode(out);
        self.truthful.encode(out);
        self.in_time.encode(out);
        self.query_delays.encode(out);
        self.spent_cents.encode(out);
        self.outstanding.encode(out);
    }
}

impl Decode for CycleWork {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let work = Self {
            cycle_index: usize::decode(r)?,
            context: TemporalContext::decode(r)?,
            member_votes: Vec::<Vec<ClassDistribution>>::decode(r)?,
            picked: Vec::<usize>::decode(r)?,
            next_pick: usize::decode(r)?,
            budget_exhausted: bool::decode(r)?,
            truthful: Vec::<(usize, ClassDistribution)>::decode(r)?,
            in_time: Vec::<bool>::decode(r)?,
            query_delays: Vec::<f64>::decode(r)?,
            spent_cents: u64::decode(r)?,
            outstanding: usize::decode(r)?,
        };
        let images = work.member_votes.len();
        let valid = work.next_pick <= work.picked.len()
            && work.picked.iter().all(|&i| i < images)
            && work.truthful.iter().all(|(i, _)| *i < images)
            && work.in_time.len() == work.truthful.len()
            && work.query_delays.len() == work.truthful.len()
            && work.query_delays.iter().all(|d| d.is_finite() && *d >= 0.0);
        if !valid {
            return Err(DecodeError::Invalid);
        }
        Ok(work)
    }
}

/// Why a [`CrowdLearnSystem`] could not be serialized for a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// A committee member is not a [`SimulatedExpert`] and has no
    /// serialized form.
    UnsupportedClassifier,
    /// The incentive bandit does not support checkpointing (e.g. the
    /// ablation-only Thompson/Exp3 policies).
    UnsupportedPolicy,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::UnsupportedClassifier => {
                write!(f, "committee member has no serialized form")
            }
            StateError::UnsupportedPolicy => {
                write!(f, "incentive bandit does not support checkpointing")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// The assembled CrowdLearn system: committee + QSS + IPD + CQC + MIC over a
/// simulated platform. See the crate docs for the per-cycle workflow.
pub struct CrowdLearnSystem {
    config: CrowdLearnConfig,
    committee: Committee,
    qss: QuerySetSelector,
    ipd: IncentivePolicy,
    cqc: QualityController,
    calibrator: Calibrator,
    platform: Platform,
    bootstrap_spent_cents: u64,
}

impl CrowdLearnSystem {
    /// Boots the system: trains the committee on the training split, fits
    /// CQC on training-split crowd responses, and warms up the incentive
    /// bandit — exactly the three uses the paper assigns to its training
    /// set (§V-B).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the dataset's training
    /// split is empty.
    pub fn new(dataset: &Dataset, config: CrowdLearnConfig) -> Self {
        let platform = PlatformConfig::paper().with_seed(config.platform_seed);
        Self::with_platform_config(dataset, config, platform)
    }

    /// [`CrowdLearnSystem::new`] under an explicit crowd-platform
    /// configuration — a custom delay surface (e.g. the adaptive-window
    /// bench's stable/bursty profiles), pool size, or churn rate. `new`
    /// delegates here with `PlatformConfig::paper().with_seed(config.platform_seed)`,
    /// so the two are byte-identical on the paper platform.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid or the dataset's training
    /// split is empty.
    pub fn with_platform_config(
        dataset: &Dataset,
        config: CrowdLearnConfig,
        platform: PlatformConfig,
    ) -> Self {
        Self::with_platform(dataset, config, Platform::new(platform))
    }

    /// [`CrowdLearnSystem::new`] over an already-booted [`Platform`] —
    /// the hook for explicit worker pools ([`Platform::with_pool`]), e.g.
    /// uniform-speed populations that make crowd delays exactly equal to
    /// the delay-table means in boundary tests.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the dataset's training
    /// split is empty.
    pub fn with_platform(
        dataset: &Dataset,
        config: CrowdLearnConfig,
        mut platform: Platform,
    ) -> Self {
        config.validate();
        assert!(
            !dataset.train().is_empty(),
            "training split must be non-empty"
        );

        // 1. Train the committee experts on ground-truth labels.
        let train: Vec<LabeledImage> = dataset
            .train()
            .iter()
            .cloned()
            .map(LabeledImage::ground_truth)
            .collect();
        let members: Vec<Box<dyn Classifier>> = profiles::paper_committee(config.seed)
            .into_iter()
            .map(|mut e| {
                e.retrain(&train);
                Box::new(e) as Box<dyn Classifier>
            })
            .collect();
        let committee = Committee::new(members, config.hedge_eta);

        // 2. Fit CQC on crowd responses over training images (truth known).
        let mut cqc = QualityController::paper();
        let mut cqc_examples = Vec::with_capacity(config.cqc_training_queries);
        for i in 0..config.cqc_training_queries {
            let img = &dataset.train()[i % dataset.train().len()];
            let context = TemporalContext::from_index(i % TemporalContext::COUNT);
            let level = IncentiveLevel::from_index((i / 3) % IncentiveLevel::COUNT);
            let resp = platform.submit(img, level, context);
            cqc_examples.push((resp, img.truth()));
        }
        if !cqc_examples.is_empty() {
            cqc.train(&cqc_examples);
        }

        // 3. Build the incentive bandit and warm it up with observed delays
        //    from the training split (observations are free of budget).
        // The paper's temporal contexts are uniform by construction (10
        // cycles each), so the bandit is told so; otherwise the block
        // ordering of contexts would poison its empirical estimate.
        let bandit_config = BanditConfig::new(
            TemporalContext::COUNT,
            IncentiveLevel::costs(),
            config.budget_cents,
            config.horizon_queries,
        )
        .with_context_distribution(vec![
            1.0 / TemporalContext::COUNT as f64;
            TemporalContext::COUNT
        ]);
        let bandit: Box<dyn CostedBandit> = match config.policy {
            IncentivePolicyKind::UcbAlp => Box::new(UcbAlp::new(bandit_config, config.seed ^ 0xa1)),
            IncentivePolicyKind::EpsilonGreedy => {
                Box::new(EpsilonGreedy::new(bandit_config, 0.1, config.seed ^ 0xa2))
            }
            IncentivePolicyKind::FixedMax => Box::new(FixedPolicy::max_affordable(bandit_config)),
            IncentivePolicyKind::Random => {
                Box::new(RandomPolicy::new(bandit_config, config.seed ^ 0xa3))
            }
        };
        let mut ipd = IncentivePolicy::new(bandit, PayoffNormalizer::paper());
        let mut warm_i = 0usize;
        for _ in 0..config.warmup_per_cell {
            for &context in &TemporalContext::ALL {
                for &level in &IncentiveLevel::ALL {
                    let img = &dataset.train()[warm_i % dataset.train().len()];
                    warm_i += 1;
                    let resp = platform.submit(img, level, context);
                    ipd.report_delay(context, level, resp.completion_delay_secs);
                }
            }
        }

        let bootstrap_spent_cents = platform.spent_cents();
        Self {
            qss: QuerySetSelector::new(config.epsilon, config.seed ^ 0x9557),
            calibrator: Calibrator::new(config.calibration),
            committee,
            ipd,
            cqc,
            platform,
            bootstrap_spent_cents,
            config,
        }
    }

    /// The committee's current Hedge weights.
    pub fn committee_weights(&self) -> &[f64] {
        self.committee.weights()
    }

    /// Crowd budget still available for the evaluation run, in cents.
    pub fn remaining_budget_cents(&self) -> f64 {
        self.ipd.remaining_budget_cents()
    }

    /// Removes up to `cents` from the incentive bandit's remaining budget —
    /// the fault-injection `BudgetShock` path (a sponsor pulling funds or a
    /// platform reversing a refund mid-run). Returns the amount actually
    /// clawed back; the ledger clamps at zero, and the learner's statistics
    /// are untouched, so the policy simply paces against the smaller budget
    /// from its next selection.
    ///
    /// # Panics
    ///
    /// Panics if `cents` is negative or not finite.
    pub fn clawback_budget_cents(&mut self, cents: f64) -> f64 {
        self.ipd.clawback_cents(cents)
    }

    /// Cents spent on evaluation queries so far (bootstrap spending on the
    /// training split is excluded, as in the paper).
    pub fn evaluation_spent_cents(&self) -> u64 {
        self.platform.spent_cents() - self.bootstrap_spent_cents
    }

    /// The active configuration.
    pub fn config(&self) -> &CrowdLearnConfig {
        &self.config
    }

    /// Total delay observations fed to the incentive learner so far (both
    /// the absorb path and the censored timeout path) — exposed so runtimes
    /// can assert exactly-one-observation-per-attempt accounting.
    pub fn delay_observations(&self) -> u64 {
        self.ipd.observations()
    }

    /// Declares the [`SubmitterId`] the platform books subsequent posts
    /// against — a fleet orchestrator tags each shard's system with the
    /// shard index at boot so [`CrowdLearnSystem::platform_stats`] exposes
    /// per-shard worker-seconds attribution. Attribution only; no RNG draw
    /// or behavioral change.
    pub fn set_platform_submitter(&mut self, submitter: SubmitterId) {
        self.platform.set_submitter(submitter);
    }

    /// The platform's accounting breakdown (queries vs reposts per
    /// context/incentive cell, per-submitter worker-seconds and spend).
    pub fn platform_stats(&self) -> &PlatformStats {
        self.platform.stats()
    }

    /// Appends the system's complete learning state to `out`: the committee
    /// members and Hedge weights, the QSS and platform RNGs, the incentive
    /// bandit with its budget ledger, CQC's trained model, and the bootstrap
    /// spending baseline. [`CrowdLearnSystem::decode_state`] rebuilds an
    /// equivalent system that continues byte-identically — no dataset or
    /// re-bootstrapping needed.
    pub fn encode_state(&self, out: &mut Vec<u8>) -> Result<(), StateError> {
        let members = self
            .committee
            .simulated_members()
            .ok_or(StateError::UnsupportedClassifier)?;
        let policy = self.ipd.save_state().ok_or(StateError::UnsupportedPolicy)?;
        self.config.encode(out);
        members.encode(out);
        self.committee.hedge().encode(out);
        self.qss.encode(out);
        policy.encode(out);
        self.ipd.normalizer().encode(out);
        self.ipd.observations().encode(out);
        self.cqc.encode(out);
        self.platform.encode(out);
        self.bootstrap_spent_cents.encode(out);
        Ok(())
    }

    /// Rebuilds a system from [`CrowdLearnSystem::encode_state`] bytes. All
    /// constructor invariants are re-checked; violations surface as
    /// [`DecodeError::Invalid`] rather than panics.
    pub fn decode_state(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let config = CrowdLearnConfig::decode(r)?;
        let members = Vec::<SimulatedExpert>::decode(r)?;
        let hedge = ExpWeights::decode(r)?;
        if members.is_empty() || members.len() != hedge.len() {
            return Err(DecodeError::Invalid);
        }
        let qss = QuerySetSelector::decode(r)?;
        let policy = PolicyState::decode(r)?;
        if policy.config().actions() != IncentiveLevel::COUNT
            || policy.config().contexts() != TemporalContext::COUNT
        {
            return Err(DecodeError::Invalid);
        }
        let normalizer = PayoffNormalizer::decode(r)?;
        let observations = u64::decode(r)?;
        let cqc = QualityController::decode(r)?;
        let platform = Platform::decode(r)?;
        let bootstrap_spent_cents = u64::decode(r)?;

        let boxed: Vec<Box<dyn Classifier>> = members
            .into_iter()
            .map(|e| Box::new(e) as Box<dyn Classifier>)
            .collect();
        Ok(Self {
            calibrator: Calibrator::new(config.calibration),
            committee: Committee::from_parts(boxed, hedge),
            qss,
            ipd: IncentivePolicy::from_parts(policy.into_bandit(), normalizer, observations),
            cqc,
            platform,
            bootstrap_spent_cents,
            config,
        })
    }

    /// Starts a sensing cycle: computes (and caches) the committee's votes,
    /// runs QSS over the vote entropies, and returns the [`CycleWork`] that
    /// the other stage methods ([`CrowdLearnSystem::post_next_query`],
    /// [`CrowdLearnSystem::absorb_answer`],
    /// [`CrowdLearnSystem::finalize_cycle`]) drive to completion.
    ///
    /// The staged API exists so an event-driven runtime can interleave
    /// several cycles' crowd waits; [`CrowdLearnSystem::run_cycle`] is the
    /// blocking composition of the same four stages.
    pub fn start_cycle(&mut self, cycle: &SensingCycle, dataset: &Dataset) -> CycleWork {
        let images = cycle.images(dataset);

        // Expert votes are computed once per cycle and cached: final labels
        // mix these cached votes under the *updated* weights (the paper uses
        // updated weights for the current cycle's labels, but retrained
        // models only from the next cycle on). The batch path gathers the
        // cycle's visual evidence once and shares it across every member —
        // bit-identical to per-image `votes` (see `Committee::votes_batch`).
        let member_votes: Vec<Vec<ClassDistribution>> = self.committee.votes_batch(&images);
        let weights_now = self.committee.weights().to_vec();
        let entropies: Vec<f64> = member_votes
            .iter()
            .map(|votes| {
                ClassDistribution::weighted_mixture(weights_now.iter().copied().zip(votes.iter()))
                    .entropy()
            })
            .collect();

        // ① QSS selects the query set.
        let picked = self.qss.select(&entropies, self.config.queries_per_cycle);

        CycleWork {
            cycle_index: cycle.index,
            context: cycle.context,
            member_votes,
            picked,
            next_pick: 0,
            budget_exhausted: false,
            truthful: Vec::new(),
            in_time: Vec::new(),
            query_delays: Vec::new(),
            spent_cents: 0,
            outstanding: 0,
        }
    }

    /// ② Posts the cycle's next crowd query: IPD chooses an incentive
    /// (charging the budget) and the platform posts the HIT. Returns `None`
    /// when the query set is exhausted or the budget cannot afford another
    /// query (remaining picks then stay AI-labeled, as in the paper).
    pub fn post_next_query(
        &mut self,
        work: &mut CycleWork,
        cycle: &SensingCycle,
        dataset: &Dataset,
    ) -> Option<PostedQuery> {
        assert_eq!(work.cycle_index, cycle.index, "cycle/work mismatch");
        if work.budget_exhausted || work.next_pick >= work.picked.len() {
            return None;
        }
        let Some(level) = self.ipd.choose(work.context) else {
            work.budget_exhausted = true;
            return None;
        };
        let idx = work.picked[work.next_pick];
        work.next_pick += 1;
        let images = cycle.images(dataset);
        let pending = self.platform.post(images[idx], level, work.context);
        work.outstanding += 1;
        work.spent_cents += u64::from(level.cents());
        Some(PostedQuery {
            image_index: idx,
            incentive: level,
            pending,
        })
    }

    /// Reposts an already-posted query at a (typically escalated) incentive
    /// after its HIT timed out. The cost is force-charged to the same IPD
    /// budget that [`CrowdLearnSystem::post_next_query`] draws from; returns
    /// `None` without posting when the budget cannot afford it. The original
    /// attempt keeps its outstanding slot — exactly one answer per posted
    /// query is eventually absorbed.
    pub fn repost_query(
        &mut self,
        work: &mut CycleWork,
        cycle: &SensingCycle,
        dataset: &Dataset,
        image_index: usize,
        level: IncentiveLevel,
    ) -> Option<PostedQuery> {
        assert_eq!(work.cycle_index, cycle.index, "cycle/work mismatch");
        assert!(work.outstanding > 0, "no outstanding query to repost");
        if !self.ipd.try_charge(level) {
            return None;
        }
        let images = cycle.images(dataset);
        // Booked as a repost: the platform draws the identical worker
        // outcome but keeps the retry out of the logical query tally.
        let pending = self
            .platform
            .repost(images[image_index], level, work.context);
        work.spent_cents += u64::from(level.cents());
        Some(PostedQuery {
            image_index,
            incentive: level,
            pending,
        })
    }

    /// Whether a crowd answer arrived in time to *offload* (replace the AI
    /// label of) its image, per `config.offload_deadline_secs`.
    pub fn answer_is_timely(&self, response: &QueryResponse) -> bool {
        self.config
            .offload_deadline_secs
            .is_none_or(|d| response.completion_delay_secs <= d)
    }

    /// ③ Absorbs one crowd answer: IPD learns the observed delay and CQC
    /// distills the truthful label distribution. `timely` gates whether the
    /// answer may offload its image at finalization — a late answer still
    /// feeds weight updates and retraining (see
    /// [`CrowdLearnConfig::offload_deadline_secs`]).
    pub fn absorb_answer(
        &mut self,
        work: &mut CycleWork,
        image_index: usize,
        response: &QueryResponse,
        timely: bool,
    ) {
        assert!(work.outstanding > 0, "no outstanding query to absorb");
        work.outstanding -= 1;
        self.ipd.report_delay(
            work.context,
            response.incentive,
            response.completion_delay_secs,
        );
        work.query_delays.push(response.completion_delay_secs);
        work.in_time.push(timely);
        work.truthful.push((image_index, self.cqc.infer(response)));
    }

    /// ③ (late variant) Absorbs the answer of a HIT whose censored delay
    /// observation (delay = the timeout) was already fed to IPD via
    /// [`CrowdLearnSystem::observe_crowd_delay`] at the timeout instant —
    /// the runtime's out-of-attempts path. Everything except the IPD report
    /// happens as in [`CrowdLearnSystem::absorb_answer`]: the cycle's delay
    /// statistics record the *true* completion delay, and the answer still
    /// feeds CQC/MIC, but it never offloads (`in_time = false`).
    pub fn absorb_late_answer(
        &mut self,
        work: &mut CycleWork,
        image_index: usize,
        response: &QueryResponse,
    ) {
        assert!(work.outstanding > 0, "no outstanding query to absorb");
        work.outstanding -= 1;
        work.query_delays.push(response.completion_delay_secs);
        work.in_time.push(false);
        work.truthful.push((image_index, self.cqc.infer(response)));
    }

    /// ③ (abandon variant) Retires one outstanding query *without* an
    /// answer: the runtime's answer-loss path, where a posted attempt is
    /// known to never come back and its censored delay observation (delay =
    /// the timeout) was already fed to IPD via
    /// [`CrowdLearnSystem::observe_crowd_delay`]. The image keeps its AI
    /// label at finalization exactly like a never-posted image — no delay
    /// statistic, no truthful inference, no weight update from this query.
    ///
    /// # Panics
    ///
    /// Panics if no query is outstanding.
    pub fn abandon_query(&mut self, work: &mut CycleWork) {
        assert!(work.outstanding > 0, "no outstanding query to abandon");
        work.outstanding -= 1;
    }

    /// Feeds a delay observation to IPD outside the absorb path — used by
    /// the runtime to report a censored observation (delay = the timeout)
    /// for a HIT that was abandoned and reposted.
    pub fn observe_crowd_delay(
        &mut self,
        context: TemporalContext,
        incentive: IncentiveLevel,
        delay_secs: f64,
    ) {
        self.ipd.report_delay(context, incentive, delay_secs);
    }

    /// Expected algorithm delay of a cycle (committee inference + module
    /// overhead) — what an event-driven runtime schedules `InferenceDone`
    /// with. Matches the `algorithm_delay_secs` the finalized
    /// [`CycleOutcome`] reports.
    pub fn algorithm_delay_secs(&self, batch: usize, cycle_index: u64) -> f64 {
        self.committee.execution_delay_secs(batch, cycle_index) + self.config.module_overhead_secs
    }

    /// ④ Finalizes a drained cycle: MIC updates the Hedge weights from the
    /// Eq. 5 losses, final labels are assembled (crowd answers offloading
    /// the timely-answered queries), and the committee retrains for the next
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics if posted queries are still outstanding.
    pub fn finalize_cycle(
        &mut self,
        work: CycleWork,
        cycle: &SensingCycle,
        dataset: &Dataset,
    ) -> CycleOutcome {
        assert_eq!(work.cycle_index, cycle.index, "cycle/work mismatch");
        assert_eq!(
            work.outstanding, 0,
            "cannot finalize a cycle with outstanding queries"
        );
        let images = cycle.images(dataset);
        let CycleWork {
            member_votes,
            truthful,
            in_time,
            query_delays,
            spent_cents,
            ..
        } = work;

        // ④ MIC: Hedge weight update from the Eq. 5 losses, scored on the
        // votes cached at `start_cycle` — under an inflight window > 1 an
        // overlapping cycle's retrain may already have landed, and the
        // committee must be judged on the votes that produced this cycle's
        // labels, not on re-predictions from a newer model.
        if self.calibrator.config().update_weights && !truthful.is_empty() {
            let queried: Vec<QueriedImage<'_>> = truthful
                .iter()
                .map(|(idx, dist)| QueriedImage {
                    image: images[*idx],
                    member_votes: &member_votes[*idx],
                    truthful: dist.clone(),
                })
                .collect();
            let losses = self.calibrator.expert_losses(&self.committee, &queried);
            self.committee.update_weights(&losses);
        }

        // Final labels: committee vote under updated weights, with crowd
        // offloading overriding the query set.
        let weights_updated = self.committee.weights().to_vec();
        let mut outcomes = Vec::with_capacity(images.len());
        for (i, img) in images.iter().enumerate() {
            let offloaded = self
                .calibrator
                .config()
                .offload
                .then(|| {
                    truthful
                        .iter()
                        .zip(&in_time)
                        .find(|((idx, _), _)| *idx == i)
                        .filter(|(_, &timely)| timely)
                        .map(|(t, _)| t)
                })
                .flatten();
            let distribution = match offloaded {
                Some((_, dist)) => dist.clone(),
                None => ClassDistribution::weighted_mixture(
                    weights_updated.iter().copied().zip(member_votes[i].iter()),
                ),
            };
            outcomes.push(ImageOutcome {
                image: img.id(),
                truth: img.truth(),
                predicted: distribution.argmax(),
                distribution,
                queried: truthful.iter().any(|(idx, _)| *idx == i),
            });
        }

        // ④ (continued) MIC: retrain the committee for the next cycle.
        if self.calibrator.config().retrain && !truthful.is_empty() {
            let samples: Vec<LabeledImage> = truthful
                .iter()
                .map(|(idx, dist)| LabeledImage::new(images[*idx].clone(), dist.argmax()))
                .collect();
            self.committee.retrain(&samples);
        }

        let algorithm_delay_secs = self
            .committee
            .execution_delay_secs(images.len(), cycle.index as u64)
            + self.config.module_overhead_secs;
        let crowd_delay_secs = if query_delays.is_empty() {
            None
        } else {
            Some(query_delays.iter().sum::<f64>() / query_delays.len() as f64)
        };

        CycleOutcome {
            cycle: cycle.index,
            context: cycle.context,
            images: outcomes,
            algorithm_delay_secs,
            crowd_delay_secs,
            query_delay_secs: query_delays,
            spent_cents,
        }
    }

    /// Runs one sensing cycle through the full QSS → IPD → crowd → CQC →
    /// MIC loop and returns the cycle's outcome.
    ///
    /// This is the blocking composition of the reentrant stages: each query
    /// waits out its full crowd delay before the next is posted.
    pub fn run_cycle(&mut self, cycle: &SensingCycle, dataset: &Dataset) -> CycleOutcome {
        let mut work = self.start_cycle(cycle, dataset);
        while let Some(posted) = self.post_next_query(&mut work, cycle, dataset) {
            let response = posted.pending.into_response();
            let timely = self.answer_is_timely(&response);
            self.absorb_answer(&mut work, posted.image_index, &response, timely);
        }
        self.finalize_cycle(work, cycle, dataset)
    }

    /// Runs the full stream and accumulates a [`SchemeReport`].
    pub fn run(&mut self, dataset: &Dataset, stream: &SensingCycleStream) -> SchemeReport {
        self.run_traced(dataset, stream).0
    }

    /// Runs the full stream, additionally recording the per-cycle trajectory
    /// (accuracy over time, weight evolution, spend pacing) as a
    /// [`crate::RunTrace`].
    pub fn run_traced(
        &mut self,
        dataset: &Dataset,
        stream: &SensingCycleStream,
    ) -> (SchemeReport, crate::RunTrace) {
        let mut report = SchemeReport::new("CrowdLearn");
        let mut trace = crate::RunTrace::new();
        for cycle in stream {
            let outcome = self.run_cycle(cycle, dataset);
            let correct = outcome
                .images
                .iter()
                .filter(|img| img.predicted == img.truth)
                .count();
            trace.push(crate::CycleTrace {
                cycle: outcome.cycle,
                context: outcome.context,
                accuracy: correct as f64 / outcome.images.len().max(1) as f64,
                queries: outcome.images.iter().filter(|img| img.queried).count(),
                crowd_delay_secs: outcome.crowd_delay_secs,
                spent_cents: outcome.spent_cents,
                committee_weights: self.committee.weights().to_vec(),
            });
            report.record_cycle(&outcome);
        }
        (report, trace)
    }

    /// Convenience accessor for truth labels of a cycle (test support).
    pub fn truth_of(dataset: &Dataset, cycle: &SensingCycle) -> Vec<DamageLabel> {
        cycle.images(dataset).iter().map(|i| i.truth()).collect()
    }
}

impl std::fmt::Debug for CrowdLearnSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrowdLearnSystem")
            .field("config", &self.config)
            .field("committee", &self.committee)
            .field("remaining_budget_cents", &self.remaining_budget_cents())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdlearn_dataset::DatasetConfig;

    fn paper_run(config: CrowdLearnConfig) -> SchemeReport {
        let dataset = Dataset::generate(&DatasetConfig::paper());
        let stream = SensingCycleStream::paper(&dataset);
        let mut system = CrowdLearnSystem::new(&dataset, config);
        system.run(&dataset, &stream)
    }

    #[test]
    fn paper_run_hits_table2_band() {
        let report = paper_run(CrowdLearnConfig::paper());
        // Paper Table II: CrowdLearn accuracy 0.877, F1 0.894. The
        // multi-seed mean of this reproduction is 0.842 (see
        // `crowdlearn-bench --bin calibrate`); the band below admits the
        // per-seed spread around it.
        assert!(
            (report.accuracy() - 0.877).abs() < 0.062,
            "accuracy {} outside Table II band",
            report.accuracy()
        );
        assert!(
            report.macro_f1() > 0.82,
            "macro F1 {} too low",
            report.macro_f1()
        );
        assert_eq!(report.cycles, 40);
        assert_eq!(report.queries_issued, 200);
    }

    #[test]
    fn budget_is_never_exceeded() {
        let config = CrowdLearnConfig::paper().with_budget_cents(300.0);
        let dataset = Dataset::generate(&DatasetConfig::paper());
        let stream = SensingCycleStream::paper(&dataset);
        let mut system = CrowdLearnSystem::new(&dataset, config);
        let report = system.run(&dataset, &stream);
        assert!(
            report.spent_cents as f64 <= 300.0 + 1e-9,
            "spent {} cents of 300",
            report.spent_cents
        );
    }

    #[test]
    fn zero_queries_degrades_to_pure_committee() {
        let report = paper_run(CrowdLearnConfig::paper().with_queries_per_cycle(0));
        assert_eq!(report.queries_issued, 0);
        assert_eq!(report.spent_cents, 0);
        // Figure 9: at 0% query set CrowdLearn degrades to Ensemble-level
        // accuracy (~0.815).
        assert!(
            (report.accuracy() - 0.815).abs() < 0.06,
            "0-query accuracy {} should be ensemble-like",
            report.accuracy()
        );
    }

    #[test]
    fn more_queries_help() {
        let low = paper_run(CrowdLearnConfig::paper().with_queries_per_cycle(1));
        let high = paper_run(CrowdLearnConfig::paper().with_queries_per_cycle(8));
        assert!(
            high.accuracy() > low.accuracy(),
            "8 queries ({}) must beat 1 query ({})",
            high.accuracy(),
            low.accuracy()
        );
    }

    #[test]
    fn hedge_weights_favor_the_strongest_expert() {
        let dataset = Dataset::generate(&DatasetConfig::paper());
        let stream = SensingCycleStream::paper(&dataset);
        let mut system = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());
        system.run(&dataset, &stream);
        let weights = system.committee_weights();
        // Member order: VGG16, BoVW, DDM; DDM is the most accurate expert.
        assert!(
            weights[2] > weights[1],
            "DDM must out-weigh BoVW after a full run: {weights:?}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = paper_run(CrowdLearnConfig::paper());
        let b = paper_run(CrowdLearnConfig::paper());
        assert_eq!(a.confusion, b.confusion);
        assert_eq!(a.spent_cents, b.spent_cents);
    }

    #[test]
    fn start_cycle_caches_bit_exact_scalar_votes() {
        // The cached `CycleWork::member_votes` now come from the batch path;
        // they must carry the exact bits of the per-image `Committee::votes`
        // (everything downstream — QSS ranking, Eq. 5 losses, final labels —
        // reads these).
        let dataset = Dataset::generate(&DatasetConfig::paper());
        let stream = SensingCycleStream::paper(&dataset);
        let mut system = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());
        let cycle = stream.iter().next().expect("paper stream has cycles");
        let work = system.start_cycle(cycle, &dataset);
        for (img, cached) in cycle.images(&dataset).iter().zip(&work.member_votes) {
            let scalar = system.committee.votes(img);
            assert_eq!(cached.len(), scalar.len());
            for (c, s) in cached.iter().zip(&scalar) {
                for (pc, ps) in c.probs().iter().zip(s.probs()) {
                    assert_eq!(pc.to_bits(), ps.to_bits());
                }
            }
        }
    }

    #[test]
    fn impossible_deadline_disables_offloading_but_not_learning() {
        let strict = paper_run(CrowdLearnConfig::paper().with_offload_deadline_secs(Some(1.0)));
        let relaxed = paper_run(CrowdLearnConfig::paper());
        // With a 1-second deadline no crowd answer is actionable, so the
        // output degrades toward committee-only accuracy...
        assert!(strict.accuracy() < relaxed.accuracy());
        // ...but queries are still issued, paid for, and learned from.
        assert_eq!(strict.queries_issued, 200);
        assert!(strict.spent_cents > 0);
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let generous = paper_run(CrowdLearnConfig::paper().with_offload_deadline_secs(Some(1e9)));
        let unlimited = paper_run(CrowdLearnConfig::paper());
        assert_eq!(generous.confusion, unlimited.confusion);
    }

    #[test]
    fn traced_runs_expose_the_cycle_trajectory() {
        let dataset = Dataset::generate(&DatasetConfig::paper());
        let stream = SensingCycleStream::paper(&dataset);
        let mut system = CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper());
        let (report, trace) = system.run_traced(&dataset, &stream);
        assert_eq!(trace.cycles().len(), 40);
        // The trace's mean accuracy equals the report's overall accuracy
        // (all cycles are the same size).
        let mean: f64 = trace.cycles().iter().map(|c| c.accuracy).sum::<f64>() / 40.0;
        assert!((mean - report.accuracy()).abs() < 1e-9);
        // Spend pacing reconciles with the report.
        assert_eq!(
            *trace
                .cumulative_spend_cents()
                .last()
                .expect("trace covers at least one cycle"),
            report.spent_cents
        );
        assert_eq!(trace.windowed_accuracy(5).len(), 40);
    }

    #[test]
    fn tiny_budget_still_produces_labels_for_every_image() {
        let report = paper_run(CrowdLearnConfig::paper().with_budget_cents(20.0));
        assert_eq!(report.confusion.total(), 400);
        assert!(report.spent_cents <= 20);
    }

    #[test]
    fn state_codec_resumes_mid_run_identically() {
        let dataset = Dataset::generate(&DatasetConfig::paper());
        let stream = SensingCycleStream::paper(&dataset);
        let mut config = CrowdLearnConfig::paper();
        config.cqc_training_queries = 200;
        config.warmup_per_cell = 2;
        let mut system = CrowdLearnSystem::new(&dataset, config);
        let cycles: Vec<_> = stream.into_iter().collect();
        for cycle in &cycles[..8] {
            system.run_cycle(cycle, &dataset);
        }

        let mut bytes = Vec::new();
        system.encode_state(&mut bytes).expect("checkpointable");
        let mut resumed =
            CrowdLearnSystem::decode_state(&mut Reader::new(&bytes)).expect("state round trip");

        for cycle in &cycles[8..16] {
            let a = system.run_cycle(cycle, &dataset);
            let b = resumed.run_cycle(cycle, &dataset);
            assert_eq!(a, b, "cycle {} diverged after resume", cycle.index);
        }
        assert_eq!(
            system.remaining_budget_cents(),
            resumed.remaining_budget_cents()
        );
        assert_eq!(system.delay_observations(), resumed.delay_observations());
        assert_eq!(system.committee_weights(), resumed.committee_weights());
    }

    #[test]
    fn state_codec_rejects_truncation() {
        let dataset = Dataset::generate(&DatasetConfig::paper());
        let mut config = CrowdLearnConfig::paper();
        config.cqc_training_queries = 50;
        config.warmup_per_cell = 1;
        let system = CrowdLearnSystem::new(&dataset, config);
        let mut bytes = Vec::new();
        system.encode_state(&mut bytes).expect("checkpointable");
        let truncated = &bytes[..bytes.len() / 2];
        assert!(CrowdLearnSystem::decode_state(&mut Reader::new(truncated)).is_err());
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1]")]
    fn invalid_epsilon_rejected() {
        let dataset = Dataset::generate(&DatasetConfig::paper());
        CrowdLearnSystem::new(&dataset, CrowdLearnConfig::paper().with_epsilon(2.0));
    }
}
