//! Incentive Policy Design (paper §IV-B): the CCMB mapping between the
//! crowdsourcing platform and the bandit substrate.

use crowdlearn_bandit::{CostedBandit, PolicyState};
use crowdlearn_crowd::IncentiveLevel;
use crowdlearn_dataset::TemporalContext;
use serde::binary::{Decode, DecodeError, Encode, Reader};

/// Maps raw crowd delays to the bandit's `[0, 1]` payoff scale.
///
/// The paper defines payoff as "the additive inverse of the average delay of
/// the query answers" (Definition 12); normalizing by a delay ceiling keeps
/// payoffs inside the `[0, 1]` range UCB-style confidence bounds expect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayoffNormalizer {
    ceiling_secs: f64,
}

impl PayoffNormalizer {
    /// Creates a normalizer; `ceiling_secs` should be an upper bound on
    /// plausible query delays (delays above it clamp to payoff 0).
    ///
    /// # Panics
    ///
    /// Panics if `ceiling_secs` is not positive.
    pub fn new(ceiling_secs: f64) -> Self {
        assert!(ceiling_secs > 0.0, "ceiling must be positive");
        Self { ceiling_secs }
    }

    /// A ceiling comfortably above the slowest pilot-study cell.
    pub fn paper() -> Self {
        Self::new(1800.0)
    }

    /// The delay ceiling in seconds.
    pub fn ceiling_secs(&self) -> f64 {
        self.ceiling_secs
    }

    /// Payoff of a delay: `1 - delay / ceiling`, clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `delay_secs` is negative or NaN.
    pub fn payoff(&self, delay_secs: f64) -> f64 {
        assert!(
            delay_secs >= 0.0 && !delay_secs.is_nan(),
            "delay must be non-negative"
        );
        (1.0 - delay_secs / self.ceiling_secs).clamp(0.0, 1.0)
    }
}

/// The IPD module: a budget-constrained contextual bandit choosing one
/// [`IncentiveLevel`] per query, learning from observed delays.
///
/// Any [`CostedBandit`] can drive it — `UcbAlp` for CrowdLearn proper,
/// `FixedPolicy`/`RandomPolicy` for the Figure 8 baselines — which is also
/// how the ablation benches swap policies.
pub struct IncentivePolicy {
    bandit: Box<dyn CostedBandit>,
    normalizer: PayoffNormalizer,
    observations: u64,
}

impl IncentivePolicy {
    /// Wraps a bandit whose action space must equal the seven incentive
    /// levels and whose context space must equal the four temporal contexts.
    ///
    /// # Panics
    ///
    /// Panics if the bandit's action or context arity does not match.
    pub fn new(bandit: Box<dyn CostedBandit>, normalizer: PayoffNormalizer) -> Self {
        assert_eq!(
            bandit.config().actions(),
            IncentiveLevel::COUNT,
            "bandit must have one action per incentive level"
        );
        assert_eq!(
            bandit.config().contexts(),
            TemporalContext::COUNT,
            "bandit must have one context per temporal context"
        );
        Self {
            bandit,
            normalizer,
            observations: 0,
        }
    }

    /// Rebuilds a policy from checkpointed parts, restoring the delay
    /// observation count.
    ///
    /// # Panics
    ///
    /// Panics if the bandit's action or context arity does not match (same
    /// contract as [`IncentivePolicy::new`]).
    pub fn from_parts(
        bandit: Box<dyn CostedBandit>,
        normalizer: PayoffNormalizer,
        observations: u64,
    ) -> Self {
        let mut ipd = Self::new(bandit, normalizer);
        ipd.observations = observations;
        ipd
    }

    /// The underlying policy's serializable state, or `None` when the
    /// policy is not checkpointable.
    pub fn save_state(&self) -> Option<PolicyState> {
        self.bandit.save_state()
    }

    /// The payoff normalizer.
    pub fn normalizer(&self) -> PayoffNormalizer {
        self.normalizer
    }

    /// Total delay observations fed to the learner so far — both the
    /// absorb path and the censored timeout path count, so runtimes can
    /// assert "exactly one observation per posted attempt".
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Chooses an incentive for one query in `context`, charging the bandit
    /// budget. Returns `None` when the budget is exhausted.
    pub fn choose(&mut self, context: TemporalContext) -> Option<IncentiveLevel> {
        self.bandit
            .select(context.index())
            .map(IncentiveLevel::from_index)
    }

    /// Feeds an observed query delay back to the learner.
    pub fn report_delay(
        &mut self,
        context: TemporalContext,
        incentive: IncentiveLevel,
        delay_secs: f64,
    ) {
        let payoff = self.normalizer.payoff(delay_secs);
        self.observations += 1;
        self.bandit
            .observe(context.index(), incentive.index(), payoff);
    }

    /// Charges the cost of `incentive` to the bandit's budget without
    /// consulting the policy: the forced-action path for reposting a
    /// timed-out HIT at an escalated incentive. Returns `false` (charging
    /// nothing) when the remaining budget cannot afford it.
    pub fn try_charge(&mut self, incentive: IncentiveLevel) -> bool {
        self.bandit.charge(incentive.index())
    }

    /// Removes up to `cents` from the bandit's remaining budget (a mid-run
    /// budget shock), returning the amount actually clawed back. The learner
    /// itself is untouched — only the ledger shrinks — so pacing policies
    /// react on their next selection.
    ///
    /// # Panics
    ///
    /// Panics if `cents` is negative or not finite.
    pub fn clawback_cents(&mut self, cents: f64) -> f64 {
        self.bandit.clawback(cents)
    }

    /// Remaining budget in cents.
    pub fn remaining_budget_cents(&self) -> f64 {
        self.bandit.remaining_budget()
    }

    /// The underlying policy's name (for reports).
    pub fn policy_name(&self) -> &str {
        self.bandit.name()
    }
}

impl Encode for PayoffNormalizer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ceiling_secs.encode(out);
    }
}

impl Decode for PayoffNormalizer {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let ceiling_secs = f64::decode(r)?;
        if !ceiling_secs.is_finite() || ceiling_secs <= 0.0 {
            return Err(DecodeError::Invalid);
        }
        Ok(Self { ceiling_secs })
    }
}

impl std::fmt::Debug for IncentivePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncentivePolicy")
            .field("policy", &self.bandit.name())
            .field("remaining_budget", &self.bandit.remaining_budget())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdlearn_bandit::{BanditConfig, FixedPolicy, UcbAlp};

    fn config(budget: f64, horizon: u64) -> BanditConfig {
        BanditConfig::new(
            TemporalContext::COUNT,
            IncentiveLevel::costs(),
            budget,
            horizon,
        )
    }

    #[test]
    fn payoff_maps_delay_inversely() {
        let n = PayoffNormalizer::new(1000.0);
        assert_eq!(n.payoff(0.0), 1.0);
        assert!((n.payoff(500.0) - 0.5).abs() < 1e-12);
        assert_eq!(n.payoff(2000.0), 0.0);
    }

    #[test]
    fn choose_and_report_round_trip() {
        let bandit = UcbAlp::new(config(100.0, 20), 3);
        let mut ipd = IncentivePolicy::new(Box::new(bandit), PayoffNormalizer::paper());
        let level = ipd.choose(TemporalContext::Morning).expect("budget left");
        ipd.report_delay(TemporalContext::Morning, level, 300.0);
        assert!(ipd.remaining_budget_cents() < 100.0);
    }

    #[test]
    fn fixed_policy_reports_its_level() {
        let bandit = FixedPolicy::new(config(100.0, 20), IncentiveLevel::C10.index());
        let mut ipd = IncentivePolicy::new(Box::new(bandit), PayoffNormalizer::paper());
        assert_eq!(
            ipd.choose(TemporalContext::Evening),
            Some(IncentiveLevel::C10)
        );
        assert_eq!(ipd.policy_name(), "fixed");
    }

    #[test]
    fn exhausts_budget_to_none() {
        let bandit = FixedPolicy::new(config(2.0, 10), IncentiveLevel::C1.index());
        let mut ipd = IncentivePolicy::new(Box::new(bandit), PayoffNormalizer::paper());
        assert!(ipd.choose(TemporalContext::Morning).is_some());
        assert!(ipd.choose(TemporalContext::Morning).is_some());
        assert!(ipd.choose(TemporalContext::Morning).is_none());
    }

    #[test]
    fn clawback_shrinks_budget_and_clamps() {
        let bandit = FixedPolicy::new(config(10.0, 10), IncentiveLevel::C1.index());
        let mut ipd = IncentivePolicy::new(Box::new(bandit), PayoffNormalizer::paper());
        assert_eq!(ipd.clawback_cents(4.0), 4.0);
        assert_eq!(ipd.remaining_budget_cents(), 6.0);
        assert_eq!(ipd.clawback_cents(100.0), 6.0);
        assert_eq!(ipd.remaining_budget_cents(), 0.0);
    }

    #[test]
    fn counts_every_delay_observation() {
        let bandit = UcbAlp::new(config(100.0, 20), 3);
        let mut ipd = IncentivePolicy::new(Box::new(bandit), PayoffNormalizer::paper());
        assert_eq!(ipd.observations(), 0);
        ipd.report_delay(TemporalContext::Morning, IncentiveLevel::C4, 120.0);
        ipd.report_delay(TemporalContext::Evening, IncentiveLevel::C8, 600.0);
        assert_eq!(ipd.observations(), 2);
        let state = ipd.save_state().expect("UCB-ALP is checkpointable");
        let resumed =
            IncentivePolicy::from_parts(state.into_bandit(), ipd.normalizer(), ipd.observations());
        assert_eq!(resumed.observations(), 2);
    }

    #[test]
    fn normalizer_codec_round_trips() {
        let n = PayoffNormalizer::new(1234.5);
        assert_eq!(PayoffNormalizer::from_bytes(&n.to_bytes()), Ok(n));
        let bad = (-3.0f64).to_bytes();
        assert!(matches!(
            PayoffNormalizer::from_bytes(&bad),
            Err(DecodeError::Invalid)
        ));
    }

    #[test]
    #[should_panic(expected = "one action per incentive level")]
    fn rejects_wrong_action_arity() {
        let bandit = UcbAlp::new(
            BanditConfig::new(TemporalContext::COUNT, vec![1.0, 2.0], 10.0, 5),
            0,
        );
        IncentivePolicy::new(Box::new(bandit), PayoffNormalizer::paper());
    }

    #[test]
    #[should_panic(expected = "delay must be non-negative")]
    fn rejects_negative_delay() {
        PayoffNormalizer::paper().payoff(-1.0);
    }
}
