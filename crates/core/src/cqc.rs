//! Crowd Quality Control (paper §IV-C): distill truthful labels from noisy
//! worker responses using labels *plus* questionnaire evidence.

use crowdlearn_classifiers::ClassDistribution;
use crowdlearn_crowd::{QueryResponse, QuestionnaireAnswers};
use crowdlearn_dataset::DamageLabel;
use crowdlearn_gbdt::{GbdtClassifier, GbdtConfig};
use serde::binary::{Decode, DecodeError, Encode, Reader};

/// Feature extraction from one crowd query response.
///
/// The feature vector fed to the gradient-boosting model is:
///
/// | slot | meaning |
/// |------|---------|
/// | 0..3 | per-class vote fraction |
/// | 3..8 | per-question mean "yes" rate across workers |
/// | 8    | entropy of the vote histogram |
/// | 9    | top vote share |
/// | 10   | incentive cents / 20 (quality dips at very low pay) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryFeatures;

impl QueryFeatures {
    /// Dimensionality of the extracted feature vector.
    pub const DIM: usize = DamageLabel::COUNT + QuestionnaireAnswers::COUNT + 3;

    /// Extracts the CQC feature vector from a response.
    ///
    /// # Panics
    ///
    /// Panics if the response has no worker responses.
    pub fn extract(response: &QueryResponse) -> Vec<f64> {
        assert!(
            !response.responses.is_empty(),
            "cannot extract features from an empty response"
        );
        let n = response.responses.len() as f64;

        let mut votes = [0.0f64; DamageLabel::COUNT];
        for r in &response.responses {
            votes[r.label.index()] += 1.0;
        }
        for v in &mut votes {
            *v /= n;
        }

        let mut questions = [0.0f64; QuestionnaireAnswers::COUNT];
        for r in &response.responses {
            for (q, a) in questions.iter_mut().zip(r.questionnaire.as_features()) {
                *q += a;
            }
        }
        for q in &mut questions {
            *q /= n;
        }

        let entropy: f64 = -votes
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>();
        let top_share = votes.iter().copied().fold(0.0, f64::max);

        let mut features = Vec::with_capacity(Self::DIM);
        features.extend_from_slice(&votes);
        features.extend_from_slice(&questions);
        features.push(entropy);
        features.push(top_share);
        features.push(f64::from(response.incentive.cents()) / 20.0);
        features
    }
}

/// The CQC module: a gradient-boosting classifier over [`QueryFeatures`],
/// with majority voting as the untrained fallback.
///
/// Train it once on responses with known ground truth (the paper uses the
/// training split for this), then call [`QualityController::infer`] on live
/// query responses to obtain the truthful-label distribution
/// `D(TL_i^t)` that MIC consumes.
#[derive(Debug, Clone)]
pub struct QualityController {
    config: GbdtConfig,
    model: Option<GbdtClassifier>,
}

impl QualityController {
    /// Creates an untrained controller.
    pub fn new(config: GbdtConfig) -> Self {
        Self {
            config,
            model: None,
        }
    }

    /// The paper's configuration (XGBoost-like defaults on small tabular
    /// data). Deeper and longer than `GbdtConfig::small()` because the
    /// decisive signal on ambiguous images is an interaction between the
    /// vote split and the questionnaire bits.
    pub fn paper() -> Self {
        Self::new(GbdtConfig {
            rounds: 150,
            max_depth: 5,
            learning_rate: 0.12,
            ..GbdtConfig::small()
        })
    }

    /// Whether [`QualityController::train`] has been called.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Trains the boosting model on responses with known true labels.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty or any response is empty.
    pub fn train(&mut self, examples: &[(QueryResponse, DamageLabel)]) {
        assert!(
            !examples.is_empty(),
            "CQC needs at least one training example"
        );
        let rows: Vec<Vec<f64>> = examples
            .iter()
            .map(|(resp, _)| QueryFeatures::extract(resp))
            .collect();
        let labels: Vec<usize> = examples.iter().map(|(_, l)| l.index()).collect();
        self.model = Some(GbdtClassifier::fit(
            &rows,
            &labels,
            DamageLabel::COUNT,
            &self.config,
        ));
    }

    /// The truthful-label distribution for a live response. Untrained
    /// controllers fall back to the normalized vote histogram (majority
    /// voting).
    ///
    /// # Panics
    ///
    /// Panics if the response has no worker responses.
    pub fn infer(&self, response: &QueryResponse) -> ClassDistribution {
        match &self.model {
            Some(model) => {
                let probs = model.predict_proba(&QueryFeatures::extract(response));
                ClassDistribution::from_weights([probs[0], probs[1], probs[2]])
            }
            None => {
                let mut votes = [0.0f64; DamageLabel::COUNT];
                for r in &response.responses {
                    votes[r.label.index()] += 1.0;
                }
                ClassDistribution::from_weights(votes)
            }
        }
    }

    /// Convenience: the argmax truthful label.
    pub fn truthful_label(&self, response: &QueryResponse) -> DamageLabel {
        self.infer(response).argmax()
    }
}

// Snapshot codec: the boosting configuration plus the (optionally trained)
// model, both already validated by their own decoders.
impl Encode for QualityController {
    fn encode(&self, out: &mut Vec<u8>) {
        self.config.encode(out);
        self.model.encode(out);
    }
}

impl Decode for QualityController {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            config: GbdtConfig::decode(r)?,
            model: Option::<GbdtClassifier>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdlearn_crowd::{IncentiveLevel, Platform, PlatformConfig};
    use crowdlearn_dataset::{Dataset, DatasetConfig, TemporalContext};

    fn gather(
        platform: &mut Platform,
        images: &[crowdlearn_dataset::SyntheticImage],
    ) -> Vec<(QueryResponse, DamageLabel)> {
        images
            .iter()
            .enumerate()
            .map(|(i, img)| {
                let ctx = TemporalContext::from_index(i % TemporalContext::COUNT);
                (platform.submit(img, IncentiveLevel::C6, ctx), img.truth())
            })
            .collect()
    }

    #[test]
    fn features_have_fixed_dimension() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut platform = Platform::new(PlatformConfig::paper().with_seed(31));
        let resp = platform.submit(&ds.test()[0], IncentiveLevel::C4, TemporalContext::Morning);
        let f = QueryFeatures::extract(&resp);
        assert_eq!(f.len(), QueryFeatures::DIM);
        // Vote fractions sum to 1.
        assert!((f[..3].iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn untrained_controller_is_majority_voting() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut platform = Platform::new(PlatformConfig::paper().with_seed(32));
        let cqc = QualityController::paper();
        assert!(!cqc.is_trained());
        let resp = platform.submit(&ds.test()[1], IncentiveLevel::C6, TemporalContext::Evening);
        let mut votes = [0usize; 3];
        for r in &resp.responses {
            votes[r.label.index()] += 1;
        }
        let majority = votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(cqc.truthful_label(&resp).index(), majority);
    }

    #[test]
    fn trained_cqc_beats_majority_voting() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut platform = Platform::new(PlatformConfig::paper().with_seed(33));
        let train_examples = gather(&mut platform, ds.train());
        let test_examples = gather(&mut platform, ds.test());

        let mut cqc = QualityController::paper();
        cqc.train(&train_examples);

        let mut cqc_correct = 0usize;
        let mut voting_correct = 0usize;
        let voting = QualityController::new(GbdtConfig::small()); // untrained = voting
        for (resp, truth) in &test_examples {
            cqc_correct += usize::from(cqc.truthful_label(resp) == *truth);
            voting_correct += usize::from(voting.truthful_label(resp) == *truth);
        }
        let n = test_examples.len() as f64;
        let acc_cqc = cqc_correct as f64 / n;
        let acc_voting = voting_correct as f64 / n;
        // Paper Table I: CQC 0.935 vs Voting 0.8425 (>= 5.75 points better).
        assert!(
            acc_cqc > acc_voting + 0.03,
            "CQC {acc_cqc} must clearly beat voting {acc_voting}"
        );
        assert!(
            (acc_cqc - 0.935).abs() < 0.05,
            "CQC accuracy {acc_cqc} outside the Table I band"
        );
    }

    #[test]
    fn inference_is_deterministic() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut platform = Platform::new(PlatformConfig::paper().with_seed(34));
        let train_examples = gather(&mut platform, &ds.train()[..100]);
        let mut cqc = QualityController::paper();
        cqc.train(&train_examples);
        let resp = platform.submit(&ds.test()[5], IncentiveLevel::C8, TemporalContext::Midnight);
        assert_eq!(cqc.infer(&resp), cqc.infer(&resp));
    }

    #[test]
    #[should_panic(expected = "at least one training example")]
    fn empty_training_rejected() {
        QualityController::paper().train(&[]);
    }

    #[test]
    fn snapshot_codec_round_trips_trained_and_untrained() {
        let untrained = QualityController::paper();
        let back = QualityController::from_bytes(&untrained.to_bytes()).expect("round trip");
        assert!(!back.is_trained());

        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut platform = Platform::new(PlatformConfig::paper().with_seed(35));
        let mut cqc = QualityController::paper();
        cqc.train(&gather(&mut platform, &ds.train()[..80]));
        let back = QualityController::from_bytes(&cqc.to_bytes()).expect("round trip");
        assert!(back.is_trained());
        let resp = platform.submit(
            &ds.test()[2],
            IncentiveLevel::C6,
            TemporalContext::Afternoon,
        );
        assert_eq!(cqc.infer(&resp), back.infer(&resp));
    }
}
