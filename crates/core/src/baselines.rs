//! The evaluation's competitor schemes (paper §V-A): AI-only runners for
//! VGG16 / BoVW / DDM / Ensemble, and the two hybrid human-AI baselines
//! `Hybrid-Para` (Jarrett et al.) and `Hybrid-AL` (Laws et al.).

use crate::report::{CycleOutcome, ImageOutcome};
use crate::SchemeReport;
use crowdlearn_bandit::{BanditConfig, FixedPolicy};
use crowdlearn_classifiers::{ClassDistribution, Classifier};
use crowdlearn_crowd::{IncentiveLevel, Platform, PlatformConfig, QueryResponse};
use crowdlearn_dataset::{DamageLabel, Dataset, LabeledImage, SensingCycleStream};
use crowdlearn_truth::{Aggregator, Annotation, MajorityVoting};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Runs an AI-only classifier over the stream (the VGG16 / BoVW / DDM /
/// Ensemble rows of Tables II-III). The classifier is trained by the caller.
pub fn run_ai_only(
    classifier: &mut dyn Classifier,
    dataset: &Dataset,
    stream: &SensingCycleStream,
) -> SchemeReport {
    let mut report = SchemeReport::new(classifier.name().to_owned());
    for cycle in stream {
        let images = cycle.images(dataset);
        let outcomes: Vec<ImageOutcome> = images
            .iter()
            .zip(classifier.predict_batch_refs(&images))
            .map(|(img, distribution)| ImageOutcome {
                image: img.id(),
                truth: img.truth(),
                predicted: distribution.argmax(),
                distribution,
                queried: false,
            })
            .collect();
        let outcome = CycleOutcome {
            cycle: cycle.index,
            context: cycle.context,
            images: outcomes,
            algorithm_delay_secs: classifier.execution_delay_secs(images.len(), cycle.index as u64),
            crowd_delay_secs: None,
            query_delay_secs: Vec::new(),
            spent_cents: 0,
        };
        report.record_cycle(&outcome);
    }
    report
}

/// Shared configuration of the two hybrid baselines. Both query the same
/// number of images per cycle as CrowdLearn and pay the paper's fixed
/// incentive ("the total budget divided by the number of queries").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridConfig {
    /// Images queried per cycle.
    pub queries_per_cycle: usize,
    /// Total crowd budget in cents.
    pub budget_cents: f64,
    /// Expected total queries (sets the fixed incentive level).
    pub horizon_queries: u64,
    /// RNG seed.
    pub seed: u64,
    /// Platform seed.
    pub platform_seed: u64,
}

impl HybridConfig {
    /// Matches `CrowdLearnConfig::paper()` for a fair comparison.
    pub fn paper() -> Self {
        Self {
            queries_per_cycle: 5,
            budget_cents: 1000.0,
            horizon_queries: 200,
            seed: 0xbab5,
            platform_seed: 0x5eed,
        }
    }

    /// Sets queries per cycle (Figure 9 sweep).
    pub fn with_queries_per_cycle(mut self, n: usize) -> Self {
        self.queries_per_cycle = n;
        self
    }

    /// Sets the budget.
    pub fn with_budget_cents(mut self, cents: f64) -> Self {
        self.budget_cents = cents;
        self
    }

    /// Sets both seeds from one value.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.platform_seed = seed.wrapping_mul(0x9e37_79b9).wrapping_add(2);
        self
    }

    fn fixed_policy(&self) -> FixedPolicy {
        FixedPolicy::max_affordable(BanditConfig::new(
            crowdlearn_dataset::TemporalContext::COUNT,
            IncentiveLevel::costs(),
            self.budget_cents,
            self.horizon_queries.max(1),
        ))
    }
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self::paper()
    }
}

fn majority_label(response: &QueryResponse) -> DamageLabel {
    let annotations: Vec<Annotation> = response
        .responses
        .iter()
        .map(|r| Annotation::new(r.worker, 0, r.label.index()))
        .collect();
    let estimate = &MajorityVoting.aggregate(&annotations, 1, DamageLabel::COUNT)[0];
    DamageLabel::from_index(estimate.label())
}

fn crowd_vote_distribution(response: &QueryResponse) -> ClassDistribution {
    let mut votes = [0.0f64; DamageLabel::COUNT];
    for r in &response.responses {
        votes[r.label.index()] += 1.0;
    }
    ClassDistribution::from_weights(votes)
}

/// `Hybrid-AL` (Laws et al. 2011): active learning with crowd labels.
///
/// Per cycle the AI's most uncertain images are sent to the crowd at a fixed
/// incentive; majority-voted labels *retrain* the model for later cycles
/// (only confident majorities — at least 4 of 5 workers agreeing — are used,
/// the usual active-learning hygiene against annotation noise).
/// Crucially there is no offloading — the AI's own (possibly innately
/// flawed) labels are always the output, which is why its Figure 9 curve
/// stays flat. The evaluation wraps it around the boosted Ensemble (the
/// strongest AI), making Hybrid-AL the best-performing baseline as in
/// Table II.
pub struct HybridAl {
    classifier: Box<dyn Classifier>,
    policy: FixedPolicy,
    platform: Platform,
    config: HybridConfig,
}

impl HybridAl {
    /// Builds the baseline around a caller-trained classifier.
    pub fn new(classifier: Box<dyn Classifier>, config: HybridConfig) -> Self {
        Self {
            policy: config.fixed_policy(),
            platform: Platform::new(PlatformConfig::paper().with_seed(config.platform_seed)),
            classifier,
            config,
        }
    }

    /// Runs the full stream.
    pub fn run(&mut self, dataset: &Dataset, stream: &SensingCycleStream) -> SchemeReport {
        use crowdlearn_bandit::CostedBandit as _;
        let mut report = SchemeReport::new("Hybrid-AL");
        for cycle in stream {
            let images = cycle.images(dataset);
            let spent_before = self.platform.spent_cents();

            // Predict (batched — bit-identical to per-image) and rank by
            // uncertainty.
            let distributions = self.classifier.predict_batch_refs(&images);
            let mut by_entropy: Vec<usize> = (0..images.len()).collect();
            by_entropy.sort_by(|&a, &b| {
                distributions[b]
                    .entropy()
                    .partial_cmp(&distributions[a].entropy())
                    .expect("invariant: class-distribution entropies are finite")
            });

            // Query the top-uncertainty images at the fixed incentive.
            let mut delays = Vec::new();
            let mut retrain_samples = Vec::new();
            let mut queried = vec![false; images.len()];
            for &idx in by_entropy.iter().take(self.config.queries_per_cycle) {
                let Some(action) = self.policy.select(cycle.context.index()) else {
                    break;
                };
                let level = IncentiveLevel::from_index(action);
                let response = self.platform.submit(images[idx], level, cycle.context);
                delays.push(response.completion_delay_secs);
                let crowd_dist = crowd_vote_distribution(&response);
                if crowd_dist.max_prob() >= 0.8 {
                    retrain_samples.push(LabeledImage::new(
                        images[idx].clone(),
                        majority_label(&response),
                    ));
                }
                queried[idx] = true;
            }

            // Output is always the AI's own labels.
            let outcomes: Vec<ImageOutcome> = images
                .iter()
                .zip(&distributions)
                .enumerate()
                .map(|(i, (img, dist))| ImageOutcome {
                    image: img.id(),
                    truth: img.truth(),
                    predicted: dist.argmax(),
                    distribution: dist.clone(),
                    queried: queried[i],
                })
                .collect();

            // Retrain with the crowd labels for subsequent cycles.
            if !retrain_samples.is_empty() {
                self.classifier.retrain(&retrain_samples);
            }

            report.record_cycle(&CycleOutcome {
                cycle: cycle.index,
                context: cycle.context,
                images: outcomes,
                algorithm_delay_secs: self
                    .classifier
                    .execution_delay_secs(images.len(), cycle.index as u64)
                    + 1.0,
                crowd_delay_secs: if delays.is_empty() {
                    None
                } else {
                    Some(delays.iter().sum::<f64>() / delays.len() as f64)
                },
                query_delay_secs: delays,
                spent_cents: self.platform.spent_cents() - spent_before,
            });
        }
        report
    }
}

/// `Hybrid-Para` (Jarrett et al. 2014): humans and AI label independently
/// and a complexity index merges the two streams.
///
/// A random sample of each cycle's images goes to the crowd (no uncertainty
/// targeting — the streams are independent); for sampled images the
/// complexity index routes the decision: complex images (high AI vote
/// entropy) take the crowd's raw majority label, simple images keep the AI
/// label. Because genuinely complex images are hard for the crowd too, and
/// because confidently-wrong AI (deceptive images) looks "simple" to the
/// index, the integration buys little — which is why Hybrid-Para trails the
/// adaptive schemes in Table II and stays flat in Figure 9.
pub struct HybridPara {
    classifier: Box<dyn Classifier>,
    policy: FixedPolicy,
    platform: Platform,
    config: HybridConfig,
    complexity_threshold: f64,
    rng: StdRng,
}

impl HybridPara {
    /// Default complexity-index threshold (in nats of AI vote entropy).
    pub const DEFAULT_COMPLEXITY_THRESHOLD: f64 = 0.35;

    /// Builds the baseline around a caller-trained classifier.
    pub fn new(classifier: Box<dyn Classifier>, config: HybridConfig) -> Self {
        Self {
            policy: config.fixed_policy(),
            platform: Platform::new(PlatformConfig::paper().with_seed(config.platform_seed)),
            rng: StdRng::seed_from_u64(config.seed ^ 0x9a7a),
            complexity_threshold: Self::DEFAULT_COMPLEXITY_THRESHOLD,
            classifier,
            config,
        }
    }

    /// Overrides the complexity threshold (ablation support).
    pub fn with_complexity_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        self.complexity_threshold = threshold;
        self
    }

    /// Runs the full stream.
    pub fn run(&mut self, dataset: &Dataset, stream: &SensingCycleStream) -> SchemeReport {
        use crowdlearn_bandit::CostedBandit as _;
        let mut report = SchemeReport::new("Hybrid-Para");
        for cycle in stream {
            let images = cycle.images(dataset);
            let spent_before = self.platform.spent_cents();

            let distributions = self.classifier.predict_batch_refs(&images);

            // Humans label an independent random sample.
            let mut sample: Vec<usize> = (0..images.len()).collect();
            sample.shuffle(&mut self.rng);
            sample.truncate(self.config.queries_per_cycle);

            let mut delays = Vec::new();
            let mut outcomes: Vec<ImageOutcome> = images
                .iter()
                .zip(&distributions)
                .map(|(img, dist)| ImageOutcome {
                    image: img.id(),
                    truth: img.truth(),
                    predicted: dist.argmax(),
                    distribution: dist.clone(),
                    queried: false,
                })
                .collect();

            for idx in sample {
                let Some(action) = self.policy.select(cycle.context.index()) else {
                    break;
                };
                let level = IncentiveLevel::from_index(action);
                let response = self.platform.submit(images[idx], level, cycle.context);
                delays.push(response.completion_delay_secs);
                outcomes[idx].queried = true;
                // Complexity-index routing: complex (high AI entropy) goes
                // to the crowd's raw majority, simple keeps the AI label.
                let crowd_dist = crowd_vote_distribution(&response);
                if distributions[idx].entropy() > self.complexity_threshold {
                    outcomes[idx].predicted = crowd_dist.argmax();
                    outcomes[idx].distribution = crowd_dist;
                }
            }

            report.record_cycle(&CycleOutcome {
                cycle: cycle.index,
                context: cycle.context,
                images: outcomes,
                algorithm_delay_secs: self
                    .classifier
                    .execution_delay_secs(images.len(), cycle.index as u64)
                    + 8.5,
                crowd_delay_secs: if delays.is_empty() {
                    None
                } else {
                    Some(delays.iter().sum::<f64>() / delays.len() as f64)
                },
                query_delay_secs: delays,
                spent_cents: self.platform.spent_cents() - spent_before,
            });
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdlearn_classifiers::{profiles, BoostedEnsemble};
    use crowdlearn_dataset::DatasetConfig;

    fn setup() -> (Dataset, SensingCycleStream, Vec<LabeledImage>) {
        let dataset = Dataset::generate(&DatasetConfig::paper());
        let stream = SensingCycleStream::paper(&dataset);
        let train: Vec<LabeledImage> = dataset
            .train()
            .iter()
            .cloned()
            .map(LabeledImage::ground_truth)
            .collect();
        (dataset, stream, train)
    }

    #[test]
    fn ai_only_reports_match_expert_accuracy_bands() {
        let (dataset, stream, train) = setup();
        let mut ddm = profiles::ddm(0);
        ddm.retrain(&train);
        let report = run_ai_only(&mut ddm, &dataset, &stream);
        assert_eq!(report.name, "DDM");
        assert!(
            (report.accuracy() - 0.807).abs() < 0.05,
            "{}",
            report.accuracy()
        );
        assert!(report.mean_crowd_delay_secs().is_none());
        assert_eq!(report.spent_cents, 0);
    }

    #[test]
    fn hybrid_al_improves_slightly_over_its_base_model() {
        let (dataset, stream, train) = setup();
        let mut base = profiles::ddm(0);
        base.retrain(&train);
        let base_report = run_ai_only(&mut base.clone(), &dataset, &stream);

        let mut al = HybridAl::new(Box::new(base), HybridConfig::paper());
        let al_report = al.run(&dataset, &stream);
        // Retraining with crowd labels buys a little accuracy, but cannot
        // exceed the architecture's ceiling (Table II: 0.823 vs 0.807). The
        // comparison carries realization variance: every retrain reshuffles
        // the simulated model's prediction noise, so individual runs move a
        // couple of points either way around the base model.
        assert!(
            al_report.accuracy() >= base_report.accuracy() - 0.045,
            "Hybrid-AL {} must not collapse below DDM {}",
            al_report.accuracy(),
            base_report.accuracy()
        );
        assert!(al_report.mean_crowd_delay_secs().is_some());
        assert_eq!(al_report.queries_issued, 200);
    }

    #[test]
    fn hybrid_al_respects_budget() {
        let (dataset, stream, train) = setup();
        let mut base = profiles::ddm(0);
        base.retrain(&train);
        let mut al = HybridAl::new(
            Box::new(base),
            HybridConfig::paper().with_budget_cents(100.0),
        );
        let report = al.run(&dataset, &stream);
        assert!(report.spent_cents <= 100);
    }

    #[test]
    fn hybrid_para_lands_in_its_table2_band() {
        let (dataset, stream, train) = setup();
        let mut ensemble = BoostedEnsemble::new(profiles::paper_committee(0));
        ensemble.retrain(&train);
        let mut para = HybridPara::new(Box::new(ensemble), HybridConfig::paper());
        let report = para.run(&dataset, &stream);
        // Paper Table II: Hybrid-Para 0.797.
        assert!(
            (report.accuracy() - 0.797).abs() < 0.06,
            "Hybrid-Para accuracy {}",
            report.accuracy()
        );
    }

    #[test]
    fn fixed_incentive_hybrids_are_slower_than_nothing_at_all() {
        // Sanity: hybrids actually incur crowd delay while AI-only does not.
        let (dataset, stream, train) = setup();
        let mut ensemble = BoostedEnsemble::new(profiles::paper_committee(0));
        ensemble.retrain(&train);
        let mut para = HybridPara::new(Box::new(ensemble), HybridConfig::paper());
        let report = para.run(&dataset, &stream);
        let crowd = report
            .mean_crowd_delay_secs()
            .expect("para queries the crowd");
        assert!(crowd > report.mean_algorithm_delay_secs());
    }
}
