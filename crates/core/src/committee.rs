//! The query-by-committee of DDA experts with Hedge-maintained weights
//! (paper Definitions 4-8, Eq. 2-3).

use crowdlearn_bandit::ExpWeights;
use crowdlearn_classifiers::{ClassDistribution, Classifier, SimulatedExpert};
use crowdlearn_dataset::{EvidenceMatrix, LabeledImage, SyntheticImage};

/// A weighted committee of black-box classifiers.
///
/// The committee produces, per image, the member votes (Definition 6) and
/// the weighted, renormalized committee vote of Eq. 2; its entropy (Eq. 3)
/// is the uncertainty signal QSS ranks on. Weights are maintained by a
/// Hedge learner and updated by MIC each cycle.
pub struct Committee {
    members: Vec<Box<dyn Classifier>>,
    hedge: ExpWeights,
}

impl Committee {
    /// Builds a committee with uniform initial weights.
    ///
    /// `eta` is the Hedge learning rate for the dynamic expert-weight
    /// updates (paper §IV-D).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or `eta <= 0`.
    pub fn new(members: Vec<Box<dyn Classifier>>, eta: f64) -> Self {
        assert!(!members.is_empty(), "committee needs at least one expert");
        let hedge = ExpWeights::new(members.len(), eta);
        Self { members, hedge }
    }

    /// Rebuilds a committee from checkpointed parts: the members plus a
    /// Hedge learner carrying the saved weights.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or its length differs from the weight
    /// count.
    pub fn from_parts(members: Vec<Box<dyn Classifier>>, hedge: ExpWeights) -> Self {
        assert!(!members.is_empty(), "committee needs at least one expert");
        assert_eq!(members.len(), hedge.len(), "one Hedge weight per member");
        Self { members, hedge }
    }

    /// The Hedge learner's full state (for checkpoints).
    pub fn hedge(&self) -> &ExpWeights {
        &self.hedge
    }

    /// Clones every member as a [`SimulatedExpert`], or `None` when any
    /// member is not a simulated expert — snapshot callers surface that as
    /// an explicit unsupported-classifier error.
    pub fn simulated_members(&self) -> Option<Vec<SimulatedExpert>> {
        self.members
            .iter()
            .map(|m| m.as_simulated().cloned())
            .collect()
    }

    /// Number of experts.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the committee is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member names, in weight order.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// The current expert weights `w_m^t` (sum to 1).
    pub fn weights(&self) -> &[f64] {
        self.hedge.weights()
    }

    /// Every member's vote for one image.
    pub fn votes(&self, image: &SyntheticImage) -> Vec<ClassDistribution> {
        self.members.iter().map(|m| m.predict(image)).collect()
    }

    /// Every member's vote for every image of a batch, image-major: result
    /// `[i]` is the member-ordered vote vector for `images[i]`, bit-identical
    /// to `votes(images[i])`.
    ///
    /// This is the sensing-cycle hot path: the batch's visual evidence is
    /// gathered once into an [`EvidenceMatrix`] and shared by every simulated
    /// member, so the per-member cost drops to sequential sums plus its own
    /// noise draws (see [`SimulatedExpert::predict_evidence`]). Members that
    /// are not simulated experts fall back to the per-image loop, which
    /// satisfies the same equivalence contract trivially.
    pub fn votes_batch(&self, images: &[&SyntheticImage]) -> Vec<Vec<ClassDistribution>> {
        let evidence = EvidenceMatrix::from_refs(images.iter().copied());
        let member_votes: Vec<Vec<ClassDistribution>> = self
            .members
            .iter()
            .map(|m| match m.as_simulated() {
                Some(expert) => expert.predict_evidence(&evidence),
                None => m.predict_batch_refs(images),
            })
            .collect();
        // `vec![...; n]` clones, and a clone of an empty Vec drops its
        // capacity — build each row explicitly so no push reallocates.
        let mut votes: Vec<Vec<ClassDistribution>> = (0..images.len())
            .map(|_| Vec::with_capacity(self.members.len()))
            .collect();
        for member in member_votes {
            for (image_votes, vote) in votes.iter_mut().zip(member) {
                image_votes.push(vote);
            }
        }
        votes
    }

    /// Committee entropy (Eq. 3) for every image of a batch, bit-identical
    /// to mapping [`Committee::entropy`].
    pub fn entropies_batch(&self, images: &[&SyntheticImage]) -> Vec<f64> {
        let weights = self.hedge.weights();
        self.votes_batch(images)
            .iter()
            .map(|votes| {
                ClassDistribution::weighted_mixture(weights.iter().copied().zip(votes.iter()))
                    .entropy()
            })
            .collect()
    }

    /// The committee vote of Eq. 2: the weight-mixed, renormalized label
    /// distribution.
    pub fn committee_vote(&self, image: &SyntheticImage) -> ClassDistribution {
        let votes = self.votes(image);
        ClassDistribution::weighted_mixture(self.hedge.weights().iter().copied().zip(votes.iter()))
    }

    /// Committee entropy of Eq. 3 — the uncertainty score QSS ranks by.
    pub fn entropy(&self, image: &SyntheticImage) -> f64 {
        self.committee_vote(image).entropy()
    }

    /// Retrains every member on the same labeled samples (MIC's model
    /// retraining strategy feeds crowd-derived labels through here).
    pub fn retrain(&mut self, samples: &[LabeledImage]) {
        for m in &mut self.members {
            m.retrain(samples);
        }
    }

    /// Applies one Hedge round with per-expert losses in `[0, 1]`
    /// (computed by the MIC calibrator from Eq. 5).
    ///
    /// # Panics
    ///
    /// Panics if `losses.len() != self.len()`.
    pub fn update_weights(&mut self, losses: &[f64]) {
        self.hedge.update(losses);
    }

    /// The slowest member's batch execution delay — members run concurrently
    /// in the paper's deployment, so this is the committee's inference time.
    pub fn execution_delay_secs(&self, batch_size: usize, cycle: u64) -> f64 {
        self.members
            .iter()
            .map(|m| m.execution_delay_secs(batch_size, cycle))
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Debug for Committee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Committee")
            .field("members", &self.member_names())
            .field("weights", &self.weights())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdlearn_classifiers::profiles;
    use crowdlearn_dataset::{Dataset, DatasetConfig};

    fn committee(ds: &Dataset) -> Committee {
        let train: Vec<_> = ds
            .train()
            .iter()
            .cloned()
            .map(LabeledImage::ground_truth)
            .collect();
        let members: Vec<Box<dyn Classifier>> = profiles::paper_committee(0)
            .into_iter()
            .map(|mut e| {
                e.retrain(&train);
                Box::new(e) as Box<dyn Classifier>
            })
            .collect();
        Committee::new(members, 0.6)
    }

    #[test]
    fn starts_with_uniform_weights() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let c = committee(&ds);
        for &w in c.weights() {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn committee_vote_is_normalized() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let c = committee(&ds);
        for img in ds.test().iter().take(20) {
            let vote = c.committee_vote(img);
            assert!((vote.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn entropy_is_higher_on_ambiguous_images() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let c = committee(&ds);
        // Low-resolution images carry weak evidence, so the committee should
        // be more uncertain about them than about plain images on average.
        let mean_entropy = |pred: &dyn Fn(&crowdlearn_dataset::SyntheticImage) -> bool| {
            let imgs: Vec<_> = ds.test().iter().filter(|i| pred(i)).collect();
            c.entropies_batch(&imgs).iter().sum::<f64>() / imgs.len() as f64
        };
        let lowres =
            mean_entropy(&|i| i.attribute() == crowdlearn_dataset::ImageAttribute::LowResolution);
        let plain = mean_entropy(&|i| i.attribute() == crowdlearn_dataset::ImageAttribute::Plain);
        assert!(
            lowres > plain,
            "low-res entropy {lowres} must exceed plain entropy {plain}"
        );
    }

    #[test]
    fn deceptive_images_have_low_entropy() {
        // The paper's motivation for epsilon-greedy: the committee is
        // *confidently* wrong on fakes, so their entropy looks like easy
        // images.
        let ds = Dataset::generate(&DatasetConfig::paper());
        let c = committee(&ds);
        let mean_entropy = |pred: &dyn Fn(&crowdlearn_dataset::SyntheticImage) -> bool| {
            let imgs: Vec<_> = ds.test().iter().filter(|i| pred(i)).collect();
            c.entropies_batch(&imgs).iter().sum::<f64>() / imgs.len() as f64
        };
        let fake = mean_entropy(&|i| i.attribute() == crowdlearn_dataset::ImageAttribute::Fake);
        let lowres =
            mean_entropy(&|i| i.attribute() == crowdlearn_dataset::ImageAttribute::LowResolution);
        assert!(
            fake < lowres,
            "fake entropy {fake} must look 'easy' vs low-res {lowres}"
        );
    }

    #[test]
    fn weight_updates_shift_the_vote() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut c = committee(&ds);
        let img = &ds.test()[0];
        let before = c.committee_vote(img);
        // Punish the first two experts hard.
        c.update_weights(&[1.0, 1.0, 0.0]);
        c.update_weights(&[1.0, 1.0, 0.0]);
        let after = c.committee_vote(img);
        assert_ne!(before, after);
        assert!(c.weights()[2] > 0.5);
    }

    #[test]
    fn execution_delay_is_the_slowest_member() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let c = committee(&ds);
        let expected = profiles::paper_committee(0)
            .iter()
            .map(|m| {
                use crowdlearn_classifiers::Classifier as _;
                m.execution_delay_secs(10, 3)
            })
            .fold(0.0, f64::max);
        assert!((c.execution_delay_secs(10, 3) - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn empty_committee_rejected() {
        Committee::new(vec![], 0.5);
    }

    #[test]
    fn batch_votes_and_entropies_match_per_image_bits() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let mut c = committee(&ds);
        // Skew the weights so entropies_batch exercises a non-uniform mix.
        c.update_weights(&[0.8, 0.1, 0.4]);
        let batch: Vec<_> = ds.test().iter().take(10).collect();
        let votes = c.votes_batch(&batch);
        let entropies = c.entropies_batch(&batch);
        assert_eq!(votes.len(), batch.len());
        for ((img, image_votes), entropy) in batch.iter().zip(&votes).zip(&entropies) {
            let scalar = c.votes(img);
            assert_eq!(image_votes.len(), scalar.len());
            for (b, s) in image_votes.iter().zip(&scalar) {
                for (pb, ps) in b.probs().iter().zip(s.probs()) {
                    assert_eq!(pb.to_bits(), ps.to_bits());
                }
            }
            assert_eq!(entropy.to_bits(), c.entropy(img).to_bits());
        }
    }

    #[test]
    fn batch_paths_handle_empty_batches() {
        let ds = Dataset::generate(&DatasetConfig::paper());
        let c = committee(&ds);
        assert!(c.votes_batch(&[]).is_empty());
        assert!(c.entropies_batch(&[]).is_empty());
    }
}
