//! Per-cycle run traces: the online view of a CrowdLearn deployment
//! (accuracy over time, weight trajectories, spend pacing) that the
//! aggregate [`SchemeReport`] deliberately averages away.
//!
//! [`SchemeReport`]: crate::SchemeReport

use crowdlearn_dataset::TemporalContext;
use serde::{Deserialize, Serialize};

/// One sensing cycle's summary in a [`RunTrace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleTrace {
    /// Cycle index.
    pub cycle: usize,
    /// Temporal context.
    pub context: TemporalContext,
    /// Fraction of this cycle's images labeled correctly.
    pub accuracy: f64,
    /// Number of images sent to the crowd.
    pub queries: usize,
    /// Mean query-completion delay, if any queries were issued.
    pub crowd_delay_secs: Option<f64>,
    /// Cents spent this cycle.
    pub spent_cents: u64,
    /// Committee weights at the end of the cycle.
    pub committee_weights: Vec<f64>,
}

/// The cycle-by-cycle trajectory of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    cycles: Vec<CycleTrace>,
}

impl RunTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one cycle's summary.
    pub fn push(&mut self, cycle: CycleTrace) {
        self.cycles.push(cycle);
    }

    /// All cycle summaries, in order.
    pub fn cycles(&self) -> &[CycleTrace] {
        &self.cycles
    }

    /// Trailing-window moving average of per-cycle accuracy: entry `t` is
    /// the mean accuracy of cycles `t.saturating_sub(window-1)..=t`. The
    /// drift experiments read this to see adaptation happening.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn windowed_accuracy(&self, window: usize) -> Vec<f64> {
        assert!(window > 0, "window must be positive");
        (0..self.cycles.len())
            .map(|t| {
                let start = (t + 1).saturating_sub(window);
                let slice = &self.cycles[start..=t];
                slice.iter().map(|c| c.accuracy).sum::<f64>() / slice.len() as f64
            })
            .collect()
    }

    /// Cumulative cents spent after each cycle (budget pacing view).
    pub fn cumulative_spend_cents(&self) -> Vec<u64> {
        let mut total = 0;
        self.cycles
            .iter()
            .map(|c| {
                total += c.spent_cents;
                total
            })
            .collect()
    }

    /// The trajectory of one expert's committee weight across cycles.
    ///
    /// # Panics
    ///
    /// Panics if `expert` is out of range for any recorded cycle.
    pub fn weight_trajectory(&self, expert: usize) -> Vec<f64> {
        self.cycles
            .iter()
            .map(|c| c.committee_weights[expert])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(i: usize, accuracy: f64, spent: u64) -> CycleTrace {
        CycleTrace {
            cycle: i,
            context: TemporalContext::from_index(i % 4),
            accuracy,
            queries: 5,
            crowd_delay_secs: Some(300.0),
            spent_cents: spent,
            committee_weights: vec![0.5, 0.3, 0.2],
        }
    }

    #[test]
    fn windowed_accuracy_smooths() {
        let mut trace = RunTrace::new();
        for (i, acc) in [1.0, 0.0, 1.0, 0.0].into_iter().enumerate() {
            trace.push(cycle(i, acc, 10));
        }
        let smoothed = trace.windowed_accuracy(2);
        assert_eq!(smoothed, vec![1.0, 0.5, 0.5, 0.5]);
        let raw = trace.windowed_accuracy(1);
        assert_eq!(raw, vec![1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn cumulative_spend_accumulates() {
        let mut trace = RunTrace::new();
        trace.push(cycle(0, 1.0, 10));
        trace.push(cycle(1, 1.0, 25));
        assert_eq!(trace.cumulative_spend_cents(), vec![10, 35]);
    }

    #[test]
    fn weight_trajectory_extracts_one_expert() {
        let mut trace = RunTrace::new();
        trace.push(cycle(0, 1.0, 0));
        assert_eq!(trace.weight_trajectory(1), vec![0.3]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        RunTrace::new().windowed_accuracy(0);
    }
}
